#!/usr/bin/env python
"""Crash-recovery demo: SIGKILL the coordinator and a participant mid-commit.

Launches a real ``repro service`` cluster — one OS process per node,
write-ahead logs on disk — submits a transaction, SIGKILLs the
coordinator and one participant while the commit is in flight, restarts
both from their WALs, and verifies that every node ends with the same
decision.  This is the paper's nonblocking claim carried into the
crash-recovery model: killed processors replay their durable logs,
rejoin, and the transaction still completes consistently.

Exit status: 0 on a consistent, fully-decided cluster; 1 otherwise.

Usage::

    PYTHONPATH=src python scripts/service_crash_demo.py \
        --data-dir /tmp/crash-demo --base-port 7500
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import signal
import subprocess
import sys
import time
from pathlib import Path

N = 5
COORDINATOR = 0
PARTICIPANT = 2


def start_node(args, pid: int) -> subprocess.Popen:
    command = [
        sys.executable,
        "-m",
        "repro.cli",
        "service",
        "start",
        "--node",
        str(pid),
        "--votes",
        ",".join("1" * N),
        "--seed",
        str(args.seed),
        "--base-port",
        str(args.base_port),
        "--data-dir",
        args.data_dir,
        "--tick-interval",
        str(args.tick_interval),
        "--trace-spans",
        str(Path(args.data_dir) / f"node{pid}" / "trace.jsonl"),
    ]
    log = open(Path(args.data_dir) / f"node{pid}.out", "ab")
    return subprocess.Popen(command, stdout=log, stderr=log)


def service(args, *command: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", "service", *command],
        capture_output=True,
        text=True,
        timeout=60,
    )


def cluster_status(args) -> tuple[int, dict]:
    result = service(
        args,
        "status",
        "--base-port",
        str(args.base_port),
        "--n",
        str(N),
        "--check",
    )
    try:
        doc = json.loads(result.stdout)
    except json.JSONDecodeError:
        doc = {"nodes": []}
    return result.returncode, doc


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--data-dir", default="/tmp/repro-crash-demo")
    parser.add_argument("--base-port", type=int, default=7500)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--tick-interval", type=float, default=0.05)
    parser.add_argument(
        "--settle",
        type=float,
        default=20.0,
        help="seconds to wait for post-restart agreement",
    )
    args = parser.parse_args()

    shutil.rmtree(args.data_dir, ignore_errors=True)
    Path(args.data_dir).mkdir(parents=True)

    procs = {pid: start_node(args, pid) for pid in range(N)}
    try:
        time.sleep(2.0)  # listeners up, coordinator holding for submit

        print("submitting the transaction...")
        result = service(
            args, "submit", "--port", str(args.base_port + COORDINATOR)
        )
        if result.returncode != 0:
            print(f"submit failed: {result.stderr}", file=sys.stderr)
            return 1

        # Strike mid-commit: the tick interval keeps the protocol slow
        # enough that both victims die with the outcome still open.
        time.sleep(4 * args.tick_interval)
        for victim in (COORDINATOR, PARTICIPANT):
            print(f"SIGKILL node {victim} (pid {procs[victim].pid})")
            os.kill(procs[victim].pid, signal.SIGKILL)
            procs[victim].wait()

        time.sleep(5 * args.tick_interval)
        for victim in (COORDINATOR, PARTICIPANT):
            print(f"restarting node {victim} from its WAL")
            procs[victim] = start_node(args, victim)

        print("waiting for cluster-wide agreement...")
        deadline = time.monotonic() + args.settle
        while time.monotonic() < deadline:
            code, doc = cluster_status(args)
            if code == 0:
                break
            time.sleep(0.5)
        else:
            print("cluster did not reach agreement in time", file=sys.stderr)
            _, doc = cluster_status(args)
            print(json.dumps(doc, indent=2, sort_keys=True), file=sys.stderr)
            return 1

        decisions = {n["pid"]: n["decision"] for n in doc["nodes"]}
        incarnations = {n["pid"]: n["incarnation"] for n in doc["nodes"]}
        print(f"decisions:    {decisions}")
        print(f"incarnations: {incarnations}")
        if set(decisions.values()) != {1}:
            print("expected a unanimous commit", file=sys.stderr)
            return 1
        if incarnations[COORDINATOR] < 1 or incarnations[PARTICIPANT] < 1:
            print("victims did not actually recover", file=sys.stderr)
            return 1
        print("OK: both victims replayed their WALs and the commit held")
        return 0
    finally:
        for proc in procs.values():
            if proc.poll() is None:
                proc.send_signal(signal.SIGTERM)
        for proc in procs.values():
            try:
                proc.wait(timeout=10)
            except subprocess.TimeoutExpired:
                proc.kill()


if __name__ == "__main__":
    sys.exit(main())
