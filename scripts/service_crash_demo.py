#!/usr/bin/env python
"""Crash-recovery demo: SIGKILL the coordinator and a participant mid-commit.

Launches a real ``repro service`` cluster — one OS process per node,
write-ahead logs on disk — submits one or more transactions, SIGKILLs
the coordinator and one participant while the commits are in flight,
restarts both from their WALs, and verifies that every node ends with
the same decision for every transaction.  This is the paper's
nonblocking claim carried into the crash-recovery model: killed
processors replay their durable logs, rejoin, and the transactions
still complete consistently.

With ``--txns`` greater than one (the default is 2) the nodes run in
multi-transaction mode: all transactions are submitted back-to-back so
the victims die hosting several in-flight protocol instances at once,
and recovery must replay the interleaved per-transaction WAL records.
``--txns 1`` reproduces the original single-transaction demo.

Exit status: 0 on a consistent, fully-decided cluster; 1 otherwise.

Usage::

    PYTHONPATH=src python scripts/service_crash_demo.py \
        --data-dir /tmp/crash-demo --base-port 7500 --txns 2
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import signal
import subprocess
import sys
import time
from pathlib import Path

N = 5
COORDINATOR = 0
PARTICIPANT = 2


def start_node(args, pid: int) -> subprocess.Popen:
    command = [
        sys.executable,
        "-m",
        "repro.cli",
        "service",
        "start",
        "--node",
        str(pid),
        "--votes",
        ",".join("1" * N),
        "--seed",
        str(args.seed),
        "--base-port",
        str(args.base_port),
        "--data-dir",
        args.data_dir,
        "--tick-interval",
        str(args.tick_interval),
        "--trace-spans",
        str(Path(args.data_dir) / f"node{pid}" / "trace.jsonl"),
    ]
    if args.txns > 1:
        command.append("--multi-txn")
    log = open(Path(args.data_dir) / f"node{pid}.out", "ab")
    return subprocess.Popen(command, stdout=log, stderr=log)


def service(args, *command: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", "service", *command],
        capture_output=True,
        text=True,
        timeout=60,
    )


def cluster_status(args, check: bool = True) -> tuple[int, dict]:
    command = ["status", "--base-port", str(args.base_port), "--n", str(N)]
    if check:
        command.append("--check")
    result = service(args, *command)
    try:
        doc = json.loads(result.stdout)
    except json.JSONDecodeError:
        doc = {"nodes": []}
    return result.returncode, doc


def submit_all(args) -> bool:
    """Release every transaction at the coordinator, back-to-back.

    Multi-transaction submissions go through one helper process (one
    interpreter start-up, then millisecond-spaced TCP submits) so that
    when the SIGKILL lands moments later, the victims are hosting all
    of them in flight at once.
    """
    if args.txns == 1:
        result = service(
            args, "submit", "--port", str(args.base_port + COORDINATOR)
        )
    else:
        script = (
            "import sys; from repro.service.client import submit; "
            "port, txns = int(sys.argv[1]), int(sys.argv[2]); "
            "[submit('127.0.0.1', port, txn=i) for i in range(1, txns + 1)]"
        )
        result = subprocess.run(
            [
                sys.executable,
                "-c",
                script,
                str(args.base_port + COORDINATOR),
                str(args.txns),
            ],
            capture_output=True,
            text=True,
            timeout=60,
        )
    if result.returncode != 0:
        print(f"submit failed: {result.stderr}", file=sys.stderr)
        return False
    return True


def multi_txn_agreement(args, doc: dict) -> dict[int, int] | None:
    """Per-transaction unanimous decisions, or None while incomplete.

    Every node must be reachable and report the same decision for every
    submitted transaction id.
    """
    nodes = doc.get("nodes", [])
    if len(nodes) < N or any("unreachable" in n for n in nodes):
        return None
    expected = {str(txn) for txn in range(1, args.txns + 1)}
    agreed: dict[int, int] = {}
    for txn in sorted(expected, key=int):
        bits = {(n.get("txns") or {}).get(txn) for n in nodes}
        if len(bits) != 1 or None in bits:
            return None
        agreed[int(txn)] = bits.pop()
    return agreed


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--data-dir", default="/tmp/repro-crash-demo")
    parser.add_argument("--base-port", type=int, default=7500)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--tick-interval", type=float, default=0.05)
    parser.add_argument(
        "--settle",
        type=float,
        default=20.0,
        help="seconds to wait for post-restart agreement",
    )
    parser.add_argument(
        "--txns",
        type=int,
        default=2,
        help="transactions to drive (>1 runs the nodes in "
        "multi-transaction mode; 1 is the classic demo)",
    )
    args = parser.parse_args()
    if args.txns < 1:
        parser.error("--txns must be >= 1")

    shutil.rmtree(args.data_dir, ignore_errors=True)
    Path(args.data_dir).mkdir(parents=True)

    procs = {pid: start_node(args, pid) for pid in range(N)}
    try:
        time.sleep(2.0)  # listeners up, coordinator holding for submit

        noun = "transaction" if args.txns == 1 else f"{args.txns} transactions"
        print(f"submitting {noun}...")
        if not submit_all(args):
            return 1

        # Strike mid-commit: the tick interval keeps the protocol slow
        # enough that both victims die with the outcome(s) still open —
        # in multi-transaction mode the back-to-back submissions mean
        # every instance is in flight when the signal lands.
        time.sleep(4 * args.tick_interval)
        for victim in (COORDINATOR, PARTICIPANT):
            print(f"SIGKILL node {victim} (pid {procs[victim].pid})")
            os.kill(procs[victim].pid, signal.SIGKILL)
            procs[victim].wait()

        time.sleep(5 * args.tick_interval)
        for victim in (COORDINATOR, PARTICIPANT):
            print(f"restarting node {victim} from its WAL")
            procs[victim] = start_node(args, victim)

        print("waiting for cluster-wide agreement...")
        deadline = time.monotonic() + args.settle
        agreed: dict[int, int] | None = None
        while time.monotonic() < deadline:
            if args.txns == 1:
                code, doc = cluster_status(args)
                if code == 0:
                    agreed = {1: next(iter(
                        {n["decision"] for n in doc["nodes"]}
                    ))}
                    break
            else:
                _, doc = cluster_status(args, check=False)
                agreed = multi_txn_agreement(args, doc)
                if agreed is not None:
                    break
            time.sleep(0.5)
        else:
            print("cluster did not reach agreement in time", file=sys.stderr)
            _, doc = cluster_status(args, check=False)
            print(json.dumps(doc, indent=2, sort_keys=True), file=sys.stderr)
            return 1

        incarnations = {n["pid"]: n["incarnation"] for n in doc["nodes"]}
        print(f"decisions:    {agreed}")
        print(f"incarnations: {incarnations}")
        if set(agreed.values()) != {1}:
            print("expected unanimous commits", file=sys.stderr)
            return 1
        if incarnations[COORDINATOR] < 1 or incarnations[PARTICIPANT] < 1:
            print("victims did not actually recover", file=sys.stderr)
            return 1
        print(
            f"OK: both victims replayed their WALs and "
            f"{'the commit' if args.txns == 1 else 'every commit'} held"
        )
        return 0
    finally:
        for proc in procs.values():
            if proc.poll() is None:
                proc.send_signal(signal.SIGTERM)
        for proc in procs.values():
            try:
                proc.wait(timeout=10)
            except subprocess.TimeoutExpired:
                proc.kill()


if __name__ == "__main__":
    sys.exit(main())
