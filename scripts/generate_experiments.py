#!/usr/bin/env python3
"""Regenerate EXPERIMENTS.md by running every experiment at full size.

Usage:  python scripts/generate_experiments.py [--quick]

``--quick`` uses the benchmark-sized workloads (minutes -> seconds); the
committed EXPERIMENTS.md is generated at full size.
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

from repro.experiments.registry import EXPERIMENTS, run_experiment

#: Per-experiment commentary: what the paper claims vs what to read off
#: the measured table.  The tables themselves are regenerated below.
COMMENTARY = {
    "E1": (
        "**Paper:** Lemma 8 — with `|coins| >= n`, every nonfaulty "
        "processor decides within an expected `E[X] < 4` stages.\n\n"
        "**Measured:** mean decision stage ~2 under both the fair random "
        "scheduler and the camp-splitting pattern adversary, for every "
        "swept `n`; the max observed stage also stays well below the "
        "bound.  The bound is comfortably met: the paper's 4 is a "
        "worst-case expectation over all admissible adversaries, and the "
        "implementable pattern-only adversaries cannot even keep the "
        "protocol from a first-stage majority for long."
    ),
    "E2": (
        "**Paper:** Theorem 10 — all nonfaulty processors decide within "
        "14 expected asynchronous rounds (close to 12 with longer coin "
        "lists).\n\n"
        "**Measured:** 2-4 mean rounds across sizes and adversaries, "
        "max <= 5 — well inside the budget.  The paper's 14 is an "
        "accounting worst case (6 rounds to enter Protocol 1 + 2 per "
        "stage x 4 expected stages); real schedules overlap those "
        "phases heavily."
    ),
    "E3": (
        "**Paper:** Remark 1 — failure-free on-time runs decide within "
        "at most `8K` clock ticks (4K for Protocol 2's preamble, 2K per "
        "Protocol 1 stage).\n\n"
        "**Measured:** the per-run bound held on every trial at every "
        "swept `K`; measured decision ticks are far below the budget "
        "because the synchronous schedule completes each wait in far "
        "fewer than `2K` ticks."
    ),
    "E4": (
        "**Paper:** Remark 2 — on-time (but not failure-free) runs "
        "decide in a constant expected number of clock ticks.\n\n"
        "**Measured:** mean decision ticks grow only mildly with the "
        "crash count (crashes convert commits into timeout-aborts, whose "
        "paths include the 2K timeouts) and are flat in `n` — constant "
        "in the sense of the remark: independent of schedule length, "
        "bounded by a fixed multiple of `K`."
    ),
    "E5": (
        "**Paper:** Remark 3 / Section 3 — the shared coin list is what "
        "lowers Ben-Or's exponential expected time to a constant; more "
        "coins push the Lemma 8 bound from 4 toward 3.\n\n"
        "**Measured:** with `|coins| = 0` (pure Ben-Or) the balancing "
        "attacker drives mean stages into the tens; any `|coins| >= 1` "
        "collapses it to ~2 stages (one balanced stage, then unanimity "
        "on the shared coin).  The 4-vs-3 tail difference the remark "
        "describes is below measurement noise here because the "
        "implementable attacker cannot stretch runs past the first "
        "shared coin."
    ),
    "E6": (
        "**Paper:** Theorem 11 — if more than `t` processors fail, no "
        "two processors make conflicting decisions; the protocol merely "
        "fails to terminate.\n\n"
        "**Measured:** conflict rate 0% at every crash count from 0 to "
        "n-1, including crashes in the middle of broadcasts; termination "
        "is 100% up to `t` crashes and 0% beyond — non-termination is "
        "exactly the failure mode the theorem allows."
    ),
    "E7": (
        "**Paper:** Theorem 14 — there is no t-nonblocking transaction "
        "commit protocol for `n <= 2t` (proved against all protocols; "
        "the proof's schedule operators are property-tested in "
        "`tests/lowerbound/`).\n\n"
        "**Measured:** under the proof's kill-half adversary our "
        "protocol exhibits the sharp threshold: at `n = 2t` every run "
        "blocks (0 terminations) yet stays consistent; at `n = 2t + 1` "
        "every run decides.  The survivors at the bound can fill their "
        "`n - t` waits but can never assemble a `> n/2` majority — the "
        "executable face of the indistinguishability argument."
    ),
    "E8": (
        "**Paper:** Theorem 17 — for any bound `B` some adversary forces "
        "expected decision time past `B` clock ticks; asynchronous "
        "rounds are the right measure because they stretch with message "
        "delay.\n\n"
        "**Measured:** decision ticks grow linearly in the delay "
        "multiplier `D` (about `4D + 2` for n=5) with no ceiling, while "
        "decision rounds stay within a small constant for every `D` — "
        "precisely the separation that motivates the round definition."
    ),
    "E9": (
        "**Paper:** Introduction — 'a single violation of the timing "
        "assumptions (i.e., a late message) can cause the protocol to "
        "produce the wrong answer' for the synchronous-model protocols "
        "[S]/[DS]; Protocol 2 is safe under any timing and trades "
        "commits for aborts instead.\n\n"
        "**Measured:** 2PC with presume-abort timeouts produces "
        "conflicting decisions under late fan-outs and under a "
        "coordinator crash mid-fan-out (every trial of the latter); its "
        "blocking variant never errs but hangs; 3PC errs under late "
        "messages too, and Skeen's decentralized one-phase commit — "
        "never blocking, all-broadcast — splits its decisions in most "
        "late-message runs.  Protocol 2's wrong-answer count is zero "
        "in every environment, as required."
    ),
    "E10": (
        "**Paper:** Section 1/3 — Ben-Or's protocol takes exponential "
        "expected time; supplying all processors with identical coin "
        "flips achieves constant expected time at optimal resilience.\n\n"
        "**Measured:** under the content-reading balancer (the classic "
        "anti-Ben-Or attack, strictly stronger than the paper's "
        "pattern-only adversary), Ben-Or's mean stages grow roughly as "
        "`2^(n-1)` (about 11 / 43 / 144 at n = 4 / 6 / 8) while "
        "Protocol 1 is flat at 2 stages — the balanced stage hands every "
        "processor the same shared coin and unanimity follows.  Under "
        "the pattern-only splitter both finish fast, confirming the "
        "attack needs information the paper's model denies."
    ),
    "E11": (
        "**Paper:** Section 1 — the protocol works as long as more than "
        "half the processors are nonfaulty, which Theorem 14 shows is "
        "optimal.\n\n"
        "**Measured:** across n = 5/7/9 the termination rate is 100% "
        "for every crash count up to `t = ceil(n/2) - 1` and 0% beyond, "
        "with a 0% conflict rate on both sides of the cliff."
    ),
    "E12": (
        "**Paper:** the related-work positioning in Sections 1 and 3 — "
        "Ben-Or [Be] is exponential; Rabin [R] is fast but 'requires a "
        "stronger model with a reliable distributor of coin flips'; "
        "Chor-Merritt-Shmoys [CMS] are fast online but tolerate fewer "
        "than n/6 faults; this paper's coordinator-shipped list is fast "
        "at the optimal t < n/2 with no added trust.\n\n"
        "**Measured (ablation):** the identical stage machinery under "
        "all four coin mechanisms.  Local coins explode under the "
        "balancer; dealer and coordinator lists produce literally "
        "matching rows (their difference is the trust model, visible in "
        "code, not in speed); the CMS-style weak shared coin is also "
        "flat here but its fault envelope column shows the cost: max "
        "t = (n-1)//6 versus (n-1)//2 for the list mechanisms — the "
        "paper's comparison point.  (The weak-shared implementation is "
        "a simplified stand-in; see DESIGN.md substitution notes.)"
    ),
    "E13": (
        "**Paper:** the aside after line 7 of Protocol 2 — 'at this "
        "point, any processor that has abort as its vote can actually "
        "implement the abort.'  Safe because a 0 vote forces every "
        "Protocol 1 input to 0 and validity then fixes the outcome.\n\n"
        "**Measured (ablation):** turning the optimisation on leaves "
        "every decision and consistency figure unchanged while the "
        "*first* processor enters the abort state roughly half the "
        "ticks earlier (before vote collection and the agreement "
        "subroutine rather than after), across no-voter and "
        "timeout-abort scenarios alike."
    ),
    "E14": (
        "**Paper:** the [DS] citation — Dwork and Skeen, 'The Inherent "
        "Cost of Nonblocking Commitment'.  The paper buys robustness "
        "(never a wrong answer, optimal crash tolerance, nonblocking in "
        "expectation) and pays in message complexity: every participant "
        "broadcasts in every exchange.\n\n"
        "**Measured (ablation):** on the same failure-free on-time "
        "schedule, envelopes-per-processor is flat in `n` for "
        "centralized 2PC (~2.5) and 3PC (~4.5) but grows linearly for "
        "the broadcast protocols: decentralized 1PC (one broadcast) "
        "and Protocol 2 (GO relay, vote broadcast, and two broadcasts "
        "per agreement stage — a constant factor above 1PC).  Same "
        "asymptotics as the cheapest decentralized commit, and unlike "
        "it, never a wrong answer — the cost/robustness trade the "
        "introduction and the Dwork-Skeen citation describe."
    ),
}

HEADER = """# EXPERIMENTS — paper vs. measured

Every quantitative claim of *Transaction Commit in a Realistic Fault
Model* (Coan & Lundelius, PODC 1986), reproduced.  The paper has no
numbered tables or figures; its lemmas, theorems, and closing remarks
play that role, and DESIGN.md §3 maps each to the experiment ids used
here.

All tables below are regenerated by this repository:

```
python scripts/generate_experiments.py          # full size (this file)
pytest benchmarks/ --benchmark-only             # quick sizes, same code
```

Numbers are simulator-scale (steps, stages, rounds — not milliseconds on
1986 hardware); the reproduced content is the *shape* of each claim:
which bound holds, who wins, where the thresholds sit.  Every table is
deterministic given the seeds embedded in the experiment code.

"""


def main() -> None:
    quick = "--quick" in sys.argv
    sections = [HEADER]
    for experiment_id, info in EXPERIMENTS.items():
        started = time.time()
        print(f"running {experiment_id} ({info.title}) ...", flush=True)
        table = run_experiment(experiment_id, quick=quick)
        elapsed = time.time() - started
        print(f"  done in {elapsed:.1f}s", flush=True)
        sections.append(f"## {experiment_id} — {info.title}\n")
        sections.append(COMMENTARY[experiment_id] + "\n")
        sections.append("```")
        sections.append(table.render())
        sections.append("```\n")
    output = Path(__file__).resolve().parent.parent / "EXPERIMENTS.md"
    output.write_text("\n".join(sections), encoding="utf-8")
    print(f"wrote {output}")


if __name__ == "__main__":
    main()
