"""Benchmark E3 -- Remark 1: failure-free on-time runs decide within 8K clock ticks.

Regenerates the E3 table of EXPERIMENTS.md (quick sizes by default;
set ``REPRO_BENCH_FULL=1`` for the full workload) and validates the
claim's headline property on the produced rows.
"""


def test_e3_failure_free_ticks(experiment_runner):
    table = experiment_runner("E3")

    held_column = table.columns.index("bound held")
    assert all(row[held_column] == "yes" for row in table.rows)
