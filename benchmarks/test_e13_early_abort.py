"""Benchmark E13 -- the unilateral early-abort ablation.

Regenerates the E13 table of EXPERIMENTS.md (quick sizes by default;
set ``REPRO_BENCH_FULL=1`` for the full workload) and validates the
claim's headline property on the produced rows.
"""


def test_e13_early_abort(experiment_runner):
    table = experiment_runner("E13")
    scenario_column = table.columns.index("scenario")
    early_column = table.columns.index("early abort")
    first_column = table.columns.index("mean first-abort ticks")
    consistent_column = table.columns.index("consistent")
    by_key = {
        (row[scenario_column], row[early_column]): row for row in table.rows
    }
    scenarios = {row[scenario_column] for row in table.rows}
    for scenario in scenarios:
        without = by_key[(scenario, "no")]
        with_early = by_key[(scenario, "yes")]
        assert with_early[first_column] < without[first_column]
        assert without[consistent_column] == "100%"
        assert with_early[consistent_column] == "100%"
