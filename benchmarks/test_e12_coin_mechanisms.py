"""Benchmark E12 -- coin-distribution mechanism ablation.

Regenerates the E12 table of EXPERIMENTS.md (quick sizes by default;
set ``REPRO_BENCH_FULL=1`` for the full workload) and validates the
claim's headline property on the produced rows.
"""


def test_e12_coin_mechanisms(experiment_runner):
    table = experiment_runner("E12")
    mechanism_column = table.columns.index("mechanism")
    stages_column = table.columns.index("mean stages")
    local_rows = [
        row[stages_column]
        for row in table.rows
        if row[mechanism_column] == "local (Ben-Or)"
    ]
    shared_rows = [
        row[stages_column]
        for row in table.rows
        if row[mechanism_column] != "local (Ben-Or)"
    ]
    assert min(local_rows) > 2 * max(shared_rows)
