"""Benchmark E10 -- Section 3: shared coins turn Ben-Or's exponential expected time into a constant.

Regenerates the E10 table of EXPERIMENTS.md (quick sizes by default;
set ``REPRO_BENCH_FULL=1`` for the full workload) and validates the
claim's headline property on the produced rows.
"""


def test_e10_benor_comparison(experiment_runner):
    table = experiment_runner("E10")

    balancer = "balancer (content-aware)"
    stages_column = table.columns.index("mean stages")
    benor = {}
    p1 = {}
    for row in table.rows:
        if row[1] != balancer:
            continue
        if row[2] == "Ben-Or":
            benor[row[0]] = row[stages_column]
        else:
            p1[row[0]] = row[stages_column]
    for n in benor:
        assert benor[n] > p1[n]
