"""Benchmark E5 -- Remark 3: the shared coin list is what makes termination fast.

Regenerates the E5 table of EXPERIMENTS.md (quick sizes by default;
set ``REPRO_BENCH_FULL=1`` for the full workload) and validates the
claim's headline property on the produced rows.
"""


def test_e5_coin_ablation(experiment_runner):
    table = experiment_runner("E5")

    coins_column = table.columns.index("|coins|")
    stages_column = table.columns.index("mean stages")
    by_coins = {row[coins_column]: row[stages_column] for row in table.rows}
    assert by_coins[0] > 2 * by_coins[1]
