"""Engine speedup benchmark: serial vs parallel wall-clock.

Built on :mod:`abharness` (self-timed, no pytest-benchmark dependency:
the point is a single honest A/B wall-clock pair, not statistical
rounds).  Runs a small set of experiments in quick mode at
``workers=1`` and ``workers=4``, asserts the result tables are
byte-identical, and writes everything observed — host fingerprint,
per-experiment timings, the speedup ratio, and the recorded
single-trial hot-path numbers — into
``benchmarks/results/engine.json``.

The speedup *assertion* is gated on the host core count: trial-level
parallelism cannot beat the clock on a single-CPU container (the pool
only adds IPC overhead there), so hosts report honestly instead of
failing:

* >= 4 cores: parallel must be at least 2.0x faster than serial;
* >= 2 cores: at least 1.3x;
* 1 core: numbers are recorded, no ratio is asserted.

Set ``REPRO_BENCH_FULL=1`` to time the full (non-quick) workloads.
"""

from __future__ import annotations

import os
import time

from abharness import host_metadata, write_results

from repro.experiments.registry import run_experiment

#: Experiments timed for the serial/parallel comparison: mid-size
#: Monte-Carlo batches with distinct adversary mixes.
TIMED_EXPERIMENTS = ("E1", "E2", "E5")

PARALLEL_WORKERS = 4

#: Single-trial (serial hot-path) reference numbers, measured on the
#: growth container with an interleaved best-of-9 harness against the
#: seed commit (f527b55) and this tree — the same script, alternating
#: between a baseline worktree and the optimized tree to cancel machine
#: drift.  Recorded here so ``engine.json`` carries the hot-path story
#: alongside the live parallel timings.
HOT_PATH_REFERENCE = {
    "method": (
        "interleaved best-of-9 A/B runs, identical script, baseline "
        "worktree at seed commit f527b55 vs this tree"
    ),
    "commit_trial_events_per_second": {
        "n=15": {"baseline": 10601, "optimized": 11854},
        "n=25": {"baseline": 6398, "optimized": 7534},
        "n=40": {"baseline": 3800, "optimized": 4237},
        "n=60": {"baseline": 2216, "optimized": 2558},
    },
    "e2_quick_serial_seconds": {"baseline": 0.410, "optimized": 0.360},
}


def _full_mode() -> bool:
    return os.environ.get("REPRO_BENCH_FULL", "") == "1"


def _time_experiments(quick: bool, workers: int):
    tables = {}
    timings = {}
    for experiment_id in TIMED_EXPERIMENTS:
        start = time.perf_counter()
        tables[experiment_id] = run_experiment(
            experiment_id, quick=quick, workers=workers
        )
        timings[experiment_id] = time.perf_counter() - start
    return tables, timings


def test_engine_speedup():
    quick = not _full_mode()

    # Warm-up (untimed): module imports for the serial path, and one
    # tiny parallel batch so the cached process pool's fork cost is not
    # charged to the first timed experiment.
    run_experiment("E3", quick=True, workers=1)
    run_experiment("E3", quick=True, workers=PARALLEL_WORKERS)

    serial_tables, serial_timings = _time_experiments(quick, workers=1)
    parallel_tables, parallel_timings = _time_experiments(
        quick, workers=PARALLEL_WORKERS
    )

    # Correctness before speed: the parallel tables must be
    # byte-identical to the serial ones.
    for experiment_id in TIMED_EXPERIMENTS:
        serial = serial_tables[experiment_id]
        parallel = parallel_tables[experiment_id]
        assert parallel.render() == serial.render()
        assert parallel.to_dict() == serial.to_dict()

    serial_total = sum(serial_timings.values())
    parallel_total = sum(parallel_timings.values())
    speedup = serial_total / parallel_total if parallel_total else float("inf")
    cpu_count = host_metadata()["cpu_count"]

    document = {
        "quick": quick,
        "experiments": list(TIMED_EXPERIMENTS),
        "parallel_workers": PARALLEL_WORKERS,
        "serial_seconds": serial_timings,
        "parallel_seconds": parallel_timings,
        "serial_total_seconds": serial_total,
        "parallel_total_seconds": parallel_total,
        "speedup": speedup,
        "speedup_asserted": cpu_count >= 2,
        "hot_path": HOT_PATH_REFERENCE,
    }
    write_results("engine.json", document)

    if cpu_count >= 4:
        assert speedup >= 2.0, (
            f"expected >= 2.0x speedup at workers={PARALLEL_WORKERS} on "
            f"{cpu_count} cores, got {speedup:.2f}x"
        )
    elif cpu_count >= 2:
        assert speedup >= 1.3, (
            f"expected >= 1.3x speedup at workers={PARALLEL_WORKERS} on "
            f"{cpu_count} cores, got {speedup:.2f}x"
        )
