"""Shared self-timed A/B benchmark harness.

Every benchmark in this directory follows the same discipline: no
pytest-benchmark dependency, interleaved A/B rounds so machine drift
cancels, best-of aggregation so scheduler noise cancels, and a JSON
artifact under ``benchmarks/results/`` recording everything observed.
This module is that discipline, factored out of
``test_engine_speedup.py`` and ``test_trace_overhead.py`` so new
benchmarks (``test_sim_core.py``) cannot drift from it.

Artifacts written through :func:`write_results` always carry the host
fingerprint — core count, Python version, and numpy presence — because
a speedup number is meaningless without knowing what produced it.
"""

from __future__ import annotations

import json
import os
import pathlib
import platform
import statistics
import time
from typing import Callable, Mapping

#: Where all benchmark artifacts land (committed alongside the code).
RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def host_metadata() -> dict:
    """The host fingerprint stamped into every artifact."""
    try:
        import numpy

        numpy_version: str | None = numpy.__version__
    except Exception:
        numpy_version = None
    return {
        "cpu_count": os.cpu_count() or 1,
        "python": platform.python_version(),
        "numpy": numpy_version,
    }


def timed(workload: Callable[[], object]) -> float:
    """Wall-clock seconds of one call to ``workload``."""
    start = time.perf_counter()
    workload()
    return time.perf_counter() - start


def interleaved_rounds(
    sides: Mapping[str, Callable[[int], object]], rounds: int
) -> dict[str, list[float]]:
    """Time each side once per round, alternating within the round.

    ``sides`` maps a label to a workload taking the round index (use it
    to vary seeds).  Interleaving means a load spike on the host hits
    all sides of the comparison roughly equally instead of biasing
    whichever side happened to run during it.
    """
    timings: dict[str, list[float]] = {name: [] for name in sides}
    for round_index in range(rounds):
        for name, workload in sides.items():
            start = time.perf_counter()
            workload(round_index)
            timings[name].append(time.perf_counter() - start)
    return timings


def best_of(timings: Mapping[str, list[float]]) -> dict[str, float]:
    """Per-side minimum — the noise-free estimate of each side's cost."""
    return {name: min(values) for name, values in timings.items()}


def timing_summary(timings: Mapping[str, list[float]]) -> dict:
    """Raw rounds plus best/median per side, ready for an artifact."""
    return {
        name: {
            "seconds": values,
            "best_seconds": min(values),
            "median_seconds": statistics.median(values),
        }
        for name, values in timings.items()
    }


def write_results(filename: str, document: dict) -> pathlib.Path:
    """Write ``document`` (host fingerprint prepended) as a results file."""
    stamped = {"host": host_metadata(), **document}
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / filename
    path.write_text(
        json.dumps(stamped, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return path
