"""Benchmark E1 -- Lemma 8: Protocol 1 decides in < 4 expected stages.

Regenerates the E1 table of EXPERIMENTS.md (quick sizes by default;
set ``REPRO_BENCH_FULL=1`` for the full workload) and validates the
claim's headline property on the produced rows.
"""


def test_e1_agreement_stages(experiment_runner):
    table = experiment_runner("E1")

    mean_column = table.columns.index("mean stages")
    assert all(row[mean_column] < 4 for row in table.rows)
