"""Multi-transaction commit throughput benchmark.

Drives the open-loop load generator (:mod:`repro.service.load`)
through sharded commit groups and records transactions per virtual
second plus p50/p99 submission-to-decision latency into
``benchmarks/results/BENCH_throughput.json``.

Unlike the wall-clock A/B benchmarks, every number here is measured on
the virtual clock: a run is deterministic in ``(txns, rate, shards,
seed)``, so the artifact is machine-independent and the assertion
floor — 500 committed txn/s on a single five-node shard — cannot
flake on a loaded runner.  A kill/recover configuration rides along to
record what sustained crash-recovery traffic costs, with the usual
zero-violation safety gate.
"""

from __future__ import annotations

from abharness import write_results

from repro.service.load import run_load

#: Open-loop configurations: (label, txns, offered rate txn/s, shards,
#: group size, kills).  Rates are offered load on the virtual clock;
#: the report records what the service actually sustained.
CONFIGS = (
    ("1shard", 120, 600.0, 1, 5, 0),
    ("2shard", 160, 800.0, 2, 5, 0),
    ("4shard", 200, 1200.0, 4, 5, 0),
    ("2shard_kill_recover", 120, 400.0, 2, 5, 2),
)

SEED = 11

#: Assertion floor for the single-shard configuration (virtual txn/s).
MIN_SINGLE_SHARD_THROUGHPUT = 500.0


def test_multi_txn_throughput():
    sweeps = {}
    by_label = {}
    for label, txns, rate, shards, group_size, kills in CONFIGS:
        report = run_load(
            txns=txns,
            rate=rate,
            shards=shards,
            group_size=group_size,
            seed=SEED,
            kills=kills,
        )
        # Correctness before performance: every transaction decided,
        # no two group members disagreeing on any of them.
        assert report.outcome == "terminated", (
            f"{label}: undecided txns {report.undecided}"
        )
        assert report.decided == txns, label
        assert report.safety_violations == 0, label
        if kills:
            assert report.recoveries >= 1, label
        by_label[label] = report
        sweeps[label] = report.to_dict()

    single = by_label["1shard"]
    assert single.throughput >= MIN_SINGLE_SHARD_THROUGHPUT, (
        f"single shard sustained {single.throughput:.0f} txn/s, "
        f"floor is {MIN_SINGLE_SHARD_THROUGHPUT:.0f}"
    )
    # Sharding must actually scale: four independent groups sustain
    # strictly more than one.
    assert by_label["4shard"].throughput > single.throughput

    write_results(
        "BENCH_throughput.json",
        {
            "benchmark": "multi_txn_throughput",
            "clock": "virtual",
            "seed": SEED,
            "min_single_shard_throughput": MIN_SINGLE_SHARD_THROUGHPUT,
            "sweeps": sweeps,
        },
    )
