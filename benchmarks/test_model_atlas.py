"""Protocol degradation atlas benchmark.

Fans the protocol battery (Protocol 1, Protocol 2, 2PC, 3PC) across the
timing-model zoo (:mod:`repro.models`) and records the per-cell
degradation numbers — termination rate, mean rounds, decision latency,
decision mix, safety violations — into
``benchmarks/results/BENCH_model_atlas.json``.

Like ``test_throughput.py``, every number is measured on the virtual
clock: a run is deterministic in the :class:`AtlasConfig` alone, so the
artifact is machine-independent.  Correctness gates before numbers:

* the reference protocol (Protocol 2) must show **zero** safety
  violations in *every* timing model — degradation may cost liveness,
  never safety;
* under the realistic model (the paper's), Protocol 2 must still
  terminate in a healthy majority of trials (the nonblocking theorem,
  sampled across faulty schedules);
* the grid must actually cover >= 4 protocols x >= 4 models.

Set ``REPRO_BENCH_FULL=1`` for a larger per-cell trial count.
"""

from __future__ import annotations

import time

from abharness import write_results
from conftest import full_mode

from repro.models.atlas import (
    AtlasConfig,
    reference_protocol_safe,
    run_atlas,
)

SEED = 0

#: Protocol 2 must terminate in at least this fraction of realistic-model
#: trials (the sweep includes over-budget crash plans, so 100% is not
#: expected — but the paper's model must stay clearly nonblocking).
MIN_REALISTIC_TERMINATION = 0.5


def test_model_atlas():
    config = AtlasConfig(
        n=5,
        K=4,
        trials=50 if full_mode() else 25,
        base_seed=SEED,
        max_steps=6_000,
    )
    start = time.perf_counter()
    report = run_atlas(config)
    seconds = time.perf_counter() - start

    protocols = {name.split("/", 1)[0] for name in report["cells"]}
    models = {name.split("/", 1)[1] for name in report["cells"]}
    assert len(protocols) >= 4, protocols
    assert len(models) >= 4, models
    assert len(report["cells"]) == len(protocols) * len(models)

    # Correctness before numbers: the reference protocol keeps safety in
    # every timing model, and every cell ran its full trial count.
    assert reference_protocol_safe(report), [
        (name, cell["violations"])
        for name, cell in report["cells"].items()
        if name.startswith("protocol2/") and cell["safety_violations"]
    ]
    for name, cell in report["cells"].items():
        assert cell["trials"] == config.trials, name

    realistic = report["cells"]["protocol2/realistic"]
    assert realistic["termination_rate"] >= MIN_REALISTIC_TERMINATION, (
        f"protocol2/realistic terminated in only "
        f"{realistic['termination_rate']:.0%} of trials"
    )

    write_results(
        "BENCH_model_atlas.json",
        {
            "benchmark": "model_atlas",
            "clock": "virtual",
            "seconds": seconds,
            "min_realistic_termination": MIN_REALISTIC_TERMINATION,
            "report": report,
        },
    )
