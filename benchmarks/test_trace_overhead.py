"""Span-tracing overhead benchmark: disabled tracing must stay free.

Built on :mod:`abharness`: self-timed, interleaved A/B rounds
(alternating disabled and enabled tracing so machine drift cancels),
with everything observed written to
``benchmarks/results/trace_overhead.json``.

Two claims are asserted:

* with tracing **disabled** (the default), the instrumented code paths
  cost nothing measurable — the disabled runs must stay within a small
  tolerance of the enabled runs' cost *floor* (the real guard: the
  hot-path check is one module-global read, so disabled can never be
  slower than enabled beyond noise);
* with tracing **enabled**, the post-hoc span build stays affordable —
  bounded by a generous multiplier, since recording replays the run
  once more.
"""

from __future__ import annotations

import statistics

from abharness import best_of, interleaved_rounds, write_results

from repro.adversary.standard import OnTimeAdversary
from repro.core.api import run_commit
from repro.trace.spans import SpanRecorder, use_recorder

#: Interleaved A/B rounds; best-of cancels scheduler noise.
ROUNDS = 7

#: Disabled tracing may not cost more than this multiple of enabled
#: tracing's best time (it should in fact be *faster*; the bound only
#: needs to absorb timer noise on loaded CI hosts).
DISABLED_VS_ENABLED_CEILING = 1.10

#: Enabled tracing replays the completed run into spans once; bound the
#: total cost at this multiple of the untraced run.
ENABLED_VS_DISABLED_CEILING = 3.0


def _workload(seed: int, traced: bool) -> int:
    outcome = run_commit(
        [1, 1, 0, 1, 1],
        K=4,
        seed=seed,
        adversary=OnTimeAdversary(K=4, seed=seed),
        max_steps=50_000,
    )
    if traced:
        recorder = SpanRecorder()
        with use_recorder(recorder):
            # Re-run with the recorder installed so the scheduler's
            # post-hoc record_run hook fires, as under --trace-spans.
            outcome = run_commit(
                [1, 1, 0, 1, 1],
                K=4,
                seed=seed,
                adversary=OnTimeAdversary(K=4, seed=seed),
                max_steps=50_000,
            )
        assert len(recorder) > 0
    return outcome.run.event_count


def test_trace_overhead():
    # Warm-up, untimed: imports and allocator steady state.
    _workload(0, traced=False)
    _workload(0, traced=True)

    timings = interleaved_rounds(
        {
            "disabled": lambda r: _workload(100 + r, traced=False),
            "enabled": lambda r: _workload(100 + r, traced=True),
        },
        ROUNDS,
    )
    disabled = timings["disabled"]
    enabled = timings["enabled"]

    bests = best_of(timings)
    best_disabled = bests["disabled"]
    best_enabled = bests["enabled"]
    # The enabled leg runs the simulation twice (untraced then traced),
    # so its per-run cost floor is half its best total.
    enabled_per_run = best_enabled / 2

    document = {
        "rounds": ROUNDS,
        "disabled_seconds": disabled,
        "enabled_seconds": enabled,
        "best_disabled_seconds": best_disabled,
        "best_enabled_seconds": best_enabled,
        "median_disabled_seconds": statistics.median(disabled),
        "median_enabled_seconds": statistics.median(enabled),
        "enabled_per_run_seconds": enabled_per_run,
        "disabled_vs_enabled_ratio": best_disabled / enabled_per_run,
        "ceilings": {
            "disabled_vs_enabled": DISABLED_VS_ENABLED_CEILING,
            "enabled_vs_disabled": ENABLED_VS_DISABLED_CEILING,
        },
    }
    write_results("trace_overhead.json", document)

    assert best_disabled <= enabled_per_run * DISABLED_VS_ENABLED_CEILING, (
        f"disabled tracing should be at most {DISABLED_VS_ENABLED_CEILING}x "
        f"an enabled run ({best_disabled:.4f}s vs {enabled_per_run:.4f}s "
        f"per run) — the off-switch is leaking overhead"
    )
    assert best_enabled <= best_disabled * 2 * ENABLED_VS_DISABLED_CEILING, (
        f"enabled tracing cost {best_enabled:.4f}s vs {best_disabled:.4f}s "
        f"untraced — post-hoc span building regressed"
    )
