"""Benchmark E11 -- Section 1: termination threshold sits exactly at t = ceil(n/2) - 1 crashes.

Regenerates the E11 table of EXPERIMENTS.md (quick sizes by default;
set ``REPRO_BENCH_FULL=1`` for the full workload) and validates the
claim's headline property on the produced rows.
"""


def test_e11_fault_tolerance(experiment_runner):
    table = experiment_runner("E11")

    crash_column = table.columns.index("crashes")
    termination_column = table.columns.index("termination rate")
    t_column = table.columns.index("t")
    for row in table.rows:
        expected = "100%" if row[crash_column] <= row[t_column] else "0%"
        assert row[termination_column] == expected
