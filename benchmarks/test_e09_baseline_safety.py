"""Benchmark E9 -- Introduction: late messages break [S]/[DS]-style baselines, never Protocol 2.

Regenerates the E9 table of EXPERIMENTS.md (quick sizes by default;
set ``REPRO_BENCH_FULL=1`` for the full workload) and validates the
claim's headline property on the produced rows.
"""


def test_e9_baseline_safety(experiment_runner):
    table = experiment_runner("E9")

    protocol_column = table.columns.index("protocol")
    wrong_column = table.columns.index("wrong answers")
    for row in table.rows:
        if row[protocol_column] == "Protocol 2":
            assert row[wrong_column] == 0
