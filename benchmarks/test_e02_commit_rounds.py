"""Benchmark E2 -- Theorem 10: Protocol 2 decides in <= 14 expected asynchronous rounds.

Regenerates the E2 table of EXPERIMENTS.md (quick sizes by default;
set ``REPRO_BENCH_FULL=1`` for the full workload) and validates the
claim's headline property on the produced rows.
"""


def test_e2_commit_rounds(experiment_runner):
    table = experiment_runner("E2")

    mean_column = table.columns.index("mean rounds")
    assert all(row[mean_column] <= 14 for row in table.rows)
