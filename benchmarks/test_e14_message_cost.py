"""Benchmark E14 -- the message cost of nonblocking commitment.

Regenerates the E14 table of EXPERIMENTS.md (quick sizes by default;
set ``REPRO_BENCH_FULL=1`` for the full workload) and validates the
claim's headline property on the produced rows.
"""


def test_e14_message_cost(experiment_runner):
    table = experiment_runner("E14")
    protocol_column = table.columns.index("protocol")
    n_column = table.columns.index("n")
    per_n_column = table.columns.index("envelopes / n")
    per_n = {
        (row[protocol_column], row[n_column]): row[per_n_column]
        for row in table.rows
    }
    sizes = sorted({row[n_column] for row in table.rows})
    small, large = sizes[0], sizes[-1]
    # Linear protocols: envelopes/n roughly flat across n.
    for protocol in ("2PC", "3PC"):
        assert per_n[(protocol, large)] < 2 * per_n[(protocol, small)]
    # Broadcast protocols: envelopes/n grows ~linearly (quadratic total).
    for protocol in ("decentralized 1PC", "Protocol 2"):
        ratio = per_n[(protocol, large)] / per_n[(protocol, small)]
        assert ratio > 1.5
