"""Benchmark harness support.

Each benchmark runs one experiment (quick mode by default — set
``REPRO_BENCH_FULL=1`` for the full EXPERIMENTS.md workloads), times it
via pytest-benchmark, validates the claim's headline property, and writes
the rendered table under ``benchmarks/results/`` so the numbers that back
EXPERIMENTS.md are regenerated on every run.
"""

from __future__ import annotations

import os
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def full_mode() -> bool:
    """Whether to run the full (slow) experiment workloads."""
    return os.environ.get("REPRO_BENCH_FULL", "") == "1"


@pytest.fixture
def experiment_runner(benchmark):
    """Run one experiment under pytest-benchmark and persist its table."""

    def run(experiment_id: str):
        from repro.experiments.registry import run_experiment

        quick = not full_mode()
        table = benchmark.pedantic(
            lambda: run_experiment(experiment_id, quick=quick),
            rounds=1,
            iterations=1,
        )
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{experiment_id.lower()}.txt"
        path.write_text(table.render() + "\n", encoding="utf-8")
        return table

    return run
