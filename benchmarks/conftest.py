"""Benchmark harness support.

Each benchmark runs one experiment (quick mode by default — set
``REPRO_BENCH_FULL=1`` for the full EXPERIMENTS.md workloads), times it
via pytest-benchmark, validates the claim's headline property, and writes
the rendered table under ``benchmarks/results/`` — both the human
``<id>.txt`` and a machine-readable ``<id>.json`` (table rows plus
timing) — so the numbers that back EXPERIMENTS.md are regenerated on
every run.
"""

from __future__ import annotations

import json
import os
import pathlib
import time

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def full_mode() -> bool:
    """Whether to run the full (slow) experiment workloads."""
    return os.environ.get("REPRO_BENCH_FULL", "") == "1"


def bench_workers() -> int:
    """Worker processes per benchmarked experiment.

    Defaults to 1 (serial) so pytest-benchmark timings measure the
    single-process hot path; set ``REPRO_BENCH_WORKERS=N`` to benchmark
    the parallel engine instead.  Invalid values (zero, negative,
    non-integer) are rejected rather than silently clamped.
    """
    from repro.engine.executor import workers_from_env

    return workers_from_env("REPRO_BENCH_WORKERS", 1)


@pytest.fixture
def experiment_runner(benchmark):
    """Run one experiment under pytest-benchmark and persist its table."""

    def run(experiment_id: str):
        from repro.experiments.registry import run_experiment

        quick = not full_mode()
        workers = bench_workers()
        timing: dict[str, float] = {}

        def timed() -> object:
            start = time.perf_counter()
            result = run_experiment(experiment_id, quick=quick, workers=workers)
            timing["seconds"] = time.perf_counter() - start
            return result

        table = benchmark.pedantic(timed, rounds=1, iterations=1)
        RESULTS_DIR.mkdir(exist_ok=True)
        stem = experiment_id.lower()
        text_path = RESULTS_DIR / f"{stem}.txt"
        text_path.write_text(table.render() + "\n", encoding="utf-8")
        document = {
            "id": experiment_id,
            "quick": quick,
            "workers": workers,
            "seconds": timing.get("seconds"),
            "table": table.to_dict(),
        }
        json_path = RESULTS_DIR / f"{stem}.json"
        json_path.write_text(
            json.dumps(document, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        return table

    return run
