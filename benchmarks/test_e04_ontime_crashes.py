"""Benchmark E4 -- Remark 2: on-time runs with <= t crashes decide in constant expected ticks.

Regenerates the E4 table of EXPERIMENTS.md (quick sizes by default;
set ``REPRO_BENCH_FULL=1`` for the full workload) and validates the
claim's headline property on the produced rows.
"""


def test_e4_ontime_crashes(experiment_runner):
    table = experiment_runner("E4")

    termination_column = table.columns.index("terminated")
    assert all(row[termination_column] == "100%" for row in table.rows)
