"""Benchmark E7 -- Theorem 14: the n > 2t resilience bound is sharp.

Regenerates the E7 table of EXPERIMENTS.md (quick sizes by default;
set ``REPRO_BENCH_FULL=1`` for the full workload) and validates the
claim's headline property on the produced rows.
"""


def test_e7_resilience_bound(experiment_runner):
    table = experiment_runner("E7")

    relation_column = table.columns.index("relation")
    terminated_column = table.columns.index("terminated")
    for row in table.rows:
        blocked = row[terminated_column].startswith("0/")
        assert blocked == (row[relation_column] == "n = 2t")
