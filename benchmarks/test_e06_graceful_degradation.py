"""Benchmark E6 -- Theorem 11: beyond t faults, never a conflict - only non-termination.

Regenerates the E6 table of EXPERIMENTS.md (quick sizes by default;
set ``REPRO_BENCH_FULL=1`` for the full workload) and validates the
claim's headline property on the produced rows.
"""


def test_e6_graceful_degradation(experiment_runner):
    table = experiment_runner("E6")

    conflict_column = table.columns.index("conflict rate")
    assert all(row[conflict_column] == "0%" for row in table.rows)
