"""Sim-core A/B benchmark: fast core vs reference on commit trials.

Built on :mod:`abharness`: interleaved best-of-N rounds alternating the
two cores over identical trial batches, so machine drift cancels.
Correctness before speed — the per-trial :class:`RunMetrics` bundles
must be equal across cores before any timing is believed.

The artifact (``benchmarks/results/BENCH_sim_core.json``, or
``BENCH_sim_core_nonumpy.json`` when ``REPRO_SIM_NUMPY`` disables the
numpy paths) records events/second per core and the speedup per
problem size.  The assertion gate is 3.0x — deliberately below the
~5x+ the artifact shows on the development host, so loaded CI machines
report honestly instead of flaking; a fast core slower than 3x the
reference means the sweep path fell off its whitelist.
"""

from __future__ import annotations

from abharness import best_of, interleaved_rounds, timing_summary, write_results

from repro.adversary.standard import OnTimeAdversary
from repro.analysis.montecarlo import CommitTrialConfig, run_commit_trial
from repro.sim.coreselect import numpy_allowed, set_default_sim_core

#: (processor count, trials per batch): a mid-size and a larger commit
#: quorum, both on the all-ones vote pattern that exercises the full
#: commit path.
SIZES = ((15, 30), (25, 12))

#: Interleaved rounds per size; best-of cancels scheduler noise.
ROUNDS = 5

#: Assertion floor for the fast core's speedup (see module docstring).
MIN_SPEEDUP = 3.0


def _config(n: int) -> CommitTrialConfig:
    return CommitTrialConfig(
        votes=[1] * n,
        adversary_factory=lambda seed: OnTimeAdversary(K=4, seed=seed),
        K=4,
    )


def _batch(config: CommitTrialConfig, trials: int, core: str):
    set_default_sim_core(core)
    try:
        return [run_commit_trial(config, seed) for seed in range(trials)]
    finally:
        set_default_sim_core(None)


def test_sim_core_speedup():
    sizes = {}
    for n, trials in SIZES:
        config = _config(n)

        # Correctness first: identical metrics, then identical event
        # totals are implied — events/s comparisons are apples-to-apples.
        reference_metrics = _batch(config, trials, "reference")
        fast_metrics = _batch(config, trials, "fast")
        assert fast_metrics == reference_metrics, (
            f"fast core diverged from reference at n={n}"
        )
        events = sum(m.events for m in reference_metrics)

        timings = interleaved_rounds(
            {
                "reference": lambda r: _batch(config, trials, "reference"),
                "fast": lambda r: _batch(config, trials, "fast"),
            },
            ROUNDS,
        )
        bests = best_of(timings)
        speedup = bests["reference"] / bests["fast"]
        sizes[f"n={n}"] = {
            "trials": trials,
            "events": events,
            "timings": timing_summary(timings),
            "events_per_second": {
                core: events / best for core, best in bests.items()
            },
            "speedup": speedup,
        }

    document = {
        "adversary": "OnTimeAdversary(K=4)",
        "rounds": ROUNDS,
        "numpy_enabled": numpy_allowed(),
        "min_speedup_asserted": MIN_SPEEDUP,
        "sizes": sizes,
    }
    name = (
        "BENCH_sim_core.json"
        if numpy_allowed()
        else "BENCH_sim_core_nonumpy.json"
    )
    write_results(name, document)

    for label, entry in sizes.items():
        assert entry["speedup"] >= MIN_SPEEDUP, (
            f"fast core speedup at {label} was {entry['speedup']:.2f}x, "
            f"below the {MIN_SPEEDUP}x floor — did the sweep path fall "
            f"off its whitelist?"
        )
