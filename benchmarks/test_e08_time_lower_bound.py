"""Benchmark E8 -- Theorem 17: clock ticks grow without bound; asynchronous rounds stay constant.

Regenerates the E8 table of EXPERIMENTS.md (quick sizes by default;
set ``REPRO_BENCH_FULL=1`` for the full workload) and validates the
claim's headline property on the produced rows.
"""


def test_e8_time_lower_bound(experiment_runner):
    table = experiment_runner("E8")

    ticks_column = table.columns.index("mean ticks")
    rounds_column = table.columns.index("max rounds")
    ticks = [row[ticks_column] for row in table.rows]
    assert ticks == sorted(ticks) and ticks[-1] > 2 * ticks[0]
    assert all(row[rounds_column] <= 14 for row in table.rows)
