"""The batch trial-execution engine.

Experiments are Monte-Carlo batches of independent trials, each fully
determined by ``(adversary, programs, seed)`` — the paper's
``run(A, I, F)``.  Independence makes trial-level parallelism safe:
this module fans seeded trials out across a ``ProcessPoolExecutor`` and
guarantees the result list is **byte-identical** to the serial path:

* seeds are partitioned into contiguous, ordered chunks
  (:func:`~repro.engine.spec.chunk_seeds`), each chunk runs its seeds in
  order, and chunks are reassembled in submission order — so results
  come back exactly as ``[trial(s) for s in seeds]`` would produce them;
* each worker runs its chunk under a fresh
  :class:`~repro.telemetry.registry.MetricsRegistry` and ships the
  snapshot back; the parent merges snapshots in chunk order, so counter
  totals equal the serial run's and ``--trace-out`` / ``--json``
  artifacts keep their schema;
* execution falls back to the plain in-process loop when ``workers=1``,
  when the batch has at most one seed, or when the trial (or its
  configuration) cannot be pickled — lambdas and closures still work,
  they just do not parallelise.

Workers are plain OS processes, so trials must be picklable: use
module-level trial functions, ``functools.partial`` over them, and
:class:`~repro.engine.spec.SeededFactory` for adversary factories.
"""

from __future__ import annotations

import atexit
import concurrent.futures
import os
import pickle
from typing import Any, Callable, Iterable, Sequence

from repro.engine.seeds import trial_seed
from repro.engine.spec import ChunkResult, TrialResult, TrialSpec, chunk_seeds
from repro.errors import ConfigurationError
from repro.telemetry.log import get_logger
from repro.telemetry.registry import (
    MetricsRegistry,
    active_registry,
    use_registry,
)

_log = get_logger("engine")

#: Target number of chunks per worker: >1 smooths load imbalance between
#: chunks (trials vary in length) without drowning the batch in IPC.
_CHUNKS_PER_WORKER = 4

#: Module default used when a caller passes ``workers=None`` and no
#: override is installed: serial execution.  Library call sites stay
#: in-process unless a CLI flag or caller opts in.
_default_workers_override: int | None = None


def workers_from_env(name: str, default: int) -> int:
    """Parse a worker-count environment variable, strictly.

    Unset (or blank) values fall back to ``default``; anything else must
    be an integer >= 1.  Zero, negative, and non-integer values are
    rejected with a :class:`~repro.errors.ConfigurationError` naming the
    variable — silently clamping ``REPRO_WORKERS=0`` to 1 used to mask
    typos in CI configs.
    """
    raw = os.environ.get(name)
    if raw is None or not raw.strip():
        return default
    try:
        workers = int(raw.strip())
    except ValueError:
        raise ConfigurationError(
            f"{name} must be an integer >= 1, got {raw!r}"
        ) from None
    if workers < 1:
        raise ConfigurationError(
            f"{name} must be >= 1, got {workers}; unset it to use the "
            f"default ({default})"
        )
    return workers


def default_workers() -> int:
    """The machine-derived worker count: ``REPRO_WORKERS`` or cpu count."""
    return workers_from_env("REPRO_WORKERS", os.cpu_count() or 1)


def set_default_workers(workers: int | None) -> None:
    """Install a process-wide default for ``workers=None`` call sites.

    The CLI uses this so ``--workers`` reaches every engine-routed batch
    in the invocation without threading the value through each layer.
    ``None`` removes the override (back to serial).
    """
    global _default_workers_override
    if workers is not None and workers < 1:
        raise ConfigurationError(f"workers must be >= 1, got {workers}")
    _default_workers_override = workers


def resolve_workers(workers: int | None) -> int:
    """Resolve a ``workers`` argument to a concrete count."""
    if workers is None:
        return (
            _default_workers_override
            if _default_workers_override is not None
            else 1
        )
    if workers < 1:
        raise ConfigurationError(f"workers must be >= 1, got {workers}")
    return workers


# -- worker side -------------------------------------------------------------


def _execute_chunk(payload: bytes) -> ChunkResult:
    """Run one pickled :class:`TrialSpec` inside a worker process.

    The chunk runs under a fresh registry so concurrent workers never
    contend on (or double-count into) inherited telemetry state; the
    snapshot travels back with the results for an ordered merge.
    """
    spec: TrialSpec = pickle.loads(payload)
    registry = MetricsRegistry(enabled=spec.telemetry)
    with use_registry(registry):
        results = tuple(
            TrialResult(seed=seed, value=spec.trial(seed))
            for seed in spec.seeds
        )
    return ChunkResult(
        chunk_index=spec.chunk_index,
        results=results,
        telemetry_snapshot=registry.snapshot() if spec.telemetry else None,
    )


# -- pool management ---------------------------------------------------------

_pools: dict[int, concurrent.futures.ProcessPoolExecutor] = {}


def _pool_for(workers: int) -> concurrent.futures.ProcessPoolExecutor:
    """A cached process pool with ``workers`` workers.

    Pools are reused across batches (an experiment runs many small
    batches; paying fork start-up once matters on short workloads) and
    torn down at interpreter exit.
    """
    pool = _pools.get(workers)
    if pool is None:
        pool = concurrent.futures.ProcessPoolExecutor(max_workers=workers)
        _pools[workers] = pool
    return pool


def _discard_pool(workers: int) -> None:
    pool = _pools.pop(workers, None)
    if pool is not None:
        pool.shutdown(wait=False, cancel_futures=True)


@atexit.register
def _shutdown_pools() -> None:  # pragma: no cover - interpreter teardown
    for workers in list(_pools):
        _discard_pool(workers)


# -- the engine --------------------------------------------------------------


class TrialEngine:
    """Runs batches of independent seeded trials, serially or fanned out.

    Args:
        workers: worker process count; ``None`` resolves through
            :func:`resolve_workers` (serial unless a default override is
            installed).  ``1`` always runs in-process.
    """

    def __init__(self, workers: int | None = None) -> None:
        self.workers = resolve_workers(workers)

    # -- public API --------------------------------------------------------

    def map(
        self, trial: Callable[[int], Any], seeds: Iterable[int]
    ) -> list[Any]:
        """Run ``trial`` at every seed; results in seed order.

        The contract all callers rely on: ``engine.map(f, seeds)`` equals
        ``[f(s) for s in seeds]`` — same values, same order — whatever
        the worker count.
        """
        seeds = tuple(seeds)
        if not seeds:
            return []
        if self.workers <= 1 or len(seeds) == 1:
            return [trial(seed) for seed in seeds]
        payloads = self._encode_chunks(trial, seeds)
        if payloads is None:
            return [trial(seed) for seed in seeds]
        return self._run_parallel(trial, seeds, payloads)

    def run_batch(
        self,
        trial: Callable[[int], Any],
        trials: int,
        base_seed: int = 0,
    ) -> list[Any]:
        """Run ``trials`` consecutive seeds starting at ``base_seed``."""
        if trials <= 0:
            raise ConfigurationError(
                f"need at least one trial, got {trials}"
            )
        return self.map(
            trial, (trial_seed(base_seed, i) for i in range(trials))
        )

    # -- internals ---------------------------------------------------------

    def _encode_chunks(
        self, trial: Callable[[int], Any], seeds: tuple[int, ...]
    ) -> list[bytes] | None:
        """Pickle per-chunk specs, or ``None`` if the trial won't travel."""
        telemetry = active_registry() is not None
        specs = [
            TrialSpec(
                trial=trial,
                seeds=chunk,
                chunk_index=index,
                telemetry=telemetry,
            )
            for index, chunk in enumerate(
                chunk_seeds(seeds, self.workers * _CHUNKS_PER_WORKER)
            )
        ]
        try:
            return [pickle.dumps(spec) for spec in specs]
        except Exception as exc:  # noqa: BLE001 - any pickling failure
            _log.debug(
                "trial %r is not picklable (%s); falling back to "
                "in-process execution",
                trial,
                exc,
            )
            registry = active_registry()
            if registry is not None:
                registry.counter(
                    "engine_fallbacks_total",
                    "parallel batches demoted to serial, by reason",
                ).inc(reason="unpicklable")
            return None

    def _run_parallel(
        self,
        trial: Callable[[int], Any],
        seeds: tuple[int, ...],
        payloads: list[bytes],
    ) -> list[Any]:
        registry = active_registry()
        try:
            pool = _pool_for(self.workers)
            futures = [pool.submit(_execute_chunk, p) for p in payloads]
            chunks = [future.result() for future in futures]
        except concurrent.futures.process.BrokenProcessPool:
            # A worker died (OOM, signal); rebuild the pool lazily and
            # run this batch serially rather than losing the experiment.
            _log.warning(
                "process pool (workers=%d) broke; running %d trials "
                "in-process",
                self.workers,
                len(seeds),
            )
            _discard_pool(self.workers)
            if registry is not None:
                registry.counter(
                    "engine_fallbacks_total",
                    "parallel batches demoted to serial, by reason",
                ).inc(reason="broken_pool")
            return [trial(seed) for seed in seeds]
        # Reassemble in chunk order == seed order; merge telemetry the
        # same way so parallel snapshots match serial ones.
        results: list[Any] = []
        for expected_index, chunk in enumerate(chunks):
            if chunk.chunk_index != expected_index:  # pragma: no cover
                raise ConfigurationError(
                    f"engine chunk order violated: got chunk "
                    f"{chunk.chunk_index} at position {expected_index}"
                )
            results.extend(result.value for result in chunk.results)
            if registry is not None and chunk.telemetry_snapshot:
                registry.merge_snapshot(chunk.telemetry_snapshot)
        if registry is not None:
            registry.counter(
                "engine_trials_total", "trials executed via the engine"
            ).inc(len(seeds), mode="parallel")
            registry.counter(
                "engine_chunks_total", "worker chunks dispatched"
            ).inc(len(payloads))
        return results


def run_trials(
    trial: Callable[[int], Any],
    trials: int | None = None,
    *,
    base_seed: int = 0,
    seeds: Sequence[int] | None = None,
    workers: int | None = None,
) -> list[Any]:
    """Run a batch of seeded trials; the module-level convenience form.

    Exactly one of ``trials`` (consecutive seeds from ``base_seed``) or
    ``seeds`` (an explicit list) must be given.  Results are returned in
    seed order and are identical to ``[trial(s) for s in seeds]`` for
    every worker count.
    """
    engine = TrialEngine(workers=workers)
    if (trials is None) == (seeds is None):
        raise ConfigurationError(
            "pass exactly one of `trials` or `seeds`"
        )
    if seeds is not None:
        return engine.map(trial, seeds)
    return engine.run_batch(trial, trials, base_seed=base_seed)
