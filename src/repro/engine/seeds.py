"""Seed derivation: one documented scheme for every random stream.

Every run in this codebase is determined by ``(adversary, programs,
seed)`` — the paper's ``run(A, I, F)`` — so replayability hinges on all
randomness being derived from integers that are themselves derived
deterministically.  Historically each call site added its own magic
offset (``seed + 104729`` here, ``seed + 31337`` there); this module is
now the single home for those derivations.

The scheme has two layers:

* **Trial seeds.**  Trial ``i`` of a batch uses ``base_seed + i``
  (:func:`trial_seed`).  Contiguity is deliberate: it makes batches
  replayable from one integer and lets the batch engine partition seed
  ranges into chunks without materialising them.

* **Stream seeds.**  Within one trial, independent consumers of
  randomness (the tape collection, the shared coin list, a dealer's
  coins, ...) must not share a seed, or their streams would be
  correlated.  Each consumer adds a fixed, documented *stream offset*
  (:func:`derive`).  The offsets are arbitrary constants far larger than
  any realistic trial count, so stream ``s`` of trial ``i`` can never
  collide with stream ``s`` of trial ``j`` for batches smaller than the
  smallest offset gap.

The numeric values are frozen: they reproduce the historical constants
scattered through the experiment runners, so tables generated before the
unification are byte-identical to tables generated after it.
"""

from __future__ import annotations

#: Stream offset of the shared coin list handed to Protocol 1 / Protocol 2
#: trials (historically ``seed + 104729`` in ``experiments/common.py``).
COIN_STREAM = 104_729

#: Stream offset of the swept coin list in the E5 coin-length ablation
#: (historically ``seed + 31337``).
ABLATION_COIN_STREAM = 31_337

#: Stream offset of Protocol 1's coin list in the E10 Ben-Or comparison
#: (historically ``seed + 7_654_321``).
BENOR_COIN_STREAM = 7_654_321

#: Stream offset of the trusted dealer's coins in the E12 mechanism
#: ablation (historically ``seed + 424242``).
DEALER_COIN_STREAM = 424_242

#: Stream offset of the coordinator's coin list in the E12 mechanism
#: ablation (historically ``seed + 515151``).
COORDINATOR_COIN_STREAM = 515_151

#: Stream offset used by the test suite's agreement fixtures
#: (historically ``seed + 1000`` in ``tests/conftest.py``).
FIXTURE_COIN_STREAM = 1_000

#: Stream offset of the per-trial vote draw in fault campaigns
#: (:mod:`repro.faults.campaign`), independent of the plan randomness.
CAMPAIGN_VOTE_STREAM = 9_700_417

#: Stream offset of the per-trial shape draw (within- vs over-budget) in
#: fault campaigns.
CAMPAIGN_SHAPE_STREAM = 9_999_991

#: Keyed stream of one transport envelope's fault randomness (first-send
#: verdict and delay, retransmission attempts, backoff jitter); keyed by
#: ``(recipient, seq)`` so concurrent retransmit loops never contend on
#: one shared generator (see :mod:`repro.runtime.transport`).
ENVELOPE_STREAM = 11_939_999

#: Keyed stream of one envelope's acknowledgement randomness (reverse
#: link verdict and ack delay), keyed like :data:`ENVELOPE_STREAM`.
ACK_STREAM = 13_466_917

#: Keyed stream of one *service* envelope's randomness (link-fault
#: verdict, delivery delay, retransmission backoff jitter), keyed by
#: ``(sender, incarnation, seq)`` so the crash-recovery track's draws
#: are schedule-independent like the runtime transport's
#: (:mod:`repro.service.bus`).
SERVICE_ENVELOPE_STREAM = 15_485_863

#: Per-node stream of service-layer tape seeds and handshake jitter,
#: keyed by pid (:mod:`repro.service.cluster`).
SERVICE_NODE_STREAM = 17_624_813

#: Keyed stream of one hosted transaction instance's protocol tape,
#: keyed by ``txn_id`` off the node's own tape seed — transaction 0
#: keeps the node tape seed itself so single-transaction (v1) WALs
#: replay byte-identically (:mod:`repro.service.txn`).
SERVICE_TXN_TAPE_STREAM = 19_999_999

#: Keyed stream of one hosted transaction instance's derived initial
#: vote, keyed by ``txn_id`` off the node's own tape seed
#: (:func:`repro.service.txn.txn_vote`).
SERVICE_TXN_VOTE_STREAM = 22_801_763

#: Per-trial stream of a timing model's delivery randomness — hold
#: draws, random-async schedule hashing (:mod:`repro.models`).  Model
#: draws live strictly *after* every historical stream: selecting the
#: default ``realistic`` model consumes nothing from this stream, so
#: pre-zoo plans, campaign reports, and mc reports replay byte-for-byte
#: (the same pattern as the service track's recovery draws).
MODEL_TIMING_STREAM = 23_879_519

#: Keyed stream of the granular model's per-directed-link synchrony
#: class draw, keyed by ``(sender, recipient)`` so a link's class never
#: depends on message arrival order (:mod:`repro.models.policies`).
MODEL_LINK_STREAM = 25_165_843


def trial_seed(base_seed: int, index: int) -> int:
    """Seed of trial ``index`` in a batch anchored at ``base_seed``."""
    if index < 0:
        raise ValueError(f"trial index must be non-negative, got {index}")
    return base_seed + index


def derive(seed: int, stream: int) -> int:
    """Seed of one named random stream within a trial.

    ``stream`` should be one of the module's ``*_STREAM`` constants; the
    derivation is a plain offset so existing tables replay unchanged.
    """
    return seed + stream


def derive_keyed(seed: int, stream: int, *keys: int) -> int:
    """Seed of one keyed random stream within a trial.

    Where :func:`derive` names a fixed per-trial stream, this derives one
    stream *per key tuple* — e.g. per transport envelope — so concurrent
    consumers each own an independent generator and the draw order of one
    cannot perturb another.  The mix is a fixed-odd-multiplier LCG step
    per key: deterministic, collision-sparse, and independent of
    ``PYTHONHASHSEED``.
    """
    value = (seed + stream) & _MASK64
    for key in keys:
        value = (value * 6_364_136_223_846_793_005 + key + 1) & _MASK64
    return value


_MASK64 = (1 << 64) - 1


def coin_seed(seed: int) -> int:
    """Seed of the standard shared coin list for a trial (see
    :data:`COIN_STREAM`)."""
    return derive(seed, COIN_STREAM)
