"""Picklable trial descriptions for the batch execution engine.

A *trial* is a function ``seed -> result`` that builds everything it
needs (programs, adversary, tapes) from the seed alone — the executable
form of the paper's ``run(A, I, F)``.  Fanning trials across worker
processes requires the function and its captured configuration to
pickle, which rules out lambdas and closures; this module provides the
building blocks experiments use instead:

* :class:`SeededFactory` — a picklable ``seed -> object`` factory
  (adversaries, mostly) replacing ``lambda seed: Cls(seed=seed, ...)``;
* :class:`TrialSpec` — one worker chunk: the trial callable plus the
  contiguous seed slice it must run;
* :class:`TrialResult` — one seed's result, tagged for deterministic
  reassembly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Sequence


@dataclass(frozen=True)
class SeededFactory:
    """A picklable ``(seed) -> target(seed=seed, **kwargs)`` factory.

    ``target`` must be importable by reference (a module-level class or
    function) and accept ``seed`` as a keyword; ``kwargs`` are the
    static, seed-independent arguments.  Use :meth:`of` to build one.
    """

    target: Callable[..., Any]
    kwargs: tuple[tuple[str, Any], ...] = ()

    @classmethod
    def of(cls, target: Callable[..., Any], **kwargs: Any) -> "SeededFactory":
        return cls(target=target, kwargs=tuple(sorted(kwargs.items())))

    def __call__(self, seed: int) -> Any:
        return self.target(seed=seed, **dict(self.kwargs))

    def __repr__(self) -> str:
        name = getattr(self.target, "__name__", repr(self.target))
        args = ", ".join(f"{k}={v!r}" for k, v in self.kwargs)
        return f"SeededFactory({name}, {args})"


@dataclass(frozen=True)
class TrialSpec:
    """One chunk of a batch: a trial callable and its seed slice.

    Attributes:
        trial: picklable ``seed -> result`` callable.
        seeds: the seeds this chunk runs, in order.
        chunk_index: position of this chunk in the batch, used to
            reassemble results in deterministic (seed) order.
        telemetry: whether the worker should record into a fresh metrics
            registry and ship its snapshot back for merging.
    """

    trial: Callable[[int], Any]
    seeds: tuple[int, ...]
    chunk_index: int = 0
    telemetry: bool = False


@dataclass(frozen=True)
class TrialResult:
    """One seed's trial result, tagged for ordering and provenance."""

    seed: int
    value: Any


@dataclass(frozen=True)
class ChunkResult:
    """Everything one worker chunk produced.

    Attributes:
        chunk_index: echo of :attr:`TrialSpec.chunk_index`.
        results: per-seed results, in the chunk's seed order.
        telemetry_snapshot: the worker registry's
            :meth:`~repro.telemetry.registry.MetricsRegistry.snapshot`,
            or ``None`` when telemetry was off.
    """

    chunk_index: int
    results: tuple[TrialResult, ...] = field(default_factory=tuple)
    telemetry_snapshot: dict[str, Any] | None = None


def chunk_seeds(seeds: Sequence[int], chunks: int) -> list[tuple[int, ...]]:
    """Split ``seeds`` into at most ``chunks`` contiguous, ordered slices.

    Slices differ in length by at most one, every seed appears exactly
    once, and concatenating the slices in order reproduces ``seeds`` —
    the property the engine relies on for byte-identical serial/parallel
    result ordering.
    """
    if chunks <= 0:
        raise ValueError(f"need at least one chunk, got {chunks}")
    seeds = tuple(seeds)
    chunks = min(chunks, len(seeds)) or 1
    base, extra = divmod(len(seeds), chunks)
    out: list[tuple[int, ...]] = []
    start = 0
    for index in range(chunks):
        size = base + (1 if index < extra else 0)
        out.append(seeds[start : start + size])
        start += size
    return [c for c in out if c]
