"""``repro.engine`` — batch trial execution and seed derivation.

The engine is the layer between experiments and the simulator: it takes
a picklable ``seed -> result`` trial, fans the seed range across worker
processes (or runs it in-process), and returns results whose values and
order are byte-identical to the serial loop.  See
:mod:`repro.engine.executor` for the execution contract,
:mod:`repro.engine.spec` for the picklable building blocks, and
:mod:`repro.engine.seeds` for the seed-derivation scheme.
"""

from repro.engine import seeds
from repro.engine.executor import (
    TrialEngine,
    default_workers,
    resolve_workers,
    run_trials,
    set_default_workers,
)
from repro.engine.spec import (
    ChunkResult,
    SeededFactory,
    TrialResult,
    TrialSpec,
    chunk_seeds,
)

__all__ = [
    "ChunkResult",
    "SeededFactory",
    "TrialEngine",
    "TrialResult",
    "TrialSpec",
    "chunk_seeds",
    "default_workers",
    "resolve_workers",
    "run_trials",
    "seeds",
    "set_default_workers",
]
