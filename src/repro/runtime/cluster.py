"""Cluster orchestration: run a protocol over asyncio nodes.

The cluster builds one :class:`~repro.runtime.node.Node` per program,
wires them through one :class:`~repro.runtime.transport.AsyncTransport`,
optionally schedules fault injections, runs everything concurrently, and
collects the per-node results.  This is the "realistic deployment" track:
true concurrency, wall-clock delays, no global scheduler.

Two robustness features matter for degraded runs:

* a **watchdog** bounds the whole run at ``deadline`` plus a grace
  period; nodes still running when it fires are snapshotted in place and
  the run reports outcome ``"nonterminated"`` instead of hanging — the
  runtime shape of the paper's graceful degradation (beyond ``t`` faults
  the protocol may block, but it never errs);
* the transport accepts a :class:`~repro.runtime.transport.LinkFaultPolicy`
  plus :class:`~repro.runtime.transport.Reliability` so lossy-link
  campaigns (see :mod:`repro.faults`) run through the identical
  orchestration path as clean ones.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Sequence

from repro.core.commit import CommitProgram
from repro.core.halting import HaltingMode
from repro.errors import ConfigurationError
from repro.runtime.delays import DelayModel
from repro.runtime.node import Node, NodeResult
from repro.runtime.transport import (
    AsyncTransport,
    LinkFaultPolicy,
    Reliability,
)
from repro.sim.process import Program
from repro.telemetry import registry as telemetry
from repro.telemetry.log import get_logger
from repro.trace import spans as trace_spans
from repro.types import Decision, ProcessStatus, Vote

_log = get_logger("runtime.cluster")

#: Outcome label of a run in which every nonfaulty node returned.
TERMINATED = "terminated"
#: Outcome label of a run stopped by the deadline/watchdog with some
#: nonfaulty node still running (degraded, but never inconsistent).
NONTERMINATED = "nonterminated"


@dataclass(frozen=True)
class CrashInjection:
    """Fail-stop ``pid`` roughly ``after_seconds`` into the run."""

    pid: int
    after_seconds: float


@dataclass
class ClusterResult:
    """Aggregated results of one cluster run."""

    nodes: list[NodeResult] = field(default_factory=list)
    outcome: str = TERMINATED
    transport_stats: dict[str, int] = field(default_factory=dict)

    def decisions(self) -> dict[int, int | None]:
        return {r.pid: r.decision for r in self.nodes}

    def decision_values(self) -> set[int]:
        return {r.decision for r in self.nodes if r.decision is not None}

    @property
    def consistent(self) -> bool:
        """At most one decision value across the cluster."""
        return len(self.decision_values()) <= 1

    @property
    def unanimous_decision(self) -> Decision | None:
        values = self.decision_values()
        if len(values) != 1:
            return None
        return Decision.from_bit(values.pop())

    @property
    def terminated(self) -> bool:
        return self.outcome == TERMINATED

    def nonfaulty_all_returned(self) -> bool:
        """Whether every non-crashed node's program returned."""
        return all(
            r.status is ProcessStatus.RETURNED
            for r in self.nodes
            if r.status is not ProcessStatus.CRASHED
        )

    def statuses(self) -> dict[int, ProcessStatus]:
        return {r.pid: r.status for r in self.nodes}

    def crashed_pids(self) -> set[int]:
        return {
            r.pid for r in self.nodes if r.status is ProcessStatus.CRASHED
        }


class Cluster:
    """A set of asyncio nodes running one protocol instance.

    Args:
        programs: one program per node, ordered by pid.
        delay_model: transport latency distribution.
        tick_interval: node step granularity in seconds.
        seed: seeds the transport and derives per-node tape seeds.
        crashes: fault injection schedule.
        link_faults: lossy-link policy applied to every transmission
            attempt (drops, duplicates, partitions, extra delay).
        reliability: retransmission config; required for liveness when
            ``link_faults`` can drop messages.
        watchdog_grace: extra seconds past ``deadline`` before the
            watchdog force-stops straggler node tasks.
    """

    def __init__(
        self,
        programs: Sequence[Program],
        delay_model: DelayModel | None = None,
        tick_interval: float = 0.002,
        seed: int = 0,
        crashes: Sequence[CrashInjection] = (),
        link_faults: LinkFaultPolicy | None = None,
        reliability: Reliability | None = None,
        watchdog_grace: float = 1.0,
    ) -> None:
        n = len(programs)
        if n == 0:
            raise ConfigurationError("a cluster needs at least one node")
        for pid, program in enumerate(programs):
            if program.pid != pid:
                raise ConfigurationError(
                    f"programs must be ordered by pid: slot {pid} holds "
                    f"pid {program.pid}"
                )
        if watchdog_grace < 0:
            raise ConfigurationError(
                f"watchdog_grace must be non-negative, got {watchdog_grace}"
            )
        self.programs = list(programs)
        self.delay_model = delay_model
        self.tick_interval = tick_interval
        self.seed = seed
        self.crashes = list(crashes)
        self.link_faults = link_faults
        self.reliability = reliability
        self.watchdog_grace = watchdog_grace
        for crash in self.crashes:
            if not 0 <= crash.pid < n:
                raise ConfigurationError(
                    f"crash target {crash.pid} out of range for n={n}"
                )

    async def run(self, deadline: float = 10.0) -> ClusterResult:
        """Run all nodes concurrently until they finish or ``deadline``.

        Nodes stop stepping at ``deadline`` on their own; the watchdog is
        the backstop for anything that fails to yield (e.g. a node task
        starved by pathological fault schedules) and fires at
        ``deadline + watchdog_grace``, snapshotting still-running nodes
        instead of hanging the caller.
        """
        n = len(self.programs)
        tracer = trace_spans.active_recorder()
        loop = asyncio.get_running_loop()
        cluster_span = None
        if tracer is not None:
            cluster_span = tracer.begin_span(
                "cluster-run",
                kind="trial",
                track="runtime",
                start=loop.time(),
                n=n,
                seed=self.seed,
                crashes=len(self.crashes),
            )
        transport = AsyncTransport(
            n=n,
            delay_model=self.delay_model,
            seed=self.seed,
            faults=self.link_faults,
            reliability=self.reliability,
        )
        nodes = [
            Node(
                program=program,
                transport=transport,
                tick_interval=self.tick_interval,
                tape_seed=self.seed * 7919 + pid,
            )
            for pid, program in enumerate(self.programs)
        ]

        async def inject(crash: CrashInjection) -> None:
            await asyncio.sleep(crash.after_seconds)
            _log.debug(
                "injecting crash into node %d after %.3fs",
                crash.pid,
                crash.after_seconds,
            )
            if telemetry.enabled():
                telemetry.count(
                    "cluster_crash_injections_total",
                    help="fault injections delivered to nodes",
                )
            nodes[crash.pid].request_crash()

        injectors = [
            asyncio.create_task(inject(crash)) for crash in self.crashes
        ]
        start = time.perf_counter()
        tasks = [
            asyncio.create_task(node.run(deadline=deadline)) for node in nodes
        ]
        done, pending = await asyncio.wait(
            tasks, timeout=deadline + self.watchdog_grace
        )
        if pending:
            _log.warning(
                "watchdog fired %.1fs past deadline %.1fs; force-stopping "
                "%d node task(s)",
                self.watchdog_grace,
                deadline,
                len(pending),
            )
            for task in pending:
                task.cancel()
            await asyncio.gather(*pending, return_exceptions=True)
        elapsed = time.perf_counter() - start
        for task in injectors:
            task.cancel()
        transport.close()
        results: list[NodeResult] = []
        for node, task in zip(nodes, tasks):
            if task in done and not task.cancelled() and task.exception() is None:
                results.append(task.result())
            else:
                # Watchdog path: snapshot the node's process in place.
                process = node.process
                results.append(
                    NodeResult(
                        pid=node.pid,
                        status=process.status,
                        decision=process.decision,
                        output=process.output,
                        steps=process.clock,
                    )
                )
        result = ClusterResult(
            nodes=results,
            transport_stats=transport.stats.as_dict(),
        )
        result.outcome = (
            TERMINATED if result.nonfaulty_all_returned() else NONTERMINATED
        )
        if result.outcome == NONTERMINATED:
            _log.warning(
                "cluster deadline %.1fs hit with unfinished nodes: %s",
                deadline,
                [r.pid for r in result.nodes
                 if r.status is ProcessStatus.RUNNING],
            )
        if tracer is not None and cluster_span is not None:
            now = loop.time()
            for node_result in results:
                if node_result.decision is not None:
                    # Node results surface decisions only at collection
                    # time, so decide events carry the run-end timestamp;
                    # runtime critical paths are correspondingly coarse.
                    tracer.point(
                        "decide",
                        track="runtime",
                        time=now,
                        span=cluster_span,
                        pid=node_result.pid,
                        decision=node_result.decision,
                    )
            tracer.end_span(
                cluster_span,
                now,
                outcome=result.outcome,
                delivered=transport.stats.delivered,
                retransmitted=transport.stats.retransmitted,
            )
        if telemetry.enabled():
            telemetry.count(
                "cluster_runs_total",
                help="cluster executions, by outcome",
                outcome=result.outcome,
            )
            telemetry.set_gauge(
                "cluster_nodes", n, help="nodes in the last cluster run"
            )
            telemetry.observe(
                "cluster_run_seconds",
                elapsed,
                help="wall-clock seconds per cluster run",
            )
            transport.record_telemetry()
        return result


def run_commit_cluster(
    votes: Sequence[Vote | int],
    t: int | None = None,
    K: int = 8,
    delay_model: DelayModel | None = None,
    tick_interval: float = 0.002,
    seed: int = 0,
    crashes: Sequence[CrashInjection] = (),
    deadline: float = 10.0,
    coin_count: int | None = None,
    halting: HaltingMode = HaltingMode.DECIDE_BROADCAST,
    link_faults: LinkFaultPolicy | None = None,
    reliability: Reliability | None = None,
    virtual_clock: bool = False,
) -> ClusterResult:
    """Run Protocol 2 on an asyncio cluster (blocking convenience wrapper).

    Args mirror :func:`repro.core.api.run_commit`, plus the runtime knobs
    (delay model, tick interval, crash injections, wall-clock deadline,
    link faults and retransmission).  With ``virtual_clock`` the run
    executes on the deterministic fast-forward loop of
    :mod:`repro.runtime.virtualtime` — same code path, virtual seconds.
    """
    n = len(votes)
    if t is None:
        t = (n - 1) // 2
    programs = [
        CommitProgram(
            pid=pid,
            n=n,
            t=t,
            initial_vote=vote,
            K=K,
            coin_count=coin_count,
            halting=halting,
        )
        for pid, vote in enumerate(votes)
    ]
    cluster = Cluster(
        programs=programs,
        delay_model=delay_model,
        tick_interval=tick_interval,
        seed=seed,
        crashes=crashes,
        link_faults=link_faults,
        reliability=reliability,
    )
    if virtual_clock:
        from repro.runtime.virtualtime import run_virtual

        return run_virtual(cluster.run(deadline=deadline))
    return asyncio.run(cluster.run(deadline=deadline))
