"""Cluster orchestration: run a protocol over asyncio nodes.

The cluster builds one :class:`~repro.runtime.node.Node` per program,
wires them through one :class:`~repro.runtime.transport.AsyncTransport`,
optionally schedules fault injections, runs everything concurrently, and
collects the per-node results.  This is the "realistic deployment" track:
true concurrency, wall-clock delays, no global scheduler.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Sequence

from repro.core.commit import CommitProgram
from repro.core.halting import HaltingMode
from repro.errors import ConfigurationError
from repro.runtime.delays import DelayModel
from repro.runtime.node import Node, NodeResult
from repro.runtime.transport import AsyncTransport
from repro.sim.process import Program
from repro.telemetry import registry as telemetry
from repro.telemetry.log import get_logger
from repro.types import Decision, ProcessStatus, Vote

_log = get_logger("runtime.cluster")


@dataclass(frozen=True)
class CrashInjection:
    """Fail-stop ``pid`` roughly ``after_seconds`` into the run."""

    pid: int
    after_seconds: float


@dataclass
class ClusterResult:
    """Aggregated results of one cluster run."""

    nodes: list[NodeResult] = field(default_factory=list)

    def decisions(self) -> dict[int, int | None]:
        return {r.pid: r.decision for r in self.nodes}

    def decision_values(self) -> set[int]:
        return {r.decision for r in self.nodes if r.decision is not None}

    @property
    def consistent(self) -> bool:
        """At most one decision value across the cluster."""
        return len(self.decision_values()) <= 1

    @property
    def unanimous_decision(self) -> Decision | None:
        values = self.decision_values()
        if len(values) != 1:
            return None
        return Decision.from_bit(values.pop())

    def nonfaulty_all_returned(self) -> bool:
        """Whether every non-crashed node's program returned."""
        return all(
            r.status is ProcessStatus.RETURNED
            for r in self.nodes
            if r.status is not ProcessStatus.CRASHED
        )


class Cluster:
    """A set of asyncio nodes running one protocol instance.

    Args:
        programs: one program per node, ordered by pid.
        delay_model: transport latency distribution.
        tick_interval: node step granularity in seconds.
        seed: seeds the transport and derives per-node tape seeds.
        crashes: fault injection schedule.
    """

    def __init__(
        self,
        programs: Sequence[Program],
        delay_model: DelayModel | None = None,
        tick_interval: float = 0.002,
        seed: int = 0,
        crashes: Sequence[CrashInjection] = (),
    ) -> None:
        n = len(programs)
        if n == 0:
            raise ConfigurationError("a cluster needs at least one node")
        for pid, program in enumerate(programs):
            if program.pid != pid:
                raise ConfigurationError(
                    f"programs must be ordered by pid: slot {pid} holds "
                    f"pid {program.pid}"
                )
        self.programs = list(programs)
        self.delay_model = delay_model
        self.tick_interval = tick_interval
        self.seed = seed
        self.crashes = list(crashes)
        for crash in self.crashes:
            if not 0 <= crash.pid < n:
                raise ConfigurationError(
                    f"crash target {crash.pid} out of range for n={n}"
                )

    async def run(self, deadline: float = 10.0) -> ClusterResult:
        """Run all nodes concurrently until they finish or ``deadline``."""
        n = len(self.programs)
        transport = AsyncTransport(
            n=n, delay_model=self.delay_model, seed=self.seed
        )
        nodes = [
            Node(
                program=program,
                transport=transport,
                tick_interval=self.tick_interval,
                tape_seed=self.seed * 7919 + pid,
            )
            for pid, program in enumerate(self.programs)
        ]

        async def inject(crash: CrashInjection) -> None:
            await asyncio.sleep(crash.after_seconds)
            _log.debug(
                "injecting crash into node %d after %.3fs",
                crash.pid,
                crash.after_seconds,
            )
            if telemetry.enabled():
                telemetry.count(
                    "cluster_crash_injections_total",
                    help="fault injections delivered to nodes",
                )
            nodes[crash.pid].request_crash()

        injectors = [
            asyncio.create_task(inject(crash)) for crash in self.crashes
        ]
        start = time.perf_counter()
        results = await asyncio.gather(
            *(node.run(deadline=deadline) for node in nodes)
        )
        elapsed = time.perf_counter() - start
        for task in injectors:
            task.cancel()
        result = ClusterResult(nodes=list(results))
        if not result.nonfaulty_all_returned():
            _log.warning(
                "cluster deadline %.1fs hit with unfinished nodes: %s",
                deadline,
                [r.pid for r in result.nodes
                 if r.status is ProcessStatus.RUNNING],
            )
        if telemetry.enabled():
            telemetry.count(
                "cluster_runs_total",
                help="cluster executions, by outcome",
                outcome=(
                    "terminated"
                    if result.nonfaulty_all_returned()
                    else "deadline"
                ),
            )
            telemetry.set_gauge(
                "cluster_nodes", n, help="nodes in the last cluster run"
            )
            telemetry.observe(
                "cluster_run_seconds",
                elapsed,
                help="wall-clock seconds per cluster run",
            )
        return result


def run_commit_cluster(
    votes: Sequence[Vote | int],
    t: int | None = None,
    K: int = 8,
    delay_model: DelayModel | None = None,
    tick_interval: float = 0.002,
    seed: int = 0,
    crashes: Sequence[CrashInjection] = (),
    deadline: float = 10.0,
    coin_count: int | None = None,
    halting: HaltingMode = HaltingMode.DECIDE_BROADCAST,
) -> ClusterResult:
    """Run Protocol 2 on an asyncio cluster (blocking convenience wrapper).

    Args mirror :func:`repro.core.api.run_commit`, plus the runtime knobs
    (delay model, tick interval, crash injections, wall-clock deadline).
    """
    n = len(votes)
    if t is None:
        t = (n - 1) // 2
    programs = [
        CommitProgram(
            pid=pid,
            n=n,
            t=t,
            initial_vote=vote,
            K=K,
            coin_count=coin_count,
            halting=halting,
        )
        for pid, vote in enumerate(votes)
    ]
    cluster = Cluster(
        programs=programs,
        delay_model=delay_model,
        tick_interval=tick_interval,
        seed=seed,
        crashes=crashes,
    )
    return asyncio.run(cluster.run(deadline=deadline))
