"""Asyncio deployment substrate.

Runs the *same* protocol state machines as the deterministic simulator on
real asyncio concurrency: an in-memory transport with configurable delay
models, per-node step loops, crash injection, and cluster orchestration.
This is the track the reproduction plan calls "asyncio simulation": it
demonstrates the protocols working under genuine (non-adversarial)
asynchrony and is what the example applications build on.
"""

from repro.runtime.cluster import (
    NONTERMINATED,
    TERMINATED,
    Cluster,
    ClusterResult,
    CrashInjection,
    run_commit_cluster,
)
from repro.runtime.delays import (
    DelayModel,
    ExponentialDelay,
    FixedDelay,
    SpikeDelay,
    UniformDelay,
)
from repro.runtime.node import Node, NodeResult
from repro.runtime.transport import (
    AsyncTransport,
    LinkFaultPolicy,
    LinkVerdict,
    Reliability,
    TransportStats,
    WireMessage,
)
from repro.runtime.virtualtime import VirtualClockEventLoop, run_virtual

__all__ = [
    "AsyncTransport",
    "Cluster",
    "ClusterResult",
    "CrashInjection",
    "DelayModel",
    "ExponentialDelay",
    "FixedDelay",
    "LinkFaultPolicy",
    "LinkVerdict",
    "NONTERMINATED",
    "Node",
    "NodeResult",
    "Reliability",
    "SpikeDelay",
    "TERMINATED",
    "TransportStats",
    "UniformDelay",
    "VirtualClockEventLoop",
    "WireMessage",
    "run_commit_cluster",
]
