"""Delay models for the asyncio transport.

A delay model turns the abstract "messages are usually on time, sometimes
late" of the paper into wall-clock delivery latencies.  The on-time bound
``K`` of the protocols corresponds to ``K * tick_interval`` seconds of a
node's local stepping, so a model whose delays stay below that keeps runs
effectively on time, and :class:`SpikeDelay` reproduces the occasional
late message of the paper's motivation.
"""

from __future__ import annotations

import random
from dataclasses import dataclass


class DelayModel:
    """Base class: sample a delivery delay in seconds."""

    def sample(self, rng: random.Random) -> float:
        raise NotImplementedError


@dataclass(frozen=True)
class FixedDelay(DelayModel):
    """Every message takes exactly ``seconds``."""

    seconds: float = 0.001

    def __post_init__(self) -> None:
        if self.seconds < 0:
            raise ValueError(f"delay must be non-negative, got {self.seconds}")

    def sample(self, rng: random.Random) -> float:
        return self.seconds


@dataclass(frozen=True)
class UniformDelay(DelayModel):
    """Delays uniform in ``[low, high]`` seconds."""

    low: float = 0.0005
    high: float = 0.003

    def __post_init__(self) -> None:
        if not 0 <= self.low <= self.high:
            raise ValueError(
                f"need 0 <= low <= high, got ({self.low}, {self.high})"
            )

    def sample(self, rng: random.Random) -> float:
        return rng.uniform(self.low, self.high)


@dataclass(frozen=True)
class ExponentialDelay(DelayModel):
    """Exponential delays with the given mean (heavy-ish tail)."""

    mean: float = 0.002

    def __post_init__(self) -> None:
        if self.mean <= 0:
            raise ValueError(f"mean must be positive, got {self.mean}")

    def sample(self, rng: random.Random) -> float:
        return rng.expovariate(1.0 / self.mean)


@dataclass(frozen=True)
class SpikeDelay(DelayModel):
    """Mostly-prompt delivery with occasional long holds.

    With probability ``late_probability`` a message takes ``late_seconds``
    instead of ``base_seconds`` — the paper's "messages are usually
    delivered within some known time bound but sometimes come late".
    """

    base_seconds: float = 0.001
    late_seconds: float = 0.1
    late_probability: float = 0.05

    def __post_init__(self) -> None:
        if not 0 <= self.late_probability <= 1:
            raise ValueError(
                f"probability out of range: {self.late_probability}"
            )
        if self.base_seconds < 0 or self.late_seconds < self.base_seconds:
            raise ValueError(
                f"need 0 <= base <= late, got "
                f"({self.base_seconds}, {self.late_seconds})"
            )

    def sample(self, rng: random.Random) -> float:
        if rng.random() < self.late_probability:
            return self.late_seconds
        return self.base_seconds
