"""A deterministic virtual-clock event loop for the asyncio runtime.

Fault campaigns run thousands of cluster trials; with the standard event
loop each trial costs real wall-clock time (ticks, delivery delays, and
retransmission backoffs are real ``sleep``s) and its outcome can wobble
with machine load.  This module provides an event loop whose clock is
*virtual*: whenever the loop has no ready callbacks it jumps time
forward to the earliest scheduled timer instead of blocking in the
selector.  Two consequences:

* **speed** — a 10-second protocol run with 2 ms ticks executes in the
  time it takes to process its callbacks, typically milliseconds;
* **determinism** — callback order depends only on the scheduled times
  and submission order, never on OS scheduling, so a seeded cluster
  trial produces byte-identical results on every run and under any
  worker count.  This is what makes campaign reports reproducible.

The loop intentionally supports only timer/callback workloads (queues,
sleeps, futures, tasks) — there is no real I/O in the in-memory
transport.  Network sockets would starve, so don't use it for those.
"""

from __future__ import annotations

import asyncio
import selectors
from typing import Awaitable, TypeVar

T = TypeVar("T")


class VirtualClockEventLoop(asyncio.SelectorEventLoop):
    """A selector event loop that fast-forwards through idle time."""

    def __init__(self) -> None:
        super().__init__(selectors.DefaultSelector())
        self._virtual_now = 0.0

    def time(self) -> float:
        return self._virtual_now

    def _run_once(self) -> None:
        # With nothing ready, advance the clock to the earliest live
        # timer so the base implementation computes a zero selector
        # timeout and fires it immediately.  The base class strips
        # cancelled handles itself; scanning past them here only moves
        # the clock, never the heap.
        if not self._ready and self._scheduled:
            when = min(
                (
                    handle._when
                    for handle in self._scheduled
                    if not handle._cancelled
                ),
                default=None,
            )
            if when is not None and when > self._virtual_now:
                self._virtual_now = when
        super()._run_once()


def run_virtual(coro: Awaitable[T]) -> T:
    """``asyncio.run`` under a fresh virtual-clock loop."""
    with asyncio.Runner(loop_factory=VirtualClockEventLoop) as runner:
        return runner.run(coro)


def virtual_loop_factory() -> VirtualClockEventLoop:
    """Loop factory for :class:`asyncio.Runner` callers."""
    return VirtualClockEventLoop()


__all__ = [
    "VirtualClockEventLoop",
    "run_virtual",
    "virtual_loop_factory",
]
