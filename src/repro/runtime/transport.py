"""In-memory asyncio transport with delays, crashes, and lossy links.

The transport is the runtime counterpart of the simulator's buffers plus
adversary delivery choices: each node has an inbox queue, sends are
delivered after a sampled delay, and a crashed node neither sends nor
receives.  Unlike the simulator there is no global scheduler — real
concurrency (the asyncio event loop) interleaves the nodes.

Beyond the benign delay models, the transport can host a *lossy* link
layer (see :class:`LinkFaultPolicy`): per-link drop / duplication /
reorder probabilities and partition windows, typically compiled from a
:class:`~repro.faults.plan.FaultPlan`.  To keep the protocols live under
loss, the transport implements the classic reliability pair:

* every envelope carries a per-sender **sequence number** and receivers
  **deduplicate** on ``(sender, seq)``, so duplicated or retransmitted
  copies are invisible to the hosted protocol;
* with a :class:`Reliability` config, unacknowledged envelopes are
  **retransmitted** under a timeout with exponential backoff and jitter
  until acknowledged (acknowledgements traverse the same lossy link in
  the reverse direction), the sender or recipient crashes, or the
  transport closes.

First sends, retransmissions, and fault-injected duplicates are counted
*distinctly* in :class:`TransportStats`.

Transport randomness is **schedule-independent**: every envelope owns a
private generator derived from ``(seed, recipient, seq)`` (see
:func:`repro.engine.seeds.derive_keyed`), and acknowledgements own a
second one.  Concurrent retransmit loops therefore never contend on one
shared generator, so the jitter and verdict streams an envelope sees do
not depend on how the event loop happens to interleave coroutines —
replay artifacts stay byte-identical even if task wakeup order shifts.
"""

from __future__ import annotations

import asyncio
import itertools
import random
from dataclasses import dataclass, fields

from repro.engine.seeds import ACK_STREAM, ENVELOPE_STREAM, derive_keyed
from repro.errors import NodeCrashedError
from repro.runtime.delays import DelayModel, FixedDelay
from repro.sim.message import Payload
from repro.telemetry import registry as telemetry
from repro.trace import spans as trace_spans


@dataclass(frozen=True)
class WireMessage:
    """One envelope on the wire: sender, packed payloads, sequence number.

    ``seq`` is unique per sender and identifies the logical envelope
    across retransmissions and duplicate copies.
    """

    sender: int
    payloads: tuple[Payload, ...]
    seq: int = -1


@dataclass(frozen=True)
class LinkVerdict:
    """What the link layer does to one transmission attempt.

    Attributes:
        drop: lose this copy entirely (a retransmission may follow).
        duplicates: extra copies injected beyond the first.
        extra_delay: additional delivery latency in seconds.
    """

    drop: bool = False
    duplicates: int = 0
    extra_delay: float = 0.0


#: The verdict for a clean link: deliver one copy, no extra delay.
CLEAN_LINK = LinkVerdict()


class LinkFaultPolicy:
    """Decides the fate of each transmission attempt on a directed link.

    Implementations must be deterministic given the supplied ``rng`` (the
    transport's private, seeded randomness) so that fault campaigns are
    replayable.  ``now`` is the event-loop clock, letting policies model
    time-windowed behaviour such as transient partitions.
    """

    def verdict(
        self, sender: int, recipient: int, now: float, rng: random.Random
    ) -> LinkVerdict:
        raise NotImplementedError


@dataclass(frozen=True)
class Reliability:
    """Retransmission parameters for lossy links.

    Attributes:
        base_timeout: seconds before the first retransmission.
        max_backoff: cap on the (exponentially growing) timeout.
        jitter: fractional timeout spread; each wait is scaled by a
            factor uniform in ``[1 - jitter, 1 + jitter]``.
        max_retries: retransmission budget per envelope; ``None`` retries
            until acknowledged, a crash, or transport close.
    """

    base_timeout: float = 0.012
    max_backoff: float = 0.2
    jitter: float = 0.4
    max_retries: int | None = None

    def __post_init__(self) -> None:
        if self.base_timeout <= 0:
            raise ValueError(
                f"base_timeout must be positive, got {self.base_timeout}"
            )
        if self.max_backoff < self.base_timeout:
            raise ValueError(
                f"max_backoff {self.max_backoff} below base_timeout "
                f"{self.base_timeout}"
            )
        if not 0 <= self.jitter < 1:
            raise ValueError(f"jitter must be in [0, 1), got {self.jitter}")
        if self.max_retries is not None and self.max_retries < 0:
            raise ValueError(
                f"max_retries must be non-negative, got {self.max_retries}"
            )


@dataclass
class TransportStats:
    """Counters the transport maintains for assertions and reports.

    ``sent`` counts *first* sends only; retransmissions and fault-layer
    duplicates are tracked separately so loss-recovery overhead is
    visible rather than folded into the send count.
    """

    sent: int = 0
    delivered: int = 0
    retransmitted: int = 0
    duplicated: int = 0
    duplicates_dropped: int = 0
    dropped_by_faults: int = 0
    acks_dropped: int = 0
    dropped_to_crashed: int = 0
    dropped_from_crashed: int = 0

    def as_dict(self) -> dict[str, int]:
        """Plain-data view, one entry per counter field."""
        return {f.name: getattr(self, f.name) for f in fields(self)}


class AsyncTransport:
    """Delay-injecting, optionally lossy message fabric for ``n`` nodes.

    Args:
        n: number of nodes.
        delay_model: delivery-latency distribution.
        seed: seed of the transport's private randomness.
        faults: link fault policy (drop/duplicate/delay per attempt);
            ``None`` means every transmission attempt succeeds.
        reliability: retransmission config; ``None`` disables
            retransmission (appropriate for loss-free links).
    """

    def __init__(
        self,
        n: int,
        delay_model: DelayModel | None = None,
        seed: int = 0,
        faults: LinkFaultPolicy | None = None,
        reliability: Reliability | None = None,
    ) -> None:
        if n <= 0:
            raise ValueError(f"need at least one node, got n={n}")
        self.n = n
        self.delay_model = delay_model if delay_model is not None else FixedDelay()
        self.seed = seed
        self.rng = random.Random(seed)
        self.faults = faults
        self.reliability = reliability
        self.inboxes: list[asyncio.Queue[WireMessage]] = [
            asyncio.Queue() for _ in range(n)
        ]
        self.crashed: set[int] = set()
        self.closed = False
        self.stats = TransportStats()
        self._pending_tasks: set[asyncio.Task] = set()
        self._seq = itertools.count()
        self._seen: list[set[tuple[int, int]]] = [set() for _ in range(n)]
        self._acked: set[int] = set()
        # Resolved once per transport, like the scheduler's telemetry
        # handle: tracing costs one None-check per send/deliver when off.
        self._tracer = trace_spans.active_recorder()
        self._trace_scope = (
            self._tracer.new_scope() if self._tracer is not None else 0
        )

    def crash(self, pid: int) -> None:
        """Fail-stop a node: all its future traffic is dropped."""
        self.crashed.add(pid)

    def close(self) -> None:
        """Stop the fabric: cancel in-flight deliveries and retransmits."""
        self.closed = True
        for task in list(self._pending_tasks):
            task.cancel()

    def send(self, sender: int, recipient: int, payloads: tuple[Payload, ...]) -> None:
        """Queue delivery of one envelope (plus recovery machinery).

        Raises:
            NodeCrashedError: when the sender has been crashed (its node
                task should already have stopped; this guards bugs).
        """
        if sender in self.crashed:
            raise NodeCrashedError(f"node {sender} is crashed and cannot send")
        if not 0 <= recipient < self.n:
            raise ValueError(f"recipient {recipient} out of range")
        if self.closed:
            return
        seq = next(self._seq)
        self.stats.sent += 1
        if self._tracer is not None:
            self._tracer.send(
                track="runtime",
                key=(self._trace_scope, seq),
                time=asyncio.get_running_loop().time(),
                sender=sender,
                recipient=recipient,
                seq=seq,
            )
        rng = self._envelope_rng(ENVELOPE_STREAM, recipient, seq)
        self._transmit(sender, recipient, payloads, seq, rng)
        if self.reliability is not None:
            self._spawn(
                self._retransmit_loop(sender, recipient, payloads, seq, rng)
            )

    # -- transmission attempts ----------------------------------------------

    def _spawn(self, coro) -> None:
        task = asyncio.get_running_loop().create_task(coro)
        self._pending_tasks.add(task)
        task.add_done_callback(self._task_done)
        if telemetry.enabled():
            telemetry.set_gauge(
                "transport_in_flight",
                len(self._pending_tasks),
                help="transport tasks currently in flight "
                "(deliveries and retransmit loops)",
            )

    def _task_done(self, task: asyncio.Task) -> None:
        self._pending_tasks.discard(task)
        if telemetry.enabled():
            telemetry.set_gauge(
                "transport_in_flight",
                len(self._pending_tasks),
                help="transport tasks currently in flight "
                "(deliveries and retransmit loops)",
            )

    def _envelope_rng(self, stream: int, recipient: int, seq: int) -> random.Random:
        """The private generator of one envelope's randomness stream.

        Keyed by ``(recipient, seq)`` so every envelope (and its
        acknowledgement, under a second stream offset) draws from its own
        generator: the consumption order of one coroutine cannot shift
        the values any other observes, whatever the task interleaving.
        """
        return random.Random(derive_keyed(self.seed, stream, recipient, seq))

    def _link_verdict(
        self, sender: int, recipient: int, rng: random.Random
    ) -> LinkVerdict:
        if self.faults is None:
            return CLEAN_LINK
        now = asyncio.get_running_loop().time()
        return self.faults.verdict(sender, recipient, now, rng)

    def _transmit(
        self,
        sender: int,
        recipient: int,
        payloads: tuple[Payload, ...],
        seq: int,
        rng: random.Random,
    ) -> None:
        """One attempt to move an envelope across the (lossy) link."""
        verdict = self._link_verdict(sender, recipient, rng)
        if verdict.drop:
            self.stats.dropped_by_faults += 1
        else:
            copies = 1 + max(0, verdict.duplicates)
            self.stats.duplicated += copies - 1
            for _ in range(copies):
                delay = self.delay_model.sample(rng) + verdict.extra_delay
                self._spawn(
                    self._deliver_later(sender, recipient, payloads, seq, delay)
                )

    async def _deliver_later(
        self,
        sender: int,
        recipient: int,
        payloads: tuple[Payload, ...],
        seq: int,
        delay: float,
    ) -> None:
        if delay > 0:
            await asyncio.sleep(delay)
        if sender in self.crashed:
            # The sender crashed while the message was in flight; in the
            # fail-stop model in-flight messages may still arrive, but we
            # also allow modelling crash-during-broadcast by dropping.
            # Default behaviour: deliver (the message was already sent).
            pass
        if recipient in self.crashed:
            self.stats.dropped_to_crashed += 1
            return
        if (sender, seq) in self._seen[recipient]:
            self.stats.duplicates_dropped += 1
            return
        self._seen[recipient].add((sender, seq))
        self.stats.delivered += 1
        if self._tracer is not None:
            self._tracer.deliver(
                track="runtime",
                key=(self._trace_scope, seq),
                time=asyncio.get_running_loop().time(),
                sender=sender,
                recipient=recipient,
                seq=seq,
            )
        await self.inboxes[recipient].put(
            WireMessage(sender=sender, payloads=payloads, seq=seq)
        )
        if self.reliability is not None:
            self._send_ack(sender, recipient, seq)

    def _send_ack(self, sender: int, recipient: int, seq: int) -> None:
        """Race an acknowledgement back across the reverse lossy link."""
        rng = self._envelope_rng(ACK_STREAM, recipient, seq)
        verdict = self._link_verdict(recipient, sender, rng)
        if verdict.drop:
            self.stats.acks_dropped += 1
            return
        delay = self.delay_model.sample(rng) + verdict.extra_delay
        asyncio.get_running_loop().call_later(delay, self._acked.add, seq)

    async def _retransmit_loop(
        self,
        sender: int,
        recipient: int,
        payloads: tuple[Payload, ...],
        seq: int,
        rng: random.Random,
    ) -> None:
        """Retransmit ``seq`` under backoff until acked, crash, or close.

        ``rng`` is the envelope's private stream (shared with the first
        transmission attempt), so backoff jitter and retry verdicts are a
        pure function of ``(seed, recipient, seq)`` — concurrent loops
        drawing in any interleaving produce identical streams.
        """
        config = self.reliability
        assert config is not None
        timeout = config.base_timeout
        attempt = 0
        while True:
            jittered = timeout * (1 + config.jitter * rng.uniform(-1, 1))
            await asyncio.sleep(jittered)
            if (
                self.closed
                or seq in self._acked
                or sender in self.crashed
                or recipient in self.crashed
            ):
                return
            if (
                config.max_retries is not None
                and attempt >= config.max_retries
            ):
                return
            attempt += 1
            self.stats.retransmitted += 1
            if telemetry.enabled():
                telemetry.count(
                    "transport_retransmissions_total",
                    help="live retransmission attempts",
                )
            if self._tracer is not None:
                self._tracer.point(
                    "retransmit",
                    track="runtime",
                    time=asyncio.get_running_loop().time(),
                    sender=sender,
                    recipient=recipient,
                    seq=seq,
                    attempt=attempt,
                )
            self._transmit(sender, recipient, payloads, seq, rng)
            timeout = min(timeout * 2, config.max_backoff)

    async def drain(self) -> None:
        """Wait for all in-flight deliveries to settle (test helper).

        With retransmission enabled this waits for the recovery loops
        too, so callers should :meth:`close` first (or crash the peers)
        unless every envelope is expected to be acknowledged.
        """
        while self._pending_tasks:
            await asyncio.gather(*list(self._pending_tasks), return_exceptions=True)

    def record_telemetry(self) -> None:
        """Mirror the stats counters into the telemetry registry."""
        if not telemetry.enabled():
            return
        for name, value in self.stats.as_dict().items():
            if value:
                telemetry.count(
                    "transport_messages_total",
                    value,
                    help="transport envelope counters, by kind",
                    kind=name,
                )
