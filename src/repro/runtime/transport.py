"""In-memory asyncio transport with configurable delays and crashes.

The transport is the runtime counterpart of the simulator's buffers plus
adversary delivery choices: each node has an inbox queue, sends are
delivered after a sampled delay, and a crashed node neither sends nor
receives.  Unlike the simulator there is no global scheduler — real
concurrency (the asyncio event loop) interleaves the nodes.
"""

from __future__ import annotations

import asyncio
import random
from dataclasses import dataclass

from repro.errors import NodeCrashedError
from repro.runtime.delays import DelayModel, FixedDelay
from repro.sim.message import Payload


@dataclass(frozen=True)
class WireMessage:
    """One envelope on the wire: sender plus packed payloads."""

    sender: int
    payloads: tuple[Payload, ...]


@dataclass
class TransportStats:
    """Counters the transport maintains for assertions and reports."""

    sent: int = 0
    delivered: int = 0
    dropped_to_crashed: int = 0
    dropped_from_crashed: int = 0


class AsyncTransport:
    """Delay-injecting message fabric for ``n`` nodes.

    Args:
        n: number of nodes.
        delay_model: delivery-latency distribution.
        seed: seed of the transport's private randomness.
    """

    def __init__(
        self,
        n: int,
        delay_model: DelayModel | None = None,
        seed: int = 0,
    ) -> None:
        if n <= 0:
            raise ValueError(f"need at least one node, got n={n}")
        self.n = n
        self.delay_model = delay_model if delay_model is not None else FixedDelay()
        self.rng = random.Random(seed)
        self.inboxes: list[asyncio.Queue[WireMessage]] = [
            asyncio.Queue() for _ in range(n)
        ]
        self.crashed: set[int] = set()
        self.stats = TransportStats()
        self._pending_tasks: set[asyncio.Task] = set()

    def crash(self, pid: int) -> None:
        """Fail-stop a node: all its future traffic is dropped."""
        self.crashed.add(pid)

    def send(self, sender: int, recipient: int, payloads: tuple[Payload, ...]) -> None:
        """Queue delivery of one envelope after a sampled delay.

        Raises:
            NodeCrashedError: when the sender has been crashed (its node
                task should already have stopped; this guards bugs).
        """
        if sender in self.crashed:
            raise NodeCrashedError(f"node {sender} is crashed and cannot send")
        if not 0 <= recipient < self.n:
            raise ValueError(f"recipient {recipient} out of range")
        self.stats.sent += 1
        delay = self.delay_model.sample(self.rng)
        task = asyncio.get_running_loop().create_task(
            self._deliver_later(sender, recipient, payloads, delay)
        )
        self._pending_tasks.add(task)
        task.add_done_callback(self._pending_tasks.discard)

    async def _deliver_later(
        self,
        sender: int,
        recipient: int,
        payloads: tuple[Payload, ...],
        delay: float,
    ) -> None:
        if delay > 0:
            await asyncio.sleep(delay)
        if sender in self.crashed:
            # The sender crashed while the message was in flight; in the
            # fail-stop model in-flight messages may still arrive, but we
            # also allow modelling crash-during-broadcast by dropping.
            # Default behaviour: deliver (the message was already sent).
            pass
        if recipient in self.crashed:
            self.stats.dropped_to_crashed += 1
            return
        self.stats.delivered += 1
        await self.inboxes[recipient].put(
            WireMessage(sender=sender, payloads=payloads)
        )

    async def drain(self) -> None:
        """Wait for all in-flight deliveries to settle (test helper)."""
        while self._pending_tasks:
            await asyncio.gather(*list(self._pending_tasks), return_exceptions=True)
