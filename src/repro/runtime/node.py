"""An asyncio node hosting the same protocol state machines as the DES.

A node drives one :class:`~repro.sim.process.SimProcess` — the identical
class the deterministic simulator drives — with a wall-clock step loop:
the node takes a step whenever a message arrives or a tick interval
elapses, whichever comes first.  The process's clock therefore counts
steps exactly as in the formal model, and the protocol's ``2K``-tick
timeouts become ``~2K * tick_interval`` seconds of silence.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass

from repro.errors import NodeCrashedError
from repro.runtime.transport import AsyncTransport, WireMessage
from repro.sim.message import MessageId, ReceivedPayload
from repro.sim.process import Program, SimProcess
from repro.sim.tape import RandomTape
from repro.types import ProcessStatus


@dataclass
class NodeResult:
    """What a node's run produced.

    Attributes:
        pid: node id.
        status: final process status (RETURNED / CRASHED / RUNNING when
            stopped by the deadline).
        decision: decided value, if any.
        output: the program's return value, if it returned.
        steps: steps taken (= final clock).
    """

    pid: int
    status: ProcessStatus
    decision: int | None
    output: object
    steps: int


class Node:
    """Hosts one protocol program on the asyncio event loop.

    Args:
        program: the protocol program (same classes the simulator runs).
        transport: the shared message fabric.
        tick_interval: seconds between idle steps; the protocol's clock
            granularity.
        tape_seed: seed of the node's private random tape.
    """

    def __init__(
        self,
        program: Program,
        transport: AsyncTransport,
        tick_interval: float = 0.002,
        tape_seed: int = 0,
    ) -> None:
        if tick_interval <= 0:
            raise ValueError(
                f"tick_interval must be positive, got {tick_interval}"
            )
        self.transport = transport
        self.tick_interval = tick_interval
        self.process = SimProcess(program, RandomTape(seed=tape_seed))
        self._crash_requested = asyncio.Event()

    @property
    def pid(self) -> int:
        return self.process.pid

    def request_crash(self) -> None:
        """Fail-stop the node at its next scheduling opportunity."""
        self._crash_requested.set()

    async def run(self, deadline: float | None = None) -> NodeResult:
        """Step the process until it returns, crashes, or hits ``deadline``.

        Args:
            deadline: optional wall-clock budget in seconds; a node still
                running at the deadline stops stepping (its protocol is
                considered blocked), mirroring the simulator's horizon.
        """
        loop = asyncio.get_running_loop()
        start = loop.time()
        inbox = self.transport.inboxes[self.pid]
        while self.process.status is ProcessStatus.RUNNING:
            if self._crash_requested.is_set():
                self.process.mark_crashed()
                self.transport.crash(self.pid)
                break
            if deadline is not None and loop.time() - start > deadline:
                break
            batch = await self._collect_batch(inbox)
            if self._crash_requested.is_set():
                # Crash decisions beat the step that was about to happen.
                continue
            try:
                outgoing = self.process.on_step(batch)
            except NodeCrashedError:  # pragma: no cover - defensive
                break
            for recipient, payloads in outgoing:
                self.transport.send(self.pid, recipient, payloads)
        return NodeResult(
            pid=self.pid,
            status=self.process.status,
            decision=self.process.decision,
            output=self.process.output,
            steps=self.process.clock,
        )

    async def _collect_batch(
        self, inbox: asyncio.Queue[WireMessage]
    ) -> list[ReceivedPayload]:
        """Wait one tick (or a message), then drain everything queued."""
        messages: list[WireMessage] = []
        try:
            first = await asyncio.wait_for(
                inbox.get(), timeout=self.tick_interval
            )
            messages.append(first)
        except asyncio.TimeoutError:
            pass
        while True:
            try:
                messages.append(inbox.get_nowait())
            except asyncio.QueueEmpty:
                break
        received: list[ReceivedPayload] = []
        for wire in messages:
            for payload in wire.payloads:
                received.append(
                    ReceivedPayload(
                        sender=wire.sender,
                        payload=payload,
                        receive_clock=self.process.clock + 1,
                        message_id=MessageId(-1),
                    )
                )
        return received
