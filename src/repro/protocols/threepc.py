"""Three-phase commit (Skeen) with timeout transitions, as a baseline.

Skeen's nonblocking commit [S] adds a *prepared-to-commit* buffer state
between voting and committing, so that a crashed coordinator no longer
blocks the participants: a participant that times out in the wait state
aborts, and one that times out after PRECOMMIT commits (every processor is
known prepared by then).  Under the synchronous assumptions the protocol
is nonblocking and consistent for any number of crash faults — the
property the paper credits [S]/[DS] with.

The same timeout transitions are exactly what goes wrong when messages
can be late: a participant still in the wait state times out and aborts
while a precommitted participant times out and commits, and the run ends
with conflicting decisions.  This is the second concrete artefact behind
the paper's "late messages can cause the protocols in [S] and [DS] to
produce a wrong answer", measured in experiment E9.

This is the flat (non-recovering) 3PC: no coordinator election or
termination protocol — crashes of the coordinator exercise the timeout
transitions directly, which is the behaviour the comparison needs.
Simplifications are documented in DESIGN.md §2.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.protocols.messages import (
    DecisionAnnouncement,
    ParticipantVote,
    PreCommit,
    PreCommitAck,
    VoteRequest,
)
from repro.sim.message import Payload
from repro.sim.process import Program
from repro.sim.waits import MessageCount, WithTimeout
from repro.types import COORDINATOR_ID, Decision, Vote


@dataclass
class ThreePCStats:
    """Telemetry for one 3PC processor."""

    reached_precommit: bool = False
    timeout_in_wait: bool = False
    timeout_in_precommit: bool = False
    decision: Decision | None = None


def _is(cls):
    def matcher(payload: Payload) -> bool:
        return isinstance(payload, cls)

    return matcher


class ThreePCProgram(Program):
    """One processor of centralized three-phase commit.

    Args:
        pid: processor id; ``pid == 0`` coordinates.
        n: number of processors.
        initial_vote: this processor's vote.
        K: timeout unit; every wait allows ``2K`` local ticks.
    """

    def __init__(
        self,
        pid: int,
        n: int,
        initial_vote: Vote | int,
        K: int,
    ) -> None:
        super().__init__(pid, n)
        if K < 1:
            raise ConfigurationError(f"K must be at least 1, got {K}")
        self.initial_vote = Vote(int(initial_vote))
        self.K = K
        self.stats = ThreePCStats()

    @property
    def is_coordinator(self) -> bool:
        return self.pid == COORDINATOR_ID

    def _finish(self, value: int) -> Decision:
        decision = Decision.from_bit(value)
        self.stats.decision = decision
        self.decide(int(decision))
        return decision

    def run(self):
        if self.is_coordinator:
            return (yield from self._run_coordinator())
        return (yield from self._run_participant())

    def _run_coordinator(self):
        # Phase 1: collect votes (own vote included via self-post).
        self.broadcast(VoteRequest())
        self.send(self.pid, ParticipantVote(vote=int(self.initial_vote)))
        votes_wait = WithTimeout(
            MessageCount(_is(ParticipantVote), self.n), ticks=2 * self.K
        )
        yield votes_wait
        yes_voters = self.board.senders_matching(
            lambda p: isinstance(p, ParticipantVote) and p.vote == 1
        )
        if len(yes_voters) < self.n:
            self.broadcast(DecisionAnnouncement(value=0))
            return self._finish(0)

        # Phase 2: everyone voted yes — announce PRECOMMIT, await acks.
        self.stats.reached_precommit = True
        self.broadcast(PreCommit())
        self.send(self.pid, PreCommitAck())
        acks_wait = WithTimeout(
            MessageCount(_is(PreCommitAck), self.n), ticks=2 * self.K
        )
        yield acks_wait
        # Phase 3: commit point.  (Un-acked participants are presumed
        # crashed under the synchronous assumptions; they would commit on
        # recovery.  With *late* acks this is exactly where 3PC's timing
        # reliance shows.)
        self.broadcast(DecisionAnnouncement(value=1))
        return self._finish(1)

    def _run_participant(self):
        request_wait = WithTimeout(
            MessageCount(_is(VoteRequest), 1), ticks=2 * self.K
        )
        yield request_wait
        if request_wait.timed_out(self.board, self.clock):
            return self._finish(0)

        self.send(COORDINATOR_ID, ParticipantVote(vote=int(self.initial_vote)))
        if self.initial_vote is Vote.ABORT:
            return self._finish(0)

        # Wait state: expecting PRECOMMIT or ABORT.  Timing out here means
        # "the coordinator must have aborted" under synchrony — abort.
        wait_state = WithTimeout(
            MessageCount(_is(PreCommit), 1)
            | MessageCount(_is(DecisionAnnouncement), 1),
            ticks=2 * self.K,
        )
        yield wait_state
        decisions = self.board.matching(_is(DecisionAnnouncement))
        if decisions:
            return self._finish(decisions[0].payload.value)
        if wait_state.timed_out(self.board, self.clock):
            self.stats.timeout_in_wait = True
            return self._finish(0)

        # Prepared state: ack, then expect COMMIT.  Timing out here means
        # "everyone is known prepared" under synchrony — commit.
        self.stats.reached_precommit = True
        self.send(COORDINATOR_ID, PreCommitAck())
        commit_wait = WithTimeout(
            MessageCount(_is(DecisionAnnouncement), 1), ticks=2 * self.K
        )
        yield commit_wait
        decisions = self.board.matching(_is(DecisionAnnouncement))
        if decisions:
            return self._finish(decisions[0].payload.value)
        self.stats.timeout_in_precommit = True
        return self._finish(1)
