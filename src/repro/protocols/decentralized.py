"""Decentralized one-phase commit (Skeen), as a baseline.

Skeen's thesis [S] also studies *decentralized* commit: no coordinator —
every participant broadcasts its vote to everyone and decides commit iff
it hears ``n`` yes votes in time.  One message exchange, O(n^2)
envelopes, no blocking state at all: a participant that times out simply
aborts.

Under the synchronous assumptions this is correct and fast; under a
single late vote it is *wrong* — the processors that saw all ``n`` votes
commit while the one whose copy ran late aborts.  It is the purest
illustration of the paper's opening observation, and (sitting at the
same O(n^2) message cost as Protocol 2) it shows in E14 that Protocol
2's price buys safety, not mere decentralization.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.protocols.messages import ParticipantVote
from repro.sim.message import Payload
from repro.sim.process import Program
from repro.sim.waits import MessageCount, WithTimeout
from repro.types import Decision, Vote


@dataclass
class DecentralizedStats:
    """Telemetry for one decentralized-commit participant."""

    timed_out: bool = False
    votes_seen: int = 0
    decision: Decision | None = None


def _is_vote(payload: Payload) -> bool:
    return isinstance(payload, ParticipantVote)


class DecentralizedCommitProgram(Program):
    """One participant of decentralized one-phase commit.

    Args:
        pid: processor id (all peers are symmetric; no coordinator).
        n: number of processors.
        initial_vote: this processor's vote.
        K: timeout unit; the vote collection allows ``2K`` local ticks.
    """

    def __init__(
        self,
        pid: int,
        n: int,
        initial_vote: Vote | int,
        K: int,
    ) -> None:
        super().__init__(pid, n)
        if K < 1:
            raise ConfigurationError(f"K must be at least 1, got {K}")
        self.initial_vote = Vote(int(initial_vote))
        self.K = K
        self.stats = DecentralizedStats()

    def run(self):
        # One exchange: broadcast the vote (self-post included), then
        # wait for everyone else's or give up.
        self.broadcast(ParticipantVote(vote=int(self.initial_vote)))
        votes_wait = WithTimeout(
            MessageCount(_is_vote, self.n, key=("participant_vote",)),
            ticks=2 * self.K,
        )
        yield votes_wait
        if votes_wait.timed_out(self.board, self.clock):
            self.stats.timed_out = True
        yes_voters = {
            entry.sender
            for entry in self.board.by_key(("participant_vote",))
            if entry.payload.vote == 1
        }
        self.stats.votes_seen = self.board.count_for_key(("participant_vote",))
        value = 1 if len(yes_voters) >= self.n else 0
        decision = Decision.from_bit(value)
        self.stats.decision = decision
        self.decide(int(decision))
        return decision
