"""Ben-Or's original randomized agreement protocol [Be], as a baseline.

The paper's Protocol 1 *is* Ben-Or's protocol plus the shared coin list;
running the same script with an empty coin list recovers the original:
every coin-flip stage uses a private ``flip(1)``.  Against adversarial
message scheduling the original needs all private flips to coincide to
make progress, giving exponential expected stages, which is exactly the
gap experiment E10 measures.

The class is a thin specialisation of
:class:`~repro.core.agreement.AgreementProgram` kept separate so that
experiments, docs, and type signatures can say "Ben-Or" and mean it.
"""

from __future__ import annotations

from repro.core.agreement import AgreementProgram
from repro.core.coins import CoinList
from repro.core.halting import HaltingMode


class BenOrProgram(AgreementProgram):
    """Ben-Or's protocol: stage structure of Protocol 1, local coins only.

    Args:
        pid: processor id.
        n: number of processors.
        t: fault tolerance (``n > 2t``).
        initial_value: the input value (0 or 1).
        halting: decide-to-return behaviour (shared with Protocol 1).
    """

    def __init__(
        self,
        pid: int,
        n: int,
        t: int,
        initial_value: int,
        halting: HaltingMode = HaltingMode.DECIDE_BROADCAST,
        allow_sub_resilience: bool = False,
    ) -> None:
        super().__init__(
            pid=pid,
            n=n,
            t=t,
            initial_value=initial_value,
            coins=CoinList.empty(),
            halting=halting,
            allow_sub_resilience=allow_sub_resilience,
        )
