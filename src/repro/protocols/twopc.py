"""Two-phase commit with timeout actions — the synchronous-model baseline.

The paper's introduction motivates the new model by observing that the
elegant synchronous commit protocols ([S], [DS]) are unusable when a
single timing violation occurs: "a single violation of the timing
assumptions (i.e., a late message) can cause the protocol to produce the
wrong answer."  This module supplies the concrete artefact behind that
sentence.

The protocol is the classic centralized 2PC with the timeout actions a
synchronous system would use (timeouts of ``2K`` local clock ticks, the
same allowance Protocol 2 uses):

* coordinator: request votes; if all ``n`` arrive in time and are yes,
  decide COMMIT, else decide ABORT; fan the decision out;
* participant: vote; then wait for the decision.  On timeout, the
  configured :class:`TimeoutAction` fires:

  - ``PRESUME_ABORT``: unilaterally abort (the synchronous-model action —
    correct when timing holds, *wrong* when the decision fan-out is late:
    the coordinator may have committed);
  - ``BLOCK``: wait forever (safe, but the protocol blocks on a crashed
    coordinator — the blocking problem that motivated [S]/[DS]).

Under failure-free on-time schedules both variants are correct.  Under
late messages, ``PRESUME_ABORT`` produces *conflicting decisions*, and
under coordinator crashes ``BLOCK`` fails to terminate — the two failure
shapes experiment E9 measures against Protocol 2, which suffers neither.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.protocols.messages import (
    DecisionAnnouncement,
    ParticipantVote,
    VoteRequest,
)
from repro.sim.message import Payload
from repro.sim.process import Program
from repro.sim.waits import MessageCount, WithTimeout
from repro.types import COORDINATOR_ID, Decision, Vote


class TimeoutAction(enum.Enum):
    """What a participant does when the decision does not arrive in time."""

    PRESUME_ABORT = enum.auto()
    BLOCK = enum.auto()


@dataclass
class TwoPCStats:
    """Telemetry for one 2PC participant."""

    timed_out_waiting_votes: bool = False
    timed_out_waiting_decision: bool = False
    presumed_abort: bool = False
    decision: Decision | None = None


def _is_vote_request(payload: Payload) -> bool:
    return isinstance(payload, VoteRequest)


def _is_participant_vote(payload: Payload) -> bool:
    return isinstance(payload, ParticipantVote)


def _is_decision(payload: Payload) -> bool:
    return isinstance(payload, DecisionAnnouncement)


class TwoPCProgram(Program):
    """One processor of centralized two-phase commit.

    Args:
        pid: processor id; ``pid == 0`` coordinates.
        n: number of processors.
        initial_vote: this processor's vote.
        K: timeout unit; every wait allows ``2K`` local ticks.
        timeout_action: participant behaviour on a missing decision.
    """

    def __init__(
        self,
        pid: int,
        n: int,
        initial_vote: Vote | int,
        K: int,
        timeout_action: TimeoutAction = TimeoutAction.PRESUME_ABORT,
    ) -> None:
        super().__init__(pid, n)
        if K < 1:
            raise ConfigurationError(f"K must be at least 1, got {K}")
        self.initial_vote = Vote(int(initial_vote))
        self.K = K
        self.timeout_action = timeout_action
        self.stats = TwoPCStats()

    @property
    def is_coordinator(self) -> bool:
        return self.pid == COORDINATOR_ID

    def _finish(self, value: int) -> Decision:
        decision = Decision.from_bit(value)
        self.stats.decision = decision
        self.decide(int(decision))
        return decision

    def run(self):
        if self.is_coordinator:
            return (yield from self._run_coordinator())
        return (yield from self._run_participant())

    def _run_coordinator(self):
        # Phase 1: request and collect votes (own vote counts).
        self.broadcast(VoteRequest())
        self.queue_vote(self.initial_vote)
        votes_wait = WithTimeout(
            MessageCount(_is_participant_vote, self.n), ticks=2 * self.K
        )
        yield votes_wait
        if votes_wait.timed_out(self.board, self.clock):
            self.stats.timed_out_waiting_votes = True
        yes_voters = self.board.senders_matching(
            lambda p: _is_participant_vote(p) and p.vote == 1
        )
        value = 1 if len(yes_voters) >= self.n else 0
        # Phase 2: fan the decision out and decide locally.
        self.broadcast(DecisionAnnouncement(value=value))
        return self._finish(value)

    def queue_vote(self, vote: Vote) -> None:
        """Register the coordinator's own vote on its board."""
        self.send(self.pid, ParticipantVote(vote=int(vote)))

    def _run_participant(self):
        # Wait for the vote request; a silent coordinator means abort
        # (this timeout action is safe — no one can have committed yet).
        request_wait = WithTimeout(
            MessageCount(_is_vote_request, 1), ticks=2 * self.K
        )
        yield request_wait
        if request_wait.timed_out(self.board, self.clock):
            return self._finish(0)

        self.send(COORDINATOR_ID, ParticipantVote(vote=int(self.initial_vote)))
        if self.initial_vote is Vote.ABORT:
            # A no-voter can abort unilaterally; 2PC lets it.
            return self._finish(0)

        decision_wait = WithTimeout(
            MessageCount(_is_decision, 1), ticks=2 * self.K
        )
        if self.timeout_action is TimeoutAction.BLOCK:
            yield MessageCount(_is_decision, 1)
        else:
            yield decision_wait
            if decision_wait.timed_out(self.board, self.clock):
                # The synchronous-model action: presume abort.  Correct
                # when timing assumptions hold; wrong when the decision
                # was merely late.
                self.stats.timed_out_waiting_decision = True
                self.stats.presumed_abort = True
                return self._finish(0)
        announcement = self.board.matching(_is_decision)[0].payload
        return self._finish(announcement.value)
