"""A CMS-style weak-shared-coin agreement, as a comparison point.

Chor, Merritt, and Shmoys [CMS] achieve constant expected time "in a
model that is stronger than Ben-Or's but more realistic than Rabin's" —
the shared coin is built *online* from exchanged shares instead of being
pre-distributed — but "their asynchronous protocol tolerates less than
one-sixth of the processors failing".

This module supplies the executable face of that trade-off with a
simplified stand-in (substitution documented in DESIGN.md): the stage
machinery of Protocol 1 with the shared list replaced by the
lowest-id-share rule of
:class:`~repro.core.coin_providers.WeakSharedCoinProvider`.  The property
the comparison needs survives the simplification — the coin usually
agrees, but adversarial delivery around the low-id shares can split it,
so the mechanism buys its constant time with a stricter fault bound,
enforced here as ``n > 6t`` (override with ``allow_sub_resilience`` for
boundary experiments).
"""

from __future__ import annotations

from repro.core.agreement import AgreementStats, agreement_script
from repro.core.coin_providers import WeakSharedCoinProvider
from repro.core.coins import CoinList
from repro.core.halting import HaltingMode
from repro.errors import ConfigurationError
from repro.sim.process import Program


class CMSStyleAgreementProgram(Program):
    """Agreement with an online weak shared coin (CMS-style).

    Args:
        pid: processor id.
        n: number of processors.
        t: fault tolerance; the CMS family needs ``n > 6t`` (the paper's
            comparison point) unless ``allow_sub_resilience``.
        initial_value: the input value (0 or 1).
    """

    #: Mechanism label used by comparison tables.
    mechanism = "weak-shared"

    def __init__(
        self,
        pid: int,
        n: int,
        t: int,
        initial_value: int,
        halting: HaltingMode = HaltingMode.DECIDE_BROADCAST,
        allow_sub_resilience: bool = False,
    ) -> None:
        super().__init__(pid, n)
        if not 0 <= t < n:
            raise ConfigurationError(
                f"t must satisfy 0 <= t < n, got t={t}, n={n}"
            )
        if n <= 6 * t and not allow_sub_resilience:
            raise ConfigurationError(
                f"the CMS-style coin needs n > 6t (got n={n}, t={t}); "
                f"that reduced tolerance is exactly the paper's point — "
                f"pass allow_sub_resilience=True to run it outside its "
                f"envelope for boundary experiments."
            )
        self.t = t
        self.initial_value = initial_value
        self.halting = halting
        self.allow_sub_resilience = allow_sub_resilience
        self.stats = AgreementStats()

    def run(self):
        value = yield from agreement_script(
            self,
            t=self.t,
            initial_value=self.initial_value,
            coins=CoinList.empty(),
            halting=self.halting,
            record_decision=True,
            stats=self.stats,
            allow_sub_resilience=True,  # n>2t enforced by our own check
            coin_provider=WeakSharedCoinProvider(),
        )
        return value
