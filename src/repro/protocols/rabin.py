"""Rabin-style dealer-coin agreement [R], as a comparison point.

Rabin's modification of Ben-Or also achieves constant expected time, but
"requires a stronger model with a reliable distributor of coin flips": a
trusted dealer hands every processor an identical coin list *before* the
protocol starts, out of band.  Operationally the stage machinery is the
same as Protocol 1's; the difference is entirely in the trust model —
Protocol 2 distributes the list in-protocol (the coordinator's GO
message), paying no extra trust assumption, whereas the dealer is an
external reliability assumption the paper's model does not grant.

:class:`DealerCoinAgreementProgram` makes that comparison executable:
construct all processors with the same dealer list and the runs are
Protocol 1 runs; the class exists so experiment tables can honestly
label the mechanism ("dealer") and so the trust distinction is visible
in code rather than buried in a parameter.
"""

from __future__ import annotations

from repro.core.agreement import AgreementProgram
from repro.core.coins import CoinList
from repro.core.halting import HaltingMode


class DealerCoinAgreementProgram(AgreementProgram):
    """Agreement with a trusted-dealer coin list (Rabin's model).

    Args:
        dealer_coins: the list the trusted dealer distributed; every
            processor of one execution must be constructed with the same
            object (the dealer's reliability is an assumption, so the
            harness enforces nothing — that is the point).
    """

    #: Mechanism label used by comparison tables.
    mechanism = "dealer"

    def __init__(
        self,
        pid: int,
        n: int,
        t: int,
        initial_value: int,
        dealer_coins: CoinList,
        halting: HaltingMode = HaltingMode.DECIDE_BROADCAST,
        allow_sub_resilience: bool = False,
    ) -> None:
        super().__init__(
            pid=pid,
            n=n,
            t=t,
            initial_value=initial_value,
            coins=dealer_coins,
            halting=halting,
            allow_sub_resilience=allow_sub_resilience,
        )
        self.dealer_coins = dealer_coins
