"""Message payloads of the baseline commit protocols (2PC / 3PC)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.message import Payload


@dataclass(frozen=True)
class VoteRequest(Payload):
    """The coordinator's request for votes (2PC/3PC phase 1)."""

    def board_key(self) -> object:
        return ("vote_req",)


@dataclass(frozen=True)
class ParticipantVote(Payload):
    """A participant's yes/no vote sent back to the coordinator."""

    vote: int

    def __post_init__(self) -> None:
        if self.vote not in (0, 1):
            raise ValueError(f"vote must be 0 or 1, got {self.vote}")

    def board_key(self) -> object:
        return ("participant_vote",)


@dataclass(frozen=True)
class PreCommit(Payload):
    """3PC's prepare-to-commit announcement."""

    def board_key(self) -> object:
        return ("precommit",)


@dataclass(frozen=True)
class PreCommitAck(Payload):
    """A participant's acknowledgement of a PreCommit."""

    def board_key(self) -> object:
        return ("precommit_ack",)


@dataclass(frozen=True)
class DecisionAnnouncement(Payload):
    """The coordinator's final COMMIT/ABORT fan-out."""

    value: int

    def __post_init__(self) -> None:
        if self.value not in (0, 1):
            raise ValueError(f"decision must be 0 or 1, got {self.value}")

    def board_key(self) -> object:
        return ("decision",)
