"""Baseline protocols the paper compares against.

* :class:`BenOrProgram` — Ben-Or's original randomized agreement (local
  coins only): the exponential-expected-stages baseline for Protocol 1.
* :class:`TwoPCProgram` — two-phase commit with synchronous-model timeout
  actions: wrong answers under late messages (``PRESUME_ABORT``) or
  blocking under coordinator crashes (``BLOCK``).
* :class:`ThreePCProgram` — Skeen's three-phase commit with timeout
  transitions: nonblocking under synchrony, inconsistent under lateness.
* :class:`DealerCoinAgreementProgram` — Rabin-style trusted-dealer coins.
* :class:`CMSStyleAgreementProgram` — a CMS-inspired weak shared coin
  (constant time, reduced fault envelope ``n > 6t``).
* :class:`DecentralizedCommitProgram` — Skeen's decentralized one-phase
  commit: never blocks, wrong under a single late vote.
"""

from repro.protocols.benor import BenOrProgram
from repro.protocols.cms import CMSStyleAgreementProgram
from repro.protocols.decentralized import (
    DecentralizedCommitProgram,
    DecentralizedStats,
)
from repro.protocols.messages import (
    DecisionAnnouncement,
    ParticipantVote,
    PreCommit,
    PreCommitAck,
    VoteRequest,
)
from repro.protocols.rabin import DealerCoinAgreementProgram
from repro.protocols.threepc import ThreePCProgram, ThreePCStats
from repro.protocols.twopc import TimeoutAction, TwoPCProgram, TwoPCStats

__all__ = [
    "BenOrProgram",
    "CMSStyleAgreementProgram",
    "DealerCoinAgreementProgram",
    "DecentralizedCommitProgram",
    "DecentralizedStats",
    "DecisionAnnouncement",
    "ParticipantVote",
    "PreCommit",
    "PreCommitAck",
    "ThreePCProgram",
    "ThreePCStats",
    "TimeoutAction",
    "TwoPCProgram",
    "TwoPCStats",
    "VoteRequest",
]
