"""High-level convenience API.

Most users want one of two calls:

* :func:`run_commit` — run Protocol 2 over ``n`` simulated processors
  under a chosen adversary and get back decisions, rounds, and the trace.
* :func:`run_agreement` — run the Protocol 1 subroutine standalone.

Both wrap the lower-level pieces (programs + adversary + simulation) that
power every experiment; nothing here is magic, just defaults.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from functools import cached_property
from typing import Sequence

from repro.adversary.base import Adversary
from repro.adversary.standard import SynchronousAdversary
from repro.core.agreement import AgreementProgram
from repro.core.coins import CoinList
from repro.core.commit import CommitProgram
from repro.core.halting import HaltingMode
from repro.errors import ConfigurationError
from repro.sim.rounds import RoundAnalyzer
from repro.sim.coreselect import simulation_class
from repro.sim.scheduler import Simulation, SimulationResult
from repro.types import Decision, Vote


def default_fault_tolerance(n: int) -> int:
    """The optimal fault tolerance for ``n`` processors: max t with n > 2t."""
    return (n - 1) // 2


@dataclass
class ProtocolOutcome:
    """Results of one simulated protocol execution.

    Wraps the raw :class:`~repro.sim.scheduler.SimulationResult` with the
    queries experiments ask constantly.

    Attributes:
        result: the raw simulation result.
        programs: the program objects that were executed (``None`` when
            the caller assembled the outcome without them).  Kept so
            metric extraction and the CLI's telemetry documents can read
            the per-program stage/coin stats.
    """

    result: SimulationResult
    programs: list | None = None

    @property
    def run(self):
        return self.result.run

    @property
    def terminated(self) -> bool:
        """Whether every nonfaulty program returned before the horizon."""
        return self.result.terminated

    @property
    def decisions(self) -> dict[int, int | None]:
        """Final decision per processor."""
        return self.result.decisions()

    @property
    def decision_values(self) -> set[int]:
        """Distinct decided values (must have at most one element)."""
        return self.run.decision_values()

    @property
    def consistent(self) -> bool:
        """The agreement condition: at most one decision value."""
        return self.run.agreement_holds()

    @property
    def unanimous_decision(self) -> Decision | None:
        """The common decision, or None if no processor decided."""
        values = self.decision_values
        if not values:
            return None
        if len(values) > 1:
            return None
        return Decision.from_bit(values.pop())

    @cached_property
    def rounds(self) -> RoundAnalyzer:
        """Asynchronous-round analysis of the run."""
        return RoundAnalyzer(self.run)

    @property
    def decision_round(self) -> int | None:
        """Rounds until the last nonfaulty decision (Theorem 10 metric)."""
        return self.rounds.max_decision_round()

    @property
    def decision_ticks(self) -> int | None:
        """Largest clock reading at a decide step (Remark 1 metric)."""
        return self.run.max_decision_clock()

    @property
    def on_time(self) -> bool:
        """Whether the run contained no late messages."""
        return self.run.is_on_time()


def run_commit(
    votes: Sequence[Vote | int],
    t: int | None = None,
    K: int = 4,
    adversary: Adversary | None = None,
    seed: int = 0,
    coin_count: int | None = None,
    halting: HaltingMode = HaltingMode.DECIDE_BROADCAST,
    max_steps: int = 100_000,
    allow_sub_resilience: bool = False,
) -> ProtocolOutcome:
    """Run Protocol 2 once and return the outcome.

    Args:
        votes: initial vote per processor (processor 0 is the coordinator).
        t: fault tolerance; defaults to the optimum ``(n - 1) // 2``.
        K: the on-time bound in clock ticks.
        adversary: scheduler; defaults to the failure-free on-time
            :class:`~repro.adversary.standard.SynchronousAdversary`.
        seed: master seed for the processors' random tapes.
        coin_count: coins in the coordinator's GO message (default ``n``).
        halting: halting mode of the embedded agreement.
        max_steps: simulation horizon standing in for an infinite run.
    """
    n = len(votes)
    if n == 0:
        raise ConfigurationError("need at least one processor")
    if t is None:
        t = default_fault_tolerance(n)
    programs = [
        CommitProgram(
            pid=pid,
            n=n,
            t=t,
            initial_vote=vote,
            K=K,
            coin_count=coin_count,
            halting=halting,
            allow_sub_resilience=allow_sub_resilience,
        )
        for pid, vote in enumerate(votes)
    ]
    if adversary is None:
        adversary = SynchronousAdversary(seed=seed)
    simulation = simulation_class()(
        programs=programs,
        adversary=adversary,
        K=K,
        t=t,
        seed=seed,
        max_steps=max_steps,
    )
    return ProtocolOutcome(result=simulation.run(), programs=programs)


def shared_coins(count: int, seed: int = 0) -> CoinList:
    """A reproducible shared coin list for standalone agreement runs.

    In Protocol 2 the coordinator flips these and ships them in the GO
    message; standalone agreement experiments need them supplied up front.
    """
    rng = random.Random(seed)
    return CoinList.from_bits(rng.getrandbits(1) for _ in range(count))


def run_agreement(
    values: Sequence[int],
    t: int | None = None,
    K: int = 4,
    coins: CoinList | None = None,
    adversary: Adversary | None = None,
    seed: int = 0,
    halting: HaltingMode = HaltingMode.DECIDE_BROADCAST,
    max_steps: int = 100_000,
    allow_sub_resilience: bool = False,
) -> ProtocolOutcome:
    """Run Protocol 1 standalone and return the outcome.

    Args:
        values: initial value per processor (0 or 1).
        t: fault tolerance; defaults to the optimum ``(n - 1) // 2``.
        K: the on-time bound (only used for round analysis; the agreement
            subroutine itself has no timeouts).
        coins: the shared coin list; defaults to ``n`` coins derived from
            ``seed`` (what the Protocol 2 coordinator would have flipped).
        adversary: scheduler; defaults to the synchronous one.
        halting: halting mode.
    """
    n = len(values)
    if n == 0:
        raise ConfigurationError("need at least one processor")
    if t is None:
        t = default_fault_tolerance(n)
    if coins is None:
        coins = shared_coins(n, seed=seed)
    programs = [
        AgreementProgram(
            pid=pid,
            n=n,
            t=t,
            initial_value=value,
            coins=coins,
            halting=halting,
            allow_sub_resilience=allow_sub_resilience,
        )
        for pid, value in enumerate(values)
    ]
    if adversary is None:
        adversary = SynchronousAdversary(seed=seed)
    simulation = simulation_class()(
        programs=programs,
        adversary=adversary,
        K=K,
        t=t,
        seed=seed,
        max_steps=max_steps,
    )
    return ProtocolOutcome(result=simulation.run(), programs=programs)
