"""Protocol message payloads for Protocols 1 and 2.

The vocabulary is exactly the paper's:

* ``(1, s, v)`` and ``(2, s, v)`` stage messages of the agreement
  subroutine, with ``v = None`` encoding the "I don't know" marker ⊥;
* GO messages carrying the coordinator's coin flips;
* vote messages carrying a processor's commit/abort wish;
* DECIDED messages, used by the default halting mode (a documented
  deviation — see DESIGN.md §5): safe to adopt under crash faults because
  a processor only sends one after a legitimate decision.

Payloads implement ``board_key`` so the bulletin board can index them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.message import Payload

#: The "I don't know" marker of the paper's second-phase messages.
BOTTOM = None


@dataclass(frozen=True)
class StageMessage(Payload):
    """A stage message ``(phase, stage, value)`` of the agreement protocol.

    ``phase`` is 1 or 2; ``value`` is 0, 1, or ``None`` for ⊥ (legal only
    in phase 2).  A phase-2 message with a non-⊥ value is an *S-message*:
    receiving one causes a processor to set its local value.
    """

    phase: int
    stage: int
    value: int | None

    def __post_init__(self) -> None:
        if self.phase not in (1, 2):
            raise ValueError(f"phase must be 1 or 2, got {self.phase}")
        if self.stage < 1:
            raise ValueError(f"stages are 1-based, got {self.stage}")
        if self.value not in (0, 1, BOTTOM):
            raise ValueError(f"value must be 0, 1, or None, got {self.value}")
        if self.phase == 1 and self.value is BOTTOM:
            raise ValueError("phase-1 messages carry a proper value, not ⊥")

    @property
    def is_s_message(self) -> bool:
        """Whether this is an S-message (phase 2, proper value)."""
        return self.phase == 2 and self.value is not BOTTOM

    def board_key(self) -> object:
        return ("stage", self.phase, self.stage)


@dataclass(frozen=True)
class GoMessage(Payload):
    """The coordinator's GO message: "start, here are the shared coins".

    Relayed by every participant and piggybacked on every later message,
    so any message receipt implies GO receipt.
    """

    coins: tuple[int, ...]

    def __post_init__(self) -> None:
        for bit in self.coins:
            if bit not in (0, 1):
                raise ValueError(f"coins are bits, got {bit!r}")

    def board_key(self) -> object:
        return ("go",)


@dataclass(frozen=True)
class VoteMessage(Payload):
    """A processor's vote: 1 to commit, 0 to abort."""

    vote: int

    def __post_init__(self) -> None:
        if self.vote not in (0, 1):
            raise ValueError(f"vote must be 0 or 1, got {self.vote}")

    def board_key(self) -> object:
        return ("vote",)


@dataclass(frozen=True)
class DecidedMessage(Payload):
    """Announcement that the sender decided ``value`` in the agreement.

    Part of the ``DECIDE_BROADCAST`` halting mode; adopting the value is
    safe under crash faults because senders never lie and only send after
    a decision backed by ``n - t`` S-messages.
    """

    value: int

    def __post_init__(self) -> None:
        if self.value not in (0, 1):
            raise ValueError(f"decided value must be 0 or 1, got {self.value}")

    def board_key(self) -> object:
        return ("decided",)
