"""Coin providers: where the stage coin comes from when no S-message.

The paper situates Protocol 1 among three coin-distribution designs:

* Ben-Or [Be] — every processor flips a *local* coin (exponential
  expected time against an adversary);
* Rabin [R] — a *trusted dealer* pre-distributes identical coins (fast,
  but "requires a stronger model with a reliable distributor");
* Chor–Merritt–Shmoys [CMS] — a weak shared coin built from exchanged
  shares (constant time at reduced fault tolerance, < n/6);
* this paper — the *coordinator* flips the coins and ships them in the
  GO message (fast, optimal t < n/2, no extra trust).

The agreement script delegates lines 7-8 ("xp <- coins[s] if s <=
|coins|, else flip(1)") to a :class:`CoinProvider`, so all four designs
run on the identical stage machinery and can be compared head-to-head
(experiment E12).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.coins import CoinList
from repro.sim.message import Payload
from repro.sim.process import Program


class CoinProvider:
    """Source of the stage-``s`` coin for one processor."""

    #: Human-readable mechanism name for tables and telemetry.
    name: str = "abstract"

    def on_stage_start(self, program: Program, stage: int) -> None:
        """Hook run when a stage begins (before the phase-1 broadcast).

        Providers that need per-stage communication (share exchange)
        broadcast here, so their payloads travel in the same envelopes as
        the phase-1 messages.
        """

    def coin(self, program: Program, stage: int) -> tuple[int, bool]:
        """The coin for ``stage``.

        Returns:
            ``(bit, shared)`` — the coin value and whether it came from a
            shared mechanism (for the shared/private telemetry split).
        """
        raise NotImplementedError


@dataclass
class SharedListProvider(CoinProvider):
    """The paper's mechanism: a pre-agreed coin list, private fallback.

    With an empty list this *is* Ben-Or (always the private fallback);
    with the coordinator-flipped list of Protocol 2 it is Protocol 1;
    with a dealer-distributed list it is Rabin's model.
    """

    coins: CoinList
    name: str = "shared-list"

    def coin(self, program: Program, stage: int) -> tuple[int, bool]:
        shared = self.coins.get(stage)
        if shared is not None:
            return shared, True
        return program.flip(1)[0], False


class LocalCoinProvider(CoinProvider):
    """Ben-Or's mechanism: always a private flip."""

    name = "local"

    def coin(self, program: Program, stage: int) -> tuple[int, bool]:
        return program.flip(1)[0], False


@dataclass(frozen=True)
class CoinShare(Payload):
    """One processor's coin share for a stage (CMS-style exchange)."""

    stage: int
    bit: int

    def __post_init__(self) -> None:
        if self.stage < 1:
            raise ValueError(f"stages are 1-based, got {self.stage}")
        if self.bit not in (0, 1):
            raise ValueError(f"share bit must be 0 or 1, got {self.bit}")

    def board_key(self) -> object:
        return ("share", self.stage)


class WeakSharedCoinProvider(CoinProvider):
    """A CMS-inspired weak shared coin from exchanged shares.

    Every processor broadcasts a random share at the start of each stage
    (piggybacked on the phase-1 envelope); when a coin is needed, it uses
    the share of the *lowest-id* processor it has heard from for that
    stage.  When all processors see the same lowest-id share the coin is
    common; adversarial delivery or a crash of the low-id processors can
    split it, which is why this family needs a larger honest majority
    (the real [CMS] protocol tolerates fewer than n/6 faults).

    This is a simplified stand-in for [CMS] (documented in DESIGN.md):
    it preserves the property the comparison needs — a shared-ish coin
    built from online exchange rather than a pre-agreed list — without
    the full machinery of the original protocol.
    """

    name = "weak-shared"

    def on_stage_start(self, program: Program, stage: int) -> None:
        share = program.flip(1)[0]
        program.broadcast(CoinShare(stage=stage, bit=share))

    def coin(self, program: Program, stage: int) -> tuple[int, bool]:
        shares = program.board.by_key(("share", stage))
        if not shares:
            # Degenerate fallback: no share seen (cannot happen when the
            # stage's phase-1 wait completed, since shares ride along).
            return program.flip(1)[0], False
        lowest = min(shares, key=lambda entry: entry.sender)
        return lowest.payload.bit, True
