"""The shared coin list distributed by the coordinator.

The key idea of the paper's Protocol 1 is to supply *all* processors with
*identical* coin flips: the coordinator flips ``m >= n`` coins before the
protocol starts and ships them in the GO message.  At stage ``s`` a
processor that saw no S-message takes ``coins[s]`` when ``s <= |coins|``
and only falls back to a private ``flip(1)`` beyond the list.  Because the
adversary cannot read message contents, it must commit to a stage's
delivery pattern before learning the stage's coin — so each stage matches
the hidden coin with probability 1/2, giving a constant expected number of
stages (Lemma 8), and longer lists push the expected stage count toward 3
(the paper's Remark 3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

#: Shape of a processor's local flip procedure (``flip(i) -> i bits``).
FlipFn = Callable[[int], list[int]]


@dataclass(frozen=True)
class CoinList:
    """An immutable, 1-indexed-by-stage list of shared coin flips."""

    bits: tuple[int, ...]

    def __post_init__(self) -> None:
        for bit in self.bits:
            if bit not in (0, 1):
                raise ValueError(f"coin flips are bits, got {bit!r}")

    @classmethod
    def from_bits(cls, bits: Iterable[int]) -> "CoinList":
        """Build a coin list from an iterable of bits."""
        return cls(bits=tuple(bits))

    @classmethod
    def empty(cls) -> "CoinList":
        """A coin list with no shared flips (degenerates to pure Ben-Or)."""
        return cls(bits=())

    def __len__(self) -> int:
        return len(self.bits)

    def get(self, stage: int) -> int | None:
        """The shared coin for ``stage`` (1-based), or ``None`` beyond it.

        ``None`` tells the caller to use its private coin, mirroring the
        paper's "coins[s] if s <= |coins|, else flip(1)".
        """
        if stage < 1:
            raise ValueError(f"stages are 1-based, got {stage}")
        if stage <= len(self.bits):
            return self.bits[stage - 1]
        return None


def flip_coin_list(flip: FlipFn, count: int) -> CoinList:
    """Flip ``count`` coins with the given flip procedure.

    This is what the coordinator runs at line 1 of Protocol 2 ("call
    flip(n) and broadcast results in GO message"); ``flip`` is the
    processor's local randomness (:meth:`repro.sim.process.Program.flip`).
    """
    if count < 0:
        raise ValueError(f"coin count must be non-negative, got {count}")
    return CoinList.from_bits(flip(count))
