"""Halting modes for the agreement subroutine.

The paper's Protocol 1 has a processor decide the first time it sees
``n - t`` S-messages for one value and ``return`` the second time.  Taken
literally, a processor that returns stops sending, and if decisions split
across stages ``r`` and ``r + 1`` with more than ``t`` processors
returning at ``r + 1``, the remaining processors can starve waiting for
stage-``r + 2`` messages.  This is the familiar termination wrinkle of
Ben-Or-family protocols; the paper does not dwell on it, so we make the
resolution explicit and configurable (DESIGN.md §5 documents the choice):

* ``DECIDE_BROADCAST`` (default) — on deciding, broadcast ``DECIDED(v)``
  and return.  Any processor that receives ``DECIDED(v)`` decides ``v``,
  re-broadcasts it, and returns.  Safe under crash faults (senders never
  lie), and the standard practical patch.
* ``ECHO`` — on returning, pre-send the stage messages the processor
  would have sent for the next few stages anyway (its value is fixed
  forever after a decision), so stragglers within Lemma 3's one-stage
  window can finish without the returner taking further steps.
* ``LITERAL`` — exactly the paper's code.  Correct for agreement/validity;
  tests exhibit the rare starvation corner.
"""

from __future__ import annotations

import enum


class HaltingMode(enum.Enum):
    """How a processor behaves between deciding and returning."""

    DECIDE_BROADCAST = enum.auto()
    ECHO = enum.auto()
    LITERAL = enum.auto()


#: Stages of messages pre-sent by a returning processor in ``ECHO`` mode.
#: Lemma 3 bounds decision skew to one stage, so two stages of lookahead
#: cover every straggler that can still need input from the returner.
ECHO_LOOKAHEAD_STAGES = 2
