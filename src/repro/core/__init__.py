"""The paper's primary contribution: Protocols 1 and 2.

* :mod:`repro.core.agreement` — Protocol 1, the randomized asynchronous
  agreement subroutine with shared coins (constant expected stages).
* :mod:`repro.core.commit` — Protocol 2, the randomized transaction
  commit protocol (t-nonblocking for t < n/2, ≤ 14 expected asynchronous
  rounds, graceful degradation beyond t faults).
* :mod:`repro.core.coins` — the shared coin list the coordinator ships in
  the GO message.
* :mod:`repro.core.halting` — configurable decide-to-return behaviour.
* :mod:`repro.core.api` — one-call runners used by examples, tests, and
  experiments.
"""

from repro.core.agreement import (
    AgreementProgram,
    AgreementStats,
    agreement_script,
)
from repro.core.api import (
    ProtocolOutcome,
    default_fault_tolerance,
    run_agreement,
    run_commit,
    shared_coins,
)
from repro.core.coins import CoinList, flip_coin_list
from repro.core.commit import CommitProgram, CommitStats
from repro.core.halting import ECHO_LOOKAHEAD_STAGES, HaltingMode
from repro.core.messages import (
    BOTTOM,
    DecidedMessage,
    GoMessage,
    StageMessage,
    VoteMessage,
)

__all__ = [
    "BOTTOM",
    "AgreementProgram",
    "AgreementStats",
    "CoinList",
    "CommitProgram",
    "CommitStats",
    "DecidedMessage",
    "ECHO_LOOKAHEAD_STAGES",
    "GoMessage",
    "HaltingMode",
    "ProtocolOutcome",
    "StageMessage",
    "VoteMessage",
    "agreement_script",
    "default_fault_tolerance",
    "flip_coin_list",
    "run_agreement",
    "run_commit",
    "shared_coins",
]
