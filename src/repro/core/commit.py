"""Protocol 2 — the randomized transaction commit protocol.

The paper's pseudocode, for processor ``p`` with initial state
``(id, initval)`` and ``vote <- initval``:

1. if ``id = 0`` then call ``flip(n)`` and broadcast results in GO message
2. else wait for a GO message
3. broadcast GO
4. wait for ``n`` GO messages or ``2K`` clock ticks
5. if have not received ``n`` GO messages
6.     then ``vote <- 0``
7. broadcast vote
8. wait for ``n`` vote messages or ``2K`` clock ticks
9. if received ``n`` vote messages for commit
10.    then ``xp <- 1``
11.    else ``xp <- 0``
12. call Protocol 1 with ``xp`` and GO message
13. if Protocol 1 returns 1
14.    then decide COMMIT
15.    else decide ABORT

GO messages are piggybacked on every message sent, including those of
Protocol 1, so receiving *any* message implies receiving a GO message —
the property Theorem 9's nonblocking argument relies on.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.agreement import AgreementStats, agreement_script
from repro.core.coins import CoinList, flip_coin_list
from repro.core.halting import HaltingMode
from repro.core.messages import GoMessage, VoteMessage
from repro.errors import ConfigurationError
from repro.sim.message import Payload
from repro.sim.process import Program
from repro.sim.waits import MessageCount, WithTimeout
from repro.telemetry import registry as telemetry
from repro.telemetry.log import get_logger
from repro.types import COORDINATOR_ID, Decision, Vote

_log = get_logger("core.commit")


@dataclass
class CommitStats:
    """Telemetry one commit execution leaves behind.

    Attributes:
        go_timed_out: whether the GO collection wait hit its 2K deadline.
        vote_timed_out: whether the vote collection hit its 2K deadline.
        vote_broadcast: the vote actually broadcast at line 7.
        abort_known_clock: clock at which the processor knew abort was
            inevitable (its vote became 0 — the paper notes it "can
            actually implement the abort" here); None if it never did.
        agreement_input: the value fed to Protocol 1 at line 12.
        agreement: the embedded Protocol 1 telemetry.
        decision: the final COMMIT/ABORT decision (None while running).
    """

    go_timed_out: bool = False
    vote_timed_out: bool = False
    vote_broadcast: int | None = None
    abort_known_clock: int | None = None
    early_abort_decided: bool = False
    agreement_input: int | None = None
    agreement: AgreementStats | None = None
    decision: Decision | None = None


def _is_go(payload: Payload) -> bool:
    return isinstance(payload, GoMessage)


def _is_vote(payload: Payload) -> bool:
    return isinstance(payload, VoteMessage)


class CommitProgram(Program):
    """One participant of Protocol 2.

    Args:
        pid: processor id; ``pid == 0`` is the coordinator.
        n: number of processors.
        t: fault tolerance (requires ``n > 2t`` unless
            ``allow_sub_resilience``).
        initial_vote: the processor's initial wish (commit or abort).
        K: the on-time bound; timeouts at lines 4 and 8 are ``2K`` ticks.
        coin_count: coins the coordinator flips for the GO message (the
            paper uses ``n``; larger values trade messages for fewer
            expected stages — Remark 3, experiment E5).
        halting: halting mode of the embedded Protocol 1.
        early_abort: implement the paper's aside at line 7 ("at this
            point, any processor that has abort as its vote can actually
            implement the abort"): enter the abort decision state the
            moment the own vote is 0.  Safe — a 0 vote makes every
            processor's Protocol 1 input 0, so the final decision is
            abort by validity — and it shortens abort latency
            (experiment E13).
    """

    def __init__(
        self,
        pid: int,
        n: int,
        t: int,
        initial_vote: Vote | int,
        K: int,
        coin_count: int | None = None,
        halting: HaltingMode = HaltingMode.DECIDE_BROADCAST,
        allow_sub_resilience: bool = False,
        early_abort: bool = False,
    ) -> None:
        super().__init__(pid, n)
        if K < 1:
            raise ConfigurationError(f"K must be at least 1, got {K}")
        if n <= 2 * t and not allow_sub_resilience:
            raise ConfigurationError(
                f"Protocol 2 requires n > 2t (got n={n}, t={t}); pass "
                f"allow_sub_resilience=True only for lower-bound experiments."
            )
        if coin_count is not None and coin_count < 0:
            raise ConfigurationError(
                f"coin_count must be non-negative, got {coin_count}"
            )
        self.t = t
        self.initial_vote = Vote(int(initial_vote))
        self.K = K
        self.coin_count = n if coin_count is None else coin_count
        self.halting = halting
        self.allow_sub_resilience = allow_sub_resilience
        self.early_abort = early_abort
        self.stats = CommitStats()

    @property
    def is_coordinator(self) -> bool:
        return self.pid == COORDINATOR_ID

    def run(self):
        vote = int(self.initial_vote)
        stats = self.stats

        # Lines 1-2: the coordinator creates the GO message (flipping the
        # shared coins); everyone else waits to hear one.  Because GO is
        # piggybacked on every message, "wait for a GO message" is
        # satisfied by the first message of any kind.
        if self.is_coordinator:
            go = GoMessage(coins=tuple(flip_coin_list(self.flip, self.coin_count).bits))
            self.broadcast(go)
        else:
            yield MessageCount(_is_go, 1, key=("go",))
            go_entries = self.board.by_key(("go",))
            go = go_entries[0].payload

        coins = CoinList.from_bits(go.coins)

        # From now on, piggyback GO on every outgoing envelope (including
        # all Protocol 1 traffic).
        self.set_piggyback(lambda recipient: (go,))

        # Line 3: relay GO ("I am participating in the protocol").
        self.broadcast(go)

        # Lines 4-6: collect GO messages from everyone, or give up after
        # 2K of our own clock ticks and switch the vote to abort.
        go_wait = WithTimeout(
            MessageCount(_is_go, self.n, key=("go",)), ticks=2 * self.K
        )
        yield go_wait
        if go_wait.timed_out(self.board, self.clock):
            stats.go_timed_out = True
            vote = 0
            _log.debug(
                "p%d: GO collection timed out at clock %d; vote -> abort",
                self.pid,
                self.clock,
            )
            if telemetry.enabled():
                telemetry.count(
                    "commit_timeouts_total",
                    help="2K-tick waits that expired, by phase",
                    phase="go",
                )

        # Line 7: broadcast the vote.  A processor whose vote is abort
        # already knows the outcome (abort validity) — the paper notes it
        # "can actually implement the abort" right here.
        if vote == 0 and stats.abort_known_clock is None:
            stats.abort_known_clock = self.clock
            if self.early_abort:
                stats.early_abort_decided = True
                self.decide(int(Decision.ABORT))
        stats.vote_broadcast = vote
        if telemetry.enabled():
            telemetry.count(
                "commit_votes_total",
                help="votes broadcast at line 7, by value",
                vote=vote,
            )
            if stats.early_abort_decided:
                telemetry.count(
                    "commit_early_aborts_total",
                    help="unilateral aborts taken at line 7",
                )
        self.broadcast(VoteMessage(vote=vote))

        # Lines 8-11: collect votes, or give up after 2K ticks.
        vote_wait = WithTimeout(
            MessageCount(_is_vote, self.n, key=("vote",)), ticks=2 * self.K
        )
        yield vote_wait
        if vote_wait.timed_out(self.board, self.clock):
            stats.vote_timed_out = True
            _log.debug(
                "p%d: vote collection timed out at clock %d",
                self.pid,
                self.clock,
            )
            if telemetry.enabled():
                telemetry.count(
                    "commit_timeouts_total",
                    help="2K-tick waits that expired, by phase",
                    phase="vote",
                )
        commit_voters = {
            entry.sender
            for entry in self.board.by_key(("vote",))
            if entry.payload.vote == 1
        }
        x_input = 1 if len(commit_voters) >= self.n else 0
        stats.agreement_input = x_input
        if telemetry.enabled():
            telemetry.count(
                "commit_agreement_inputs_total",
                help="values fed to Protocol 1 at line 12",
                value=x_input,
            )

        # Line 12: call Protocol 1 with xp and the GO message's coins.
        stats.agreement = AgreementStats()
        value = yield from agreement_script(
            self,
            t=self.t,
            initial_value=x_input,
            coins=coins,
            halting=self.halting,
            record_decision=False,
            stats=stats.agreement,
            allow_sub_resilience=self.allow_sub_resilience,
        )

        # Lines 13-15: decide the fate of the transaction.
        decision = Decision.from_bit(value)
        stats.decision = decision
        if telemetry.enabled():
            telemetry.count(
                "commit_decisions_total",
                help="final transaction decisions, by value",
                decision=decision.name.lower(),
            )
        self.decide(int(decision))
        return decision
