"""Protocol 1 — the randomized asynchronous agreement subroutine.

A line-for-line implementation of the paper's Protocol 1 (a modification
of Ben-Or's protocol in which all processors share an identical coin
list).  For processor ``p`` at stage ``s``:

1. broadcast ``(1, s, xp)``
2. wait to receive ``n - t`` messages of the form ``(1, s, *)``
3. if more than ``n/2`` messages are ``(1, s, v)`` for some ``v``
4.     then broadcast ``(2, s, v)``
5.     else broadcast ``(2, s, ⊥)``
6. wait to receive ``n - t`` messages of the form ``(2, s, *)``
7. if there are no ``(2, s, v)`` messages for any ``v``
8.     then ``xp <- coins[s]`` if ``s <= |coins|``, else ``flip(1)``
9. if there is a ``(2, s, v)`` message for some ``v``
10.    then ``xp <- v``
11. if there are at least ``n - t`` messages of the form ``(2, s, v)``
12.    then if already decided
13.        then return ``v``
14.        else decide ``v``

The protocol body is :func:`agreement_script`, a generator usable both
standalone (wrapped in :class:`AgreementProgram`) and as the subroutine
call at line 12 of Protocol 2 (``yield from`` inside the commit program).
Halting behaviour after the decide/return pair is configurable; see
:mod:`repro.core.halting`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Generator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.coin_providers import CoinProvider

from repro.core.coins import CoinList
from repro.core.halting import ECHO_LOOKAHEAD_STAGES, HaltingMode
from repro.core.messages import BOTTOM, DecidedMessage, StageMessage
from repro.errors import ConfigurationError, ProtocolViolation
from repro.sim.message import Payload
from repro.sim.process import Program
from repro.sim.waits import MessageCount, WaitAny, WaitCondition
from repro.telemetry import registry as telemetry


@dataclass
class AgreementStats:
    """Telemetry one agreement execution leaves behind.

    Attributes:
        stages_started: how many stages the processor entered.
        decision_stage: stage at which it first decided (None if never).
        decided_value: the decided value (None if never decided).
        shared_coin_stages: stages resolved with the shared coin list.
        private_coin_stages: stages resolved with a private ``flip(1)``.
        adopted_from_broadcast: whether the decision was adopted from a
            ``DECIDED`` announcement rather than reached at line 14.
    """

    stages_started: int = 0
    decision_stage: int | None = None
    decided_value: int | None = None
    shared_coin_stages: int = 0
    private_coin_stages: int = 0
    adopted_from_broadcast: bool = False


def _is_stage(phase: int, stage: int):
    """Matcher for payloads of the form ``(phase, stage, *)``."""

    def matcher(payload: Payload) -> bool:
        return (
            isinstance(payload, StageMessage)
            and payload.phase == phase
            and payload.stage == stage
        )

    return matcher


def _is_decided(payload: Payload) -> bool:
    return isinstance(payload, DecidedMessage)


def _validate_resilience(n: int, t: int, allow_sub_resilience: bool) -> None:
    if not 0 <= t < n:
        raise ConfigurationError(f"t must satisfy 0 <= t < n, got t={t}, n={n}")
    if n <= 2 * t and not allow_sub_resilience:
        raise ConfigurationError(
            f"Protocol 1 requires n > 2t (got n={n}, t={t}); Theorem 14 "
            f"proves no protocol works otherwise.  Pass "
            f"allow_sub_resilience=True only for lower-bound experiments."
        )


def agreement_script(
    program: Program,
    t: int,
    initial_value: int,
    coins: CoinList,
    halting: HaltingMode = HaltingMode.DECIDE_BROADCAST,
    record_decision: bool = True,
    stats: AgreementStats | None = None,
    allow_sub_resilience: bool = False,
    coin_provider: "CoinProvider | None" = None,
) -> Generator[WaitCondition, None, int]:
    """The body of Protocol 1, as a protocol-program generator.

    Args:
        program: the hosting program (supplies broadcast/flip/board/...).
        t: fault tolerance parameter; requires ``n > 2t`` unless
            ``allow_sub_resilience``.
        initial_value: the processor's input ``xp`` (0 or 1).
        coins: the shared coin list (empty list degenerates to Ben-Or).
        halting: behaviour between decide and return (see
            :mod:`repro.core.halting`).
        record_decision: whether reaching line 14 records a decision on
            the hosting process.  Protocol 2 passes ``False`` because its
            own decide states are lines 14-15 of Protocol 2.
        stats: telemetry sink; a fresh one is created if omitted.
        coin_provider: where lines 7-8's coin comes from; defaults to the
            paper's shared-list-with-private-fallback built from
            ``coins``.  See :mod:`repro.core.coin_providers` for the
            Ben-Or / Rabin / CMS-style alternatives.

    Returns:
        The agreed value (via ``StopIteration.value`` / ``yield from``).
    """
    if initial_value not in (0, 1):
        raise ConfigurationError(
            f"initial value must be 0 or 1, got {initial_value!r}"
        )
    n = program.n
    _validate_resilience(n, t, allow_sub_resilience)
    if stats is None:
        stats = AgreementStats()
    if coin_provider is None:
        from repro.core.coin_providers import SharedListProvider

        coin_provider = SharedListProvider(coins=coins)
    board = program.board
    use_decided_broadcast = halting is HaltingMode.DECIDE_BROADCAST

    def wait_for(condition: WaitCondition) -> WaitCondition:
        """Also wake on a DECIDED announcement when the mode uses them."""
        if use_decided_broadcast:
            return WaitAny(
                (condition, MessageCount(_is_decided, 1, key=("decided",)))
            )
        return condition

    def adopted_value() -> int | None:
        """Value from a DECIDED announcement, if one arrived."""
        if not use_decided_broadcast:
            return None
        announcements = board.by_key(("decided",))
        if not announcements:
            return None
        values = {entry.payload.value for entry in announcements}
        if len(values) > 1:
            raise ProtocolViolation(
                f"conflicting DECIDED announcements: {sorted(values)}"
            )
        return values.pop()

    def finish_by_adoption(value: int) -> int:
        telemetry.count(
            "agreement_decisions_total",
            help="agreement decisions, by how they were reached",
            via="adoption",
        )
        stats.adopted_from_broadcast = True
        stats.decided_value = value
        if stats.decision_stage is None:
            stats.decision_stage = stats.stages_started
        if record_decision:
            program.decide(value)
        program.broadcast(DecidedMessage(value=value))
        return value

    x = initial_value
    decided_value: int | None = None
    stage = 0
    while True:
        stage += 1
        stats.stages_started = stage
        if telemetry.enabled():
            telemetry.count(
                "agreement_stage_transitions_total",
                help="stage entries across all processors",
            )

        # Line 1: broadcast (1, s, xp).  Share-exchanging coin providers
        # piggyback their per-stage shares on the same envelopes.
        coin_provider.on_stage_start(program, stage)
        program.broadcast(StageMessage(phase=1, stage=stage, value=x))

        # Line 2: wait to receive n - t messages of the form (1, s, *).
        yield wait_for(
            MessageCount(
                _is_stage(1, stage), n - t, key=("stage", 1, stage)
            )
        )
        adopted = adopted_value()
        if adopted is not None:
            return finish_by_adoption(adopted)

        # Lines 3-5: majority check over everything received so far.
        first_phase = board.by_key(("stage", 1, stage))
        senders_for = {
            v: {e.sender for e in first_phase if e.payload.value == v}
            for v in (0, 1)
        }
        majority = next(
            (v for v in (0, 1) if len(senders_for[v]) > n / 2), None
        )
        if majority is not None:
            program.broadcast(
                StageMessage(phase=2, stage=stage, value=majority)
            )
        else:
            program.broadcast(
                StageMessage(phase=2, stage=stage, value=BOTTOM)
            )

        # Line 6: wait to receive n - t messages of the form (2, s, *).
        yield wait_for(
            MessageCount(
                _is_stage(2, stage), n - t, key=("stage", 2, stage)
            )
        )
        adopted = adopted_value()
        if adopted is not None:
            return finish_by_adoption(adopted)

        # Lines 7-10: set the local value.
        second_phase = board.by_key(("stage", 2, stage))
        s_senders = {
            v: {e.sender for e in second_phase if e.payload.value == v}
            for v in (0, 1)
        }
        s_values = [v for v in (0, 1) if s_senders[v]]
        if len(s_values) > 1:
            # Lemma 2: impossible under fail-stop faults.
            raise ProtocolViolation(
                f"S-messages for both values at stage {stage}"
            )
        if not s_values:
            x, from_shared = coin_provider.coin(program, stage)
            if from_shared:
                stats.shared_coin_stages += 1
            else:
                stats.private_coin_stages += 1
            if telemetry.enabled():
                telemetry.count(
                    "agreement_coin_flips_total",
                    help="stage coins consumed, by source",
                    source="shared" if from_shared else "private",
                )
        else:
            x = s_values[0]

        # Lines 11-14: decide / return.
        if s_values and len(s_senders[s_values[0]]) >= n - t:
            value = s_values[0]
            if decided_value is not None:
                # Line 13: already decided at an earlier stage -> return.
                return decided_value
            decided_value = value
            stats.decision_stage = stage
            stats.decided_value = value
            if telemetry.enabled():
                telemetry.count(
                    "agreement_decisions_total",
                    help="agreement decisions, by how they were reached",
                    via="quorum",
                )
                telemetry.observe(
                    "agreement_decision_stage",
                    stage,
                    help="stage at which processors decide",
                    buckets=telemetry.COUNT_BUCKETS,
                )
            if record_decision:
                program.decide(value)
            if halting is HaltingMode.DECIDE_BROADCAST:
                program.broadcast(DecidedMessage(value=value))
                return value
            if halting is HaltingMode.ECHO:
                for ahead in range(1, ECHO_LOOKAHEAD_STAGES + 1):
                    program.broadcast(
                        StageMessage(phase=1, stage=stage + ahead, value=value)
                    )
                    program.broadcast(
                        StageMessage(phase=2, stage=stage + ahead, value=value)
                    )
                return value
            # LITERAL: keep participating until the next n - t S-batch.


class AgreementProgram(Program):
    """Standalone Protocol 1, for agreement-only experiments and tests.

    Args:
        pid: processor id.
        n: number of processors.
        t: fault tolerance (``n > 2t`` unless ``allow_sub_resilience``).
        initial_value: the input value (0 or 1).
        coins: shared coin list; all processors must be given the same one
            (in Protocol 2 the coordinator's GO message guarantees that).
        halting: halting mode (see :mod:`repro.core.halting`).
    """

    def __init__(
        self,
        pid: int,
        n: int,
        t: int,
        initial_value: int,
        coins: CoinList,
        halting: HaltingMode = HaltingMode.DECIDE_BROADCAST,
        allow_sub_resilience: bool = False,
    ) -> None:
        super().__init__(pid, n)
        _validate_resilience(n, t, allow_sub_resilience)
        self.t = t
        self.initial_value = initial_value
        self.coins = coins
        self.halting = halting
        self.allow_sub_resilience = allow_sub_resilience
        self.stats = AgreementStats()

    def run(self):
        value = yield from agreement_script(
            self,
            t=self.t,
            initial_value=self.initial_value,
            coins=self.coins,
            halting=self.halting,
            record_decision=True,
            stats=self.stats,
            allow_sub_resilience=self.allow_sub_resilience,
        )
        return value
