"""repro — Transaction Commit in a Realistic Fault Model (PODC 1986).

A faithful, executable reproduction of Coan & Lundelius's randomized
transaction commit protocol and its almost-asynchronous model:

* :mod:`repro.core` — Protocol 1 (shared-coin agreement) and Protocol 2
  (randomized transaction commit);
* :mod:`repro.sim` — the paper's formal model as a deterministic
  discrete-event simulator (events, schedules, runs, message patterns,
  asynchronous rounds, ``t``-admissibility);
* :mod:`repro.adversary` — pattern-only adversaries (plus one
  deliberately content-aware attacker);
* :mod:`repro.protocols` — baselines: Ben-Or with local coins, 2PC, 3PC;
* :mod:`repro.runtime` — an asyncio deployment substrate running the same
  protocol state machines;
* :mod:`repro.analysis` — Monte-Carlo trials, statistics, sweeps;
* :mod:`repro.lowerbound` — the lockstep model and the executable
  constructions behind Theorems 14 and 17;
* :mod:`repro.experiments` — the E1..E11 reproduction experiments.

Quickstart::

    from repro import run_commit, Vote

    outcome = run_commit([Vote.COMMIT] * 5)
    assert outcome.unanimous_decision is not None
"""

from repro.core import (
    AgreementProgram,
    CoinList,
    CommitProgram,
    HaltingMode,
    ProtocolOutcome,
    default_fault_tolerance,
    run_agreement,
    run_commit,
    shared_coins,
)
from repro.errors import ReproError
from repro.types import COORDINATOR_ID, Decision, ProcessorId, Vote

__version__ = "1.0.0"

__all__ = [
    "AgreementProgram",
    "COORDINATOR_ID",
    "CoinList",
    "CommitProgram",
    "Decision",
    "HaltingMode",
    "ProcessorId",
    "ProtocolOutcome",
    "ReproError",
    "Vote",
    "__version__",
    "default_fault_tolerance",
    "run_agreement",
    "run_commit",
    "shared_coins",
]
