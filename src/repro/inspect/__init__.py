"""Run inspection: human-readable renderings of recorded runs."""

from repro.inspect.timeline import (
    render_lanes,
    render_round_chart,
    render_timeline,
    summarize_run,
)

__all__ = [
    "render_lanes",
    "render_round_chart",
    "render_timeline",
    "summarize_run",
]
