"""Human-readable rendering of recorded runs.

Debugging a distributed protocol from a raw event list is miserable;
these helpers render a :class:`~repro.sim.trace.Run` as text:

* :func:`render_timeline` — one line per event: who stepped, what was
  delivered, what was sent, decisions as they happen;
* :func:`render_lanes` — a compact per-processor lane view (one column
  per processor, one row per event);
* :func:`render_round_chart` — each processor's asynchronous-round
  boundaries against its decision point;
* :func:`summarize_run` — the one-paragraph version.
"""

from __future__ import annotations

from repro.sim.rounds import RoundAnalyzer
from repro.sim.trace import Run
from repro.types import ProcessStatus


def _payload_names(run: Run, message_ids) -> str:
    kinds: list[str] = []
    for mid in message_ids:
        envelope = run.envelopes.get(mid)
        if envelope is None:
            continue
        for payload in envelope.payloads:
            kinds.append(type(payload).__name__)
    if not kinds:
        return "-"
    compact: dict[str, int] = {}
    for kind in kinds:
        compact[kind] = compact.get(kind, 0) + 1
    return ",".join(
        f"{kind}x{count}" if count > 1 else kind
        for kind, count in compact.items()
    )


def render_timeline(run: Run, limit: int | None = None) -> str:
    """One line per event, chronological.

    Args:
        run: the recorded run.
        limit: render only the first ``limit`` events (None = all).
    """
    lines = [
        f"run: n={run.n} t={run.t} K={run.K} events={run.event_count} "
        f"messages={run.messages_sent()} on_time={run.is_on_time()}"
    ]
    previous_decisions: dict[int, int | None] = {
        pid: None for pid in range(run.n)
    }
    events = run.events if limit is None else run.events[:limit]
    for event in events:
        if event.kind == "crash":
            lines.append(f"{event.index:>6}  p{event.actor} CRASH")
            continue
        delivered = _payload_names(run, event.delivered)
        sent = _payload_names(run, event.sent)
        note = ""
        if event.decision_after != previous_decisions[event.actor]:
            note = f"  DECIDES {event.decision_after}"
            previous_decisions[event.actor] = event.decision_after
        elif event.halted_after:
            note = ""
        lines.append(
            f"{event.index:>6}  p{event.actor} clk={event.clock_after:<4} "
            f"recv[{delivered}] send[{sent}]{note}"
        )
    if limit is not None and run.event_count > limit:
        lines.append(f"... {run.event_count - limit} more events")
    return "\n".join(lines)


def render_lanes(run: Run, limit: int | None = None) -> str:
    """A compact lane view: one column per processor.

    Cell legend: ``.`` idle step, ``r`` received, ``s`` sent, ``b`` both,
    ``D`` decided at this step, ``X`` crash, `` `` not scheduled.
    """
    header = "event  " + " ".join(f"p{pid}" for pid in range(run.n))
    lines = [header]
    previous_decisions: dict[int, int | None] = {
        pid: None for pid in range(run.n)
    }
    events = run.events if limit is None else run.events[:limit]
    for event in events:
        cells = ["  "] * run.n
        if event.kind == "crash":
            cells[event.actor] = "X "
        else:
            received = bool(event.delivered)
            sent = bool(event.sent)
            symbol = "."
            if received and sent:
                symbol = "b"
            elif received:
                symbol = "r"
            elif sent:
                symbol = "s"
            if event.decision_after != previous_decisions[event.actor]:
                symbol = "D"
                previous_decisions[event.actor] = event.decision_after
            cells[event.actor] = symbol + " "
        lines.append(f"{event.index:>5}  " + " ".join(cells))
    return "\n".join(lines)


def render_round_chart(run: Run) -> str:
    """Round boundaries and decision rounds per processor."""
    analyzer = RoundAnalyzer(run)
    lines = ["asynchronous rounds (clock reading at each round end):"]
    decision_rounds = analyzer.decision_rounds()
    for pid in range(run.n):
        boundaries = analyzer.boundaries(pid)
        ends = " ".join(str(end) for end in boundaries.ends[1:6])
        more = " ..." if len(boundaries.ends) > 6 else ""
        decision = decision_rounds[pid]
        decision_text = (
            f"decided in round {decision}" if decision else "undecided"
        )
        lines.append(f"  p{pid}: ends at clocks [{ends}{more}] — {decision_text}")
    top = analyzer.max_decision_round()
    lines.append(
        f"  last nonfaulty decision: round {top}"
        if top
        else "  no nonfaulty processor decided"
    )
    return "\n".join(lines)


def summarize_run(run: Run) -> str:
    """A one-paragraph summary of what happened."""
    crashed = sorted(run.faulty())
    decided = {
        pid: value for pid, value in run.decisions.items() if value is not None
    }
    values = sorted(set(decided.values()))
    outcome: str
    if not decided:
        outcome = "no processor decided"
    elif len(values) == 1:
        outcome = f"all deciders chose {values[0]}"
    else:
        outcome = f"CONFLICT: decisions {values}"
    late = len(run.late_messages())
    returned = sum(
        1
        for status in run.statuses.values()
        if status is ProcessStatus.RETURNED
    )
    return (
        f"{run.event_count} events, {run.messages_sent()} messages "
        f"({late} late); crashed={crashed or 'none'}; "
        f"{returned}/{run.n} programs returned; {outcome}."
    )
