"""Compile a FaultPlan to a simulator adversary.

The deterministic track already has the right chassis: the
:class:`~repro.adversary.base.CycleAdversary` steps alive processors in
round-robin cycles, executes a crash plan, and delegates delivery to a
:class:`~repro.adversary.base.DeliveryPolicy`.  A fault plan therefore
compiles to a crash plan plus one composite policy that realises the
plan's link behaviour in *cycle* time:

* **partition windows** withhold cross-group envelopes while up;
* **drop** becomes a long hold (the dropped copy never arrives, the
  retransmitted one does — in the simulator the two are
  indistinguishable, so a drop is "delivery after a recovery delay");
* **reorder** holds an envelope a few extra cycles so later traffic
  overtakes it;
* **duplication** has no simulator counterpart (the receiver-side dedup
  of the runtime track makes duplicates invisible to the protocol, and
  the simulator's buffers deliver each envelope at most once), so it
  compiles to a no-op;
* **per-link delay overrides** replace the base hold outright.

Every hold is finite and partitions heal, so compiled adversaries
preserve eventual delivery: within-budget plans remain schedules under
which Protocol 2 must terminate, not just stay safe.
"""

from __future__ import annotations

from repro.adversary.base import (
    CrashAt,
    CycleAdversary,
    CycleContext,
    DeliveryPolicy,
)
from repro.errors import ConfigurationError
from repro.faults.plan import FaultPlan
from repro.sim.message import MessageId
from repro.sim.pattern import PendingMessage


class _PlanPolicy(DeliveryPolicy):
    """Delivery policy realising a FaultPlan's link behaviour in cycles."""

    def __init__(self, plan: FaultPlan, K: int) -> None:
        self.plan = plan
        self.K = K
        #: Recovery delay of a dropped copy, in cycles: comfortably past
        #: the on-time bound, so drops manufacture genuinely late
        #: messages, yet finite, so delivery stays eventual.
        self.drop_penalty = 3 * K
        self._hold: dict[MessageId, int] = {}

    def _hold_cycles(self, message: PendingMessage, ctx: CycleContext) -> int:
        """Total cycles to hold one envelope (assigned once, remembered)."""
        assigned = self._hold.get(message.message_id)
        if assigned is not None:
            return assigned
        plan = self.plan
        delay = plan.delay_for(message.sender, message.recipient)
        if delay is not None:
            hold = ctx.rng.randint(delay.min_cycles, delay.max_cycles)
        else:
            hold = 1
        loss = plan.loss_for(message.sender, message.recipient)
        if loss.reorder and ctx.rng.random() < loss.reorder:
            hold += ctx.rng.randint(1, self.K)
        if loss.drop and ctx.rng.random() < loss.drop:
            hold += self.drop_penalty
        self._hold[message.message_id] = hold
        return hold

    def select(self, view, pid, pending, ctx):
        chosen = []
        for message in pending:
            if self.plan.severed(message.sender, pid, ctx.cycle):
                continue
            if ctx.age_in_cycles(message) >= self._hold_cycles(message, ctx):
                chosen.append(message.message_id)
        return tuple(chosen)


class FaultPlanAdversary(CycleAdversary):
    """A CycleAdversary executing one :class:`FaultPlan`.

    Args:
        plan: the fault schedule to realise.
        K: the protocol's on-time bound (scales reorder holds and the
            drop recovery penalty).
        seed: adversary randomness; defaults to the plan's own seed so a
            plan is one self-contained, replayable object.
    """

    def __init__(self, plan: FaultPlan, K: int = 4, seed: int | None = None) -> None:
        super().__init__(
            seed=plan.seed if seed is None else seed,
            delivery=_PlanPolicy(plan, K),
            crash_plan=[
                CrashAt(pid=c.pid, cycle=c.cycle) for c in plan.crashes
            ],
        )
        self.plan = plan

    def __repr__(self) -> str:
        return (
            f"FaultPlanAdversary(n={self.plan.n}, "
            f"crashes={self.plan.crash_count}, "
            f"partitions={len(self.plan.partitions)})"
        )


def compile_to_adversary(plan: FaultPlan, K: int = 4) -> FaultPlanAdversary:
    """Compile ``plan`` for the deterministic simulator track.

    Raises:
        ConfigurationError: when the plan schedules crash *recoveries* —
            the simulator models the paper's fail-stop crashes only; a
            plan with ``recover_cycle`` entries belongs to the service
            track (:mod:`repro.service`).
    """
    if plan.has_recoveries:
        raise ConfigurationError(
            "plan schedules crash recoveries; the sim track is fail-stop "
            "only — run it on the service track instead"
        )
    return FaultPlanAdversary(plan, K=K)
