"""Online safety monitoring: machine-check the theorems on every trial.

The paper's robustness claims are per-run invariants, so a campaign can
check all of them on every single execution rather than eyeballing
aggregate tables:

* **agreement** (Theorem 11 / the agreement condition) — no two
  processors decide differently, *whatever* the fault schedule, even
  beyond the budget;
* **abort validity** — if any processor voted ABORT, any decision made
  is ABORT;
* **commit validity** — in a benign run (no faults, no loss, on time)
  the decision must be COMMIT when everyone voted COMMIT;
* **nonblocking** (Theorem 9 regime) — when the schedule stays within
  the fault budget and preserves eventual delivery, every nonfaulty
  processor decides.

The first three are *safety* properties: a single violation anywhere
falsifies the paper.  ``nonblocking`` is liveness and is reported in a
separate bucket — with > t crashes the protocol is explicitly allowed
to block (and the monitor expects exactly that: ``nonterminated``, not
conflicting decisions).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.telemetry import registry as telemetry
from repro.types import Decision

#: Properties whose violation falsifies a safety theorem.
SAFETY_PROPERTIES = ("agreement", "abort_validity", "commit_validity")
#: Properties whose violation falsifies a liveness (termination) claim.
LIVENESS_PROPERTIES = ("nonblocking",)


@dataclass(frozen=True)
class Violation:
    """One falsified invariant in one trial."""

    prop: str
    detail: str

    @property
    def is_safety(self) -> bool:
        return self.prop in SAFETY_PROPERTIES

    def to_dict(self) -> dict:
        return {"property": self.prop, "detail": self.detail}


@dataclass
class SafetyReport:
    """All invariant checks of one trial."""

    checked: list[str] = field(default_factory=list)
    violations: list[Violation] = field(default_factory=list)

    @property
    def safety_ok(self) -> bool:
        return not any(v.is_safety for v in self.violations)

    @property
    def liveness_ok(self) -> bool:
        return not any(not v.is_safety for v in self.violations)

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_dict(self) -> dict:
        return {
            "checked": list(self.checked),
            "violations": [v.to_dict() for v in self.violations],
            "safety_ok": self.safety_ok,
            "liveness_ok": self.liveness_ok,
        }


class SafetyMonitor:
    """Checks the paper's invariants against one trial's observables.

    Args:
        n: number of processors.
        t: the fault budget the protocol instance was configured with.
        votes: the initial votes, by pid.
    """

    def __init__(self, n: int, t: int, votes: list[int]) -> None:
        if len(votes) != n:
            raise ValueError(f"got {len(votes)} votes for n={n}")
        self.n = n
        self.t = t
        self.votes = list(votes)

    def check(
        self,
        decisions: dict[int, int | None],
        crashed: set[int],
        terminated: bool,
        expect_termination: bool,
        benign: bool = False,
    ) -> SafetyReport:
        """Evaluate every applicable invariant for one trial.

        Args:
            decisions: final decision per pid (``None`` = undecided).
            crashed: pids that fail-stopped during the run.
            terminated: whether every nonfaulty processor returned.
            expect_termination: whether the schedule obliges termination
                (faults within budget and eventual delivery preserved).
            benign: whether the run was failure-free, loss-free, and on
                time — the regime in which commit validity bites.
        """
        report = SafetyReport()
        decided = {
            pid: bit for pid, bit in decisions.items() if bit is not None
        }

        report.checked.append("agreement")
        values = sorted(set(decided.values()))
        if len(values) > 1:
            report.violations.append(
                Violation(
                    prop="agreement",
                    detail=(
                        f"conflicting decisions "
                        f"{ {p: b for p, b in sorted(decided.items())} }"
                    ),
                )
            )

        report.checked.append("abort_validity")
        if any(v == 0 for v in self.votes):
            wrong = sorted(
                pid
                for pid, bit in decided.items()
                if bit != int(Decision.ABORT)
            )
            if wrong:
                report.violations.append(
                    Violation(
                        prop="abort_validity",
                        detail=(
                            f"vote 0 present but pids {wrong} decided COMMIT"
                        ),
                    )
                )

        if benign and all(v == 1 for v in self.votes):
            report.checked.append("commit_validity")
            nonfaulty = [p for p in range(self.n) if p not in crashed]
            wrong = sorted(
                pid
                for pid in nonfaulty
                if decisions.get(pid) != int(Decision.COMMIT)
            )
            if wrong:
                report.violations.append(
                    Violation(
                        prop="commit_validity",
                        detail=(
                            f"benign all-commit run but pids {wrong} did "
                            f"not decide COMMIT"
                        ),
                    )
                )

        if expect_termination:
            report.checked.append("nonblocking")
            if not terminated:
                undecided = sorted(
                    pid
                    for pid in range(self.n)
                    if pid not in crashed and decisions.get(pid) is None
                )
                report.violations.append(
                    Violation(
                        prop="nonblocking",
                        detail=(
                            f"{len(crashed)} <= t={self.t} crashes yet pids "
                            f"{undecided} blocked"
                        ),
                    )
                )

        self._record(report)
        return report

    @staticmethod
    def _record(report: SafetyReport) -> None:
        if not telemetry.enabled():
            return
        violated = {v.prop for v in report.violations}
        for prop in report.checked:
            telemetry.count(
                "safety_checks_total",
                help="per-trial invariant checks, by property and verdict",
                prop=prop,
                ok=prop not in violated,
            )
        for prop in violated:
            telemetry.count(
                "safety_violations_total",
                help="falsified invariants (should stay at zero)",
                prop=prop,
            )
