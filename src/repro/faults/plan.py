"""The FaultPlan DSL: declarative, seed-reproducible fault schedules.

A :class:`FaultPlan` describes *what goes wrong* in one protocol run —
crashes, partition windows, per-link loss/duplication/reorder, per-link
delay overrides — independently of *which track executes it*.  The same
plan compiles to a simulator adversary
(:func:`repro.faults.sim_compile.compile_to_adversary`) and to asyncio
transport hooks plus crash injections
(:func:`repro.faults.runtime_compile.compile_to_runtime`), so the
paper's robustness claims can be swept with thousands of seeded
schedules on both tracks and cross-checked.

Time is expressed in abstract **cycles**: one cycle is one round-robin
sweep of the simulator's :class:`~repro.adversary.base.CycleAdversary`,
and maps to one ``tick_interval`` of local stepping on the runtime
track.  Everything else is probabilities and pids, which both tracks
share natively.

Plans are plain frozen dataclasses with a stable dict form
(:meth:`FaultPlan.to_dict` / :meth:`FaultPlan.from_dict`), so campaign
reports can embed them and any counterexample is replayable from JSON.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class CrashFault:
    """Crash ``pid`` at the start of ``cycle``.

    With ``recover_cycle`` left ``None`` this is the paper's fail-stop
    crash: the processor is gone for the rest of the run.  A finite
    ``recover_cycle`` turns it into a *crash-recovery* fault: the
    processor is killed at ``cycle``, loses its volatile state, and is
    restarted at ``recover_cycle`` to replay its durable log and rejoin
    (see :mod:`repro.service`).  Only the service track can execute
    recoveries — the sim and runtime compilers reject such plans.
    """

    pid: int
    cycle: int
    recover_cycle: int | None = None

    def __post_init__(self) -> None:
        if self.pid < 0:
            raise ConfigurationError(f"crash pid must be >= 0, got {self.pid}")
        if self.cycle < 0:
            raise ConfigurationError(
                f"crash cycle must be >= 0, got {self.cycle}"
            )
        if self.recover_cycle is not None and self.recover_cycle <= self.cycle:
            raise ConfigurationError(
                f"recover_cycle {self.recover_cycle} must come after the "
                f"crash cycle {self.cycle}"
            )

    @property
    def permanent(self) -> bool:
        """Whether this crash is fail-stop (the node never returns)."""
        return self.recover_cycle is None


@dataclass(frozen=True)
class PartitionWindow:
    """Block cross-group traffic from ``start_cycle`` until ``heal_cycle``.

    ``groups`` are disjoint pid sets; pids in no listed group form an
    implicit extra group.  The window always heals (``heal_cycle`` is
    finite), preserving the model's eventual-delivery guarantee.
    """

    groups: tuple[tuple[int, ...], ...]
    start_cycle: int
    heal_cycle: int

    def __post_init__(self) -> None:
        if self.heal_cycle < self.start_cycle:
            raise ConfigurationError(
                f"heal_cycle {self.heal_cycle} before start_cycle "
                f"{self.start_cycle}"
            )
        seen: set[int] = set()
        for group in self.groups:
            overlap = seen.intersection(group)
            if overlap:
                raise ConfigurationError(
                    f"partition groups must be disjoint; {sorted(overlap)} "
                    f"appear twice"
                )
            seen.update(group)

    def group_of(self, pid: int) -> int:
        for index, group in enumerate(self.groups):
            if pid in group:
                return index
        return -1

    def severs(self, sender: int, recipient: int, cycle: float) -> bool:
        """Whether this window blocks ``sender -> recipient`` at ``cycle``."""
        if not self.start_cycle <= cycle < self.heal_cycle:
            return False
        return self.group_of(sender) != self.group_of(recipient)


@dataclass(frozen=True)
class LinkLoss:
    """Per-attempt loss behaviour of a directed link.

    Attributes:
        drop: probability one transmission attempt is lost.
        duplicate: probability an attempt is delivered twice.
        reorder: probability an attempt is held long enough to arrive
            behind later traffic.
    """

    drop: float = 0.0
    duplicate: float = 0.0
    reorder: float = 0.0

    def __post_init__(self) -> None:
        for name in ("drop", "duplicate", "reorder"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(
                    f"LinkLoss.{name} out of [0, 1]: {value}"
                )
        if self.drop >= 1.0:
            raise ConfigurationError(
                "LinkLoss.drop must stay below 1 (eventual delivery)"
            )

    @property
    def clean(self) -> bool:
        return self.drop == 0.0 and self.duplicate == 0.0 and self.reorder == 0.0


@dataclass(frozen=True)
class LinkDelay:
    """Delay override for one directed link, in cycles."""

    sender: int
    recipient: int
    min_cycles: int = 1
    max_cycles: int = 1

    def __post_init__(self) -> None:
        if not 0 <= self.min_cycles <= self.max_cycles:
            raise ConfigurationError(
                f"need 0 <= min_cycles <= max_cycles, got "
                f"({self.min_cycles}, {self.max_cycles})"
            )


@dataclass(frozen=True)
class FaultPlan:
    """One complete, seed-reproducible fault schedule for ``n`` processors.

    Attributes:
        n: number of processors the plan targets.
        seed: seed of the fault layer's private randomness (loss draws,
            hold durations); the plan structure itself is explicit.
        crashes: fail-stop schedule.
        partitions: transient partition windows (always healing).
        loss: default loss behaviour of every link.
        link_loss: per-directed-link overrides of ``loss``.
        link_delays: per-directed-link delay overrides, in cycles.
    """

    n: int
    seed: int = 0
    crashes: tuple[CrashFault, ...] = ()
    partitions: tuple[PartitionWindow, ...] = ()
    loss: LinkLoss = field(default_factory=LinkLoss)
    link_loss: tuple[tuple[int, int, LinkLoss], ...] = ()
    link_delays: tuple[LinkDelay, ...] = ()

    def __post_init__(self) -> None:
        if self.n <= 0:
            raise ConfigurationError(
                f"need at least one processor, got n={self.n}"
            )
        seen: set[int] = set()
        for crash in self.crashes:
            if crash.pid >= self.n:
                raise ConfigurationError(
                    f"crash pid {crash.pid} out of range for n={self.n}"
                )
            if crash.pid in seen:
                raise ConfigurationError(
                    f"pid {crash.pid} crashes twice in one plan"
                )
            seen.add(crash.pid)
        if len(self.crashes) >= self.n:
            raise ConfigurationError(
                f"cannot crash all {self.n} processors"
            )
        for window in self.partitions:
            for group in window.groups:
                for pid in group:
                    if not 0 <= pid < self.n:
                        raise ConfigurationError(
                            f"partition pid {pid} out of range for n={self.n}"
                        )
        for sender, recipient, _ in self.link_loss:
            if not (0 <= sender < self.n and 0 <= recipient < self.n):
                raise ConfigurationError(
                    f"link ({sender}, {recipient}) out of range for n={self.n}"
                )
        for delay in self.link_delays:
            if not (
                0 <= delay.sender < self.n and 0 <= delay.recipient < self.n
            ):
                raise ConfigurationError(
                    f"link delay ({delay.sender}, {delay.recipient}) out of "
                    f"range for n={self.n}"
                )

    # -- queries -------------------------------------------------------------

    @property
    def crash_count(self) -> int:
        return len(self.crashes)

    @property
    def permanent_crash_count(self) -> int:
        """Crashes with no scheduled recovery (fail-stop losses)."""
        return sum(1 for c in self.crashes if c.permanent)

    @property
    def has_recoveries(self) -> bool:
        """Whether any crash schedules a restart (crash-recovery model)."""
        return any(not c.permanent for c in self.crashes)

    @property
    def entry_count(self) -> int:
        """How many discrete fault ingredients the plan contains.

        One per crash, partition window, per-link loss override, and
        per-link delay override, plus one when the global loss is not
        clean.  This is the size notion the counterexample shrinker
        minimises and reports ("reduced to a 2-entry plan").
        """
        return (
            len(self.crashes)
            + len(self.partitions)
            + len(self.link_loss)
            + len(self.link_delays)
            + (0 if self.loss.clean else 1)
        )

    def within_budget(self, t: int) -> bool:
        """Whether the plan stays inside the fault budget ``t``.

        Only *permanent* (fail-stop) crashes consume the budget: a crash
        with a scheduled recovery returns the node to service, so in the
        crash-recovery model it reads as a long pause, not a loss.  For
        plans without recoveries this is the original
        ``crash_count <= t``.
        """
        return self.permanent_crash_count <= t

    def guarantees_termination(self, t: int) -> bool:
        """Whether the paper obliges this schedule to terminate.

        True when the plan is within the fault budget *and* the
        coordinator's GO fan-out is guaranteed to escape.  Two schedule
        shapes void that guarantee: crashing the coordinator at cycle 0
        (the transaction dies before any processor learns it exists),
        and crashing it while a partition window that opened before the
        crash severs it from a peer — retransmission dies with the
        coordinator, so a fan-out the partition swallowed is lost
        forever and nobody is left holding a GO to relay.  In both
        regimes nobody is required to decide, like the paper's
        processors that never receive the transaction.  Outside them,
        both compilers preserve eventual delivery (finite holds,
        healing partitions, retransmission while the sender lives).

        A coordinator crash with a scheduled *recovery* voids neither
        shape: the restarted coordinator replays its durable log and
        re-sends every unacknowledged envelope (including a GO fan-out
        it never managed to send), so the transaction always escapes —
        the nonblocking claim extends to such plans on the service
        track.
        """
        if not self.within_budget(t):
            return False
        coordinator_crash = next(
            (c for c in self.crashes if c.pid == 0), None
        )
        if coordinator_crash is None or not coordinator_crash.permanent:
            return True
        if coordinator_crash.cycle < 1:
            return False
        for window in self.partitions:
            if window.start_cycle < coordinator_crash.cycle and any(
                window.severs(0, pid, window.start_cycle)
                for pid in range(1, self.n)
            ):
                return False
        return True

    def loss_for(self, sender: int, recipient: int) -> LinkLoss:
        """The loss behaviour of one directed link."""
        for s, r, loss in self.link_loss:
            if s == sender and r == recipient:
                return loss
        return self.loss

    def delay_for(self, sender: int, recipient: int) -> LinkDelay | None:
        """The delay override of one directed link, if any."""
        for delay in self.link_delays:
            if delay.sender == sender and delay.recipient == recipient:
                return delay
        return None

    def severed(self, sender: int, recipient: int, cycle: float) -> bool:
        """Whether any partition window blocks the link at ``cycle``."""
        return any(
            w.severs(sender, recipient, cycle) for w in self.partitions
        )

    @property
    def last_disruption_cycle(self) -> int:
        """Last cycle at which the plan itself changes the network."""
        latest = 0
        for crash in self.crashes:
            latest = max(latest, crash.cycle)
        for window in self.partitions:
            latest = max(latest, window.heal_cycle)
        return latest

    # -- serialization --------------------------------------------------------

    def to_dict(self) -> dict:
        """A stable, JSON-safe dict form (sorted, no sets)."""
        return {
            "n": self.n,
            "seed": self.seed,
            "crashes": [
                # recover_cycle is emitted only when set, so fail-stop
                # plans keep their v1 byte-identical JSON form.
                {"pid": c.pid, "cycle": c.cycle}
                if c.permanent
                else {
                    "pid": c.pid,
                    "cycle": c.cycle,
                    "recover_cycle": c.recover_cycle,
                }
                for c in self.crashes
            ],
            "partitions": [
                {
                    "groups": [sorted(g) for g in w.groups],
                    "start_cycle": w.start_cycle,
                    "heal_cycle": w.heal_cycle,
                }
                for w in self.partitions
            ],
            "loss": _loss_dict(self.loss),
            "link_loss": [
                {
                    "sender": s,
                    "recipient": r,
                    "loss": _loss_dict(loss),
                }
                for s, r, loss in self.link_loss
            ],
            "link_delays": [
                {
                    "sender": d.sender,
                    "recipient": d.recipient,
                    "min_cycles": d.min_cycles,
                    "max_cycles": d.max_cycles,
                }
                for d in self.link_delays
            ],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        """Rebuild a plan from :meth:`to_dict` output."""
        return cls(
            n=data["n"],
            seed=data.get("seed", 0),
            crashes=tuple(
                CrashFault(
                    pid=c["pid"],
                    cycle=c["cycle"],
                    recover_cycle=c.get("recover_cycle"),
                )
                for c in data.get("crashes", ())
            ),
            partitions=tuple(
                PartitionWindow(
                    groups=tuple(tuple(g) for g in w["groups"]),
                    start_cycle=w["start_cycle"],
                    heal_cycle=w["heal_cycle"],
                )
                for w in data.get("partitions", ())
            ),
            loss=_loss_from(data.get("loss", {})),
            link_loss=tuple(
                (
                    entry["sender"],
                    entry["recipient"],
                    _loss_from(entry["loss"]),
                )
                for entry in data.get("link_loss", ())
            ),
            link_delays=tuple(
                LinkDelay(
                    sender=d["sender"],
                    recipient=d["recipient"],
                    min_cycles=d["min_cycles"],
                    max_cycles=d["max_cycles"],
                )
                for d in data.get("link_delays", ())
            ),
        )

    # -- randomized generation ------------------------------------------------

    @classmethod
    def random(
        cls,
        n: int,
        t: int,
        seed: int,
        K: int = 4,
        over_budget: bool = False,
        max_drop: float = 0.3,
        max_duplicate: float = 0.25,
        max_reorder: float = 0.3,
        partition_probability: float = 0.5,
        link_override_probability: float = 0.3,
        recovery_probability: float = 0.0,
    ) -> "FaultPlan":
        """Draw one randomized plan, fully determined by ``seed``.

        With ``over_budget`` the crash count is drawn from
        ``t + 1 .. n - 1`` (the graceful-degradation regime); otherwise
        from ``0 .. t``.  Loss probabilities stay bounded away from 1
        and partitions always heal, so within-budget plans preserve
        eventual delivery — the regime in which the protocol must both
        stay safe *and* terminate.

        ``recovery_probability`` turns each crash, independently, into a
        kill/recover pair (``recover_cycle`` a few cycles after the
        kill) — the crash-recovery regime only the service track can
        execute.  The recovery draws happen strictly after every
        fail-stop draw, so plans with ``recovery_probability == 0``
        reproduce the historical stream byte-for-byte.
        """
        rng = random.Random(seed)
        if over_budget:
            low, high = t + 1, n - 1
        else:
            low, high = 0, t
        crash_count = rng.randint(low, min(high, n - 1)) if high >= low else 0
        victims = rng.sample(range(n), crash_count)
        # Within-budget plans must keep the termination guarantee, so the
        # coordinator (pid 0) is never crashed before its GO fan-out; an
        # extra cycle of margin keeps both compilations comfortably clear
        # of the boundary.  Over-budget plans may kill it at cycle 0.
        crashes = tuple(
            CrashFault(
                pid=pid,
                cycle=rng.randint(2 if pid == 0 and not over_budget else 0, 3 * K),
            )
            for pid in victims
        )
        partitions: tuple[PartitionWindow, ...] = ()
        if n >= 2 and rng.random() < partition_probability:
            members = rng.sample(range(n), rng.randint(1, n - 1))
            start = rng.randint(0, 2 * K)
            duration = rng.randint(1, 2 * K)
            if not over_budget:
                # Within-budget plans must keep the termination
                # guarantee: a window opening before a coordinator
                # crash could swallow its entire GO fan-out (see
                # guarantees_termination), so shift the window to open
                # no earlier than the crash.
                coordinator_crash = next(
                    (c.cycle for c in crashes if c.pid == 0), None
                )
                if coordinator_crash is not None:
                    start = max(start, coordinator_crash)
            partitions = (
                PartitionWindow(
                    groups=(tuple(sorted(members)),),
                    start_cycle=start,
                    heal_cycle=start + duration,
                ),
            )
        loss = LinkLoss(
            drop=rng.uniform(0, max_drop),
            duplicate=rng.uniform(0, max_duplicate),
            reorder=rng.uniform(0, max_reorder),
        )
        link_loss: tuple[tuple[int, int, LinkLoss], ...] = ()
        if n >= 2 and rng.random() < link_override_probability:
            sender, recipient = rng.sample(range(n), 2)
            link_loss = (
                (
                    sender,
                    recipient,
                    LinkLoss(
                        drop=rng.uniform(0, max_drop),
                        duplicate=rng.uniform(0, max_duplicate),
                        reorder=rng.uniform(0, max_reorder),
                    ),
                ),
            )
        link_delays: tuple[LinkDelay, ...] = ()
        if n >= 2 and rng.random() < link_override_probability:
            sender, recipient = rng.sample(range(n), 2)
            lo = rng.randint(1, K)
            link_delays = (
                LinkDelay(
                    sender=sender,
                    recipient=recipient,
                    min_cycles=lo,
                    max_cycles=lo + rng.randint(0, K),
                ),
            )
        if recovery_probability > 0:
            recovered = []
            for crash in crashes:
                if rng.random() >= recovery_probability:
                    recovered.append(crash)
                    continue
                cycle = crash.cycle
                if crash.pid == 0 and not over_budget:
                    # The within-budget draw keeps a fail-stop
                    # coordinator clear of cycle 0; a recovering one
                    # may die at any point — including before its GO
                    # fan-out — and must still drive the transaction
                    # home after replay.
                    cycle = rng.randint(0, 3 * K)
                recovered.append(
                    CrashFault(
                        pid=crash.pid,
                        cycle=cycle,
                        recover_cycle=cycle + rng.randint(1, 3 * K),
                    )
                )
            crashes = tuple(recovered)
        return cls(
            n=n,
            seed=seed,
            crashes=crashes,
            partitions=partitions,
            loss=loss,
            link_loss=link_loss,
            link_delays=link_delays,
        )


def _loss_dict(loss: LinkLoss) -> dict:
    return {
        "drop": loss.drop,
        "duplicate": loss.duplicate,
        "reorder": loss.reorder,
    }


def _loss_from(data: dict) -> LinkLoss:
    return LinkLoss(
        drop=data.get("drop", 0.0),
        duplicate=data.get("duplicate", 0.0),
        reorder=data.get("reorder", 0.0),
    )
