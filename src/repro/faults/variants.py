"""Protocol variants a campaign can host, including intentionally broken ones.

The fault campaign's job is to *detect* safety violations, but a
detector is only trustworthy if it demonstrably fires on a buggy
protocol.  This module keeps a small registry of program variants a
:class:`~repro.faults.campaign.CampaignConfig` can select by name:

* ``commit`` — the paper's Protocol 2 (:class:`CommitProgram`), the
  default and the thing the repo exists to validate;
* ``broken-commit`` — :class:`BrokenCommitProgram`, a deliberately
  faulty variant carrying the classic two-phase-commit mistake: on a
  vote-collection timeout it *unilaterally decides its own vote* instead
  of feeding 0 into the agreement subprotocol.  Under any schedule that
  makes one commit-voting processor time out while another learns of an
  abort vote (a single crash or partition window suffices), the cluster
  splits into COMMIT and ABORT — violating agreement and abort validity.

The broken variant is the end-to-end fixture for the counterexample
pipeline (:mod:`repro.counterexample`): campaigns against it must find a
violation, the shrinker must reduce the violating FaultPlan to one or
two entries, and replay must reproduce the violating run byte-for-byte.
Variant names travel inside campaign configs and replay artifacts, so
entries must stay picklable module-level classes with stable names.
"""

from __future__ import annotations

from repro.core.agreement import AgreementStats, agreement_script
from repro.core.coins import CoinList, flip_coin_list
from repro.core.commit import CommitProgram, _is_go, _is_vote
from repro.core.messages import GoMessage, VoteMessage
from repro.errors import ConfigurationError
from repro.sim.process import Program
from repro.sim.waits import MessageCount, WithTimeout
from repro.types import Decision


class BrokenCommitProgram(CommitProgram):
    """Protocol 2 with a planted decide-own-vote-on-timeout bug.

    Lines 1-11 match :class:`CommitProgram`.  The bug replaces lines
    12-15: when the vote collection at line 8 times out, the processor
    skips Protocol 1 entirely and decides whatever its own vote happens
    to be.  A processor still holding vote 1 then decides COMMIT even
    though some other processor may have voted (or flipped to) 0 and
    decided ABORT — exactly the disagreement the agreement subprotocol
    exists to prevent.
    """

    def run(self):
        vote = int(self.initial_vote)
        if self.is_coordinator:
            go = GoMessage(
                coins=tuple(flip_coin_list(self.flip, self.coin_count).bits)
            )
            self.broadcast(go)
        else:
            yield MessageCount(_is_go, 1, key=("go",))
            go = self.board.by_key(("go",))[0].payload
        coins = CoinList.from_bits(go.coins)
        self.set_piggyback(lambda recipient: (go,))
        self.broadcast(go)

        go_wait = WithTimeout(
            MessageCount(_is_go, self.n, key=("go",)), ticks=2 * self.K
        )
        yield go_wait
        if go_wait.timed_out(self.board, self.clock):
            vote = 0
        self.broadcast(VoteMessage(vote=vote))

        vote_wait = WithTimeout(
            MessageCount(_is_vote, self.n, key=("vote",)), ticks=2 * self.K
        )
        yield vote_wait
        if vote_wait.timed_out(self.board, self.clock):
            # THE BUG: a timed-out processor decides unilaterally instead
            # of entering Protocol 1 with input 0.
            decision = Decision.from_bit(vote)
            self.decide(int(decision))
            return decision
        commit_voters = {
            entry.sender
            for entry in self.board.by_key(("vote",))
            if entry.payload.vote == 1
        }
        x_input = 1 if len(commit_voters) >= self.n else 0
        value = yield from agreement_script(
            self,
            t=self.t,
            initial_value=x_input,
            coins=coins,
            halting=self.halting,
            record_decision=False,
            stats=AgreementStats(),
            allow_sub_resilience=self.allow_sub_resilience,
        )
        decision = Decision.from_bit(value)
        self.decide(int(decision))
        return decision


#: Registered program variants, by the name campaign configs carry.
PROGRAM_VARIANTS: dict[str, type[CommitProgram]] = {
    "commit": CommitProgram,
    "broken-commit": BrokenCommitProgram,
}


def resolve_variant(name: str) -> type[CommitProgram]:
    """Look up a variant class; raises on unknown names."""
    try:
        return PROGRAM_VARIANTS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown program variant {name!r}; choose from "
            f"{sorted(PROGRAM_VARIANTS)}"
        ) from None


def make_programs(
    variant: str, n: int, t: int, votes: list[int] | tuple[int, ...], K: int
) -> list[Program]:
    """Instantiate one program per pid for the named variant."""
    cls = resolve_variant(variant)
    return [
        cls(
            pid=pid,
            n=n,
            t=t,
            initial_vote=vote,
            K=K,
            allow_sub_resilience=True,
        )
        for pid, vote in enumerate(votes)
    ]
