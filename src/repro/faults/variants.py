"""Protocol variants a campaign can host, including intentionally broken ones.

The fault campaign's job is to *detect* safety violations, but a
detector is only trustworthy if it demonstrably fires on a buggy
protocol.  This module keeps a small registry of program variants a
:class:`~repro.faults.campaign.CampaignConfig` can select by name:

* ``commit`` — the paper's Protocol 2 (:class:`CommitProgram`), the
  default and the thing the repo exists to validate;
* ``broken-commit`` — :class:`BrokenCommitProgram`, a deliberately
  faulty variant carrying the classic two-phase-commit mistake: on a
  vote-collection timeout it *unilaterally decides its own vote* instead
  of feeding 0 into the agreement subprotocol.  Under any schedule that
  makes one commit-voting processor time out while another learns of an
  abort vote (a single crash or partition window suffices), the cluster
  splits into COMMIT and ABORT — violating agreement and abort validity;
* ``twopc`` / ``twopc-block`` / ``threepc`` — the in-repo baseline
  protocols (:mod:`repro.protocols`), adapted to the variant-builder
  signature so campaigns, the model checker, and the degradation atlas
  (:mod:`repro.models.atlas`) can sweep them under any timing model.
  ``twopc`` presumes abort on a decision timeout (safe against blocking,
  unsafe against late decisions); ``twopc-block`` waits forever — the
  textbook blocking behaviour the paper's Protocol 2 exists to avoid;
  ``threepc`` is the non-blocking-under-synchrony baseline.

The broken variant is the end-to-end fixture for the counterexample
pipeline (:mod:`repro.counterexample`): campaigns against it must find a
violation, the shrinker must reduce the violating FaultPlan to one or
two entries, and replay must reproduce the violating run byte-for-byte.
Variant names travel inside campaign configs and replay artifacts, so
entries must stay picklable module-level classes with stable names.
"""

from __future__ import annotations

from typing import Any

from repro.core.agreement import AgreementStats, agreement_script
from repro.core.coins import CoinList, flip_coin_list
from repro.core.commit import CommitProgram, _is_go, _is_vote
from repro.core.messages import GoMessage, VoteMessage
from repro.errors import ConfigurationError
from repro.sim.process import Program
from repro.sim.waits import MessageCount, WithTimeout
from repro.types import Decision


class BrokenCommitProgram(CommitProgram):
    """Protocol 2 with a planted decide-own-vote-on-timeout bug.

    Lines 1-11 match :class:`CommitProgram`.  The bug replaces lines
    12-15: when the vote collection at line 8 times out, the processor
    skips Protocol 1 entirely and decides whatever its own vote happens
    to be.  A processor still holding vote 1 then decides COMMIT even
    though some other processor may have voted (or flipped to) 0 and
    decided ABORT — exactly the disagreement the agreement subprotocol
    exists to prevent.
    """

    def run(self):
        vote = int(self.initial_vote)
        if self.is_coordinator:
            go = GoMessage(
                coins=tuple(flip_coin_list(self.flip, self.coin_count).bits)
            )
            self.broadcast(go)
        else:
            yield MessageCount(_is_go, 1, key=("go",))
            go = self.board.by_key(("go",))[0].payload
        coins = CoinList.from_bits(go.coins)
        self.set_piggyback(lambda recipient: (go,))
        self.broadcast(go)

        go_wait = WithTimeout(
            MessageCount(_is_go, self.n, key=("go",)), ticks=2 * self.K
        )
        yield go_wait
        if go_wait.timed_out(self.board, self.clock):
            vote = 0
        self.broadcast(VoteMessage(vote=vote))

        vote_wait = WithTimeout(
            MessageCount(_is_vote, self.n, key=("vote",)), ticks=2 * self.K
        )
        yield vote_wait
        if vote_wait.timed_out(self.board, self.clock):
            # THE BUG: a timed-out processor decides unilaterally instead
            # of entering Protocol 1 with input 0.
            decision = Decision.from_bit(vote)
            self.decide(int(decision))
            return decision
        commit_voters = {
            entry.sender
            for entry in self.board.by_key(("vote",))
            if entry.payload.vote == 1
        }
        x_input = 1 if len(commit_voters) >= self.n else 0
        value = yield from agreement_script(
            self,
            t=self.t,
            initial_value=x_input,
            coins=coins,
            halting=self.halting,
            record_decision=False,
            stats=AgreementStats(),
            allow_sub_resilience=self.allow_sub_resilience,
        )
        decision = Decision.from_bit(value)
        self.decide(int(decision))
        return decision


def twopc_program(
    pid: int,
    n: int,
    t: int,
    initial_vote: int,
    K: int,
    allow_sub_resilience: bool = True,
) -> Program:
    """2PC with the presume-abort timeout (``t`` is accepted, unused)."""
    from repro.protocols.twopc import TimeoutAction, TwoPCProgram

    return TwoPCProgram(
        pid=pid,
        n=n,
        initial_vote=initial_vote,
        K=K,
        timeout_action=TimeoutAction.PRESUME_ABORT,
    )


def twopc_blocking_program(
    pid: int,
    n: int,
    t: int,
    initial_vote: int,
    K: int,
    allow_sub_resilience: bool = True,
) -> Program:
    """2PC with the blocking timeout — waits forever on a lost decision."""
    from repro.protocols.twopc import TimeoutAction, TwoPCProgram

    return TwoPCProgram(
        pid=pid,
        n=n,
        initial_vote=initial_vote,
        K=K,
        timeout_action=TimeoutAction.BLOCK,
    )


def threepc_program(
    pid: int,
    n: int,
    t: int,
    initial_vote: int,
    K: int,
    allow_sub_resilience: bool = True,
) -> Program:
    """Three-phase commit (``t`` is accepted, unused)."""
    from repro.protocols.threepc import ThreePCProgram

    return ThreePCProgram(pid=pid, n=n, initial_vote=initial_vote, K=K)


#: Registered program variants, by the name campaign configs carry.
#: Values are *builders*: callables accepting the uniform keyword
#: signature ``(pid, n, t, initial_vote, K, allow_sub_resilience)`` —
#: the commit-family classes take it natively, the baseline protocols
#: through the adapter functions above.  Builders must stay picklable
#: module-level objects with stable names (they travel inside campaign
#: configs and replay artifacts).
PROGRAM_VARIANTS: dict[str, Any] = {
    "commit": CommitProgram,
    "broken-commit": BrokenCommitProgram,
    "twopc": twopc_program,
    "twopc-block": twopc_blocking_program,
    "threepc": threepc_program,
}


def resolve_variant(name: str) -> Any:
    """Look up a variant builder; raises on unknown names."""
    try:
        return PROGRAM_VARIANTS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown program variant {name!r}; choose from "
            f"{sorted(PROGRAM_VARIANTS)}"
        ) from None


def make_programs(
    variant: str, n: int, t: int, votes: list[int] | tuple[int, ...], K: int
) -> list[Program]:
    """Instantiate one program per pid for the named variant."""
    build = resolve_variant(variant)
    return [
        build(
            pid=pid,
            n=n,
            t=t,
            initial_vote=vote,
            K=K,
            allow_sub_resilience=True,
        )
        for pid, vote in enumerate(votes)
    ]
