"""Compile a FaultPlan to asyncio-runtime transport hooks.

The runtime realisation of a plan has three parts:

* a :class:`PlanLinkFaults` policy the transport consults per
  transmission attempt — drops and duplicates by the plan's per-link
  probabilities, holds (extra delay) for reorder, severs links inside
  partition windows (cycle windows scale to seconds by
  ``tick_interval``);
* a list of :class:`~repro.runtime.cluster.CrashInjection`, one per
  planned crash, at ``cycle * tick_interval`` seconds;
* a :class:`~repro.runtime.transport.Reliability` config sized to the
  tick so retransmission recovers dropped envelopes within a few ticks
  — the transport-level machinery that keeps lossy runs live.

Unlike the simulator compile (where a drop *is* a late delivery), here
a dropped copy is really lost and liveness comes from the hardened
transport: sequence numbers, receiver dedup, and ack-driven
retransmission with exponential backoff.  Cross-track agreement of the
two compilations is exactly what the campaign layer checks.
"""

from __future__ import annotations

import random

from repro.errors import ConfigurationError
from repro.faults.plan import FaultPlan
from repro.runtime.cluster import Cluster, CrashInjection
from repro.runtime.transport import LinkFaultPolicy, LinkVerdict, Reliability
from repro.sim.process import Program


class PlanLinkFaults(LinkFaultPolicy):
    """Transport link policy realising a FaultPlan in wall-clock time.

    Args:
        plan: the fault schedule.
        tick_interval: seconds per cycle (the node step granularity);
            scales partition windows and reorder holds.
        K: the protocol's on-time bound (scales reorder holds).
    """

    def __init__(
        self, plan: FaultPlan, tick_interval: float = 0.002, K: int = 4
    ) -> None:
        if tick_interval <= 0:
            raise ValueError(
                f"tick_interval must be positive, got {tick_interval}"
            )
        self.plan = plan
        self.tick_interval = tick_interval
        self.K = K

    def verdict(
        self, sender: int, recipient: int, now: float, rng: random.Random
    ) -> LinkVerdict:
        cycle = now / self.tick_interval
        if self.plan.severed(sender, recipient, cycle):
            return LinkVerdict(drop=True)
        loss = self.plan.loss_for(sender, recipient)
        extra_delay = 0.0
        delay = self.plan.delay_for(sender, recipient)
        if delay is not None:
            extra_delay += self.tick_interval * rng.uniform(
                delay.min_cycles, delay.max_cycles
            )
        if loss.reorder and rng.random() < loss.reorder:
            extra_delay += self.tick_interval * rng.uniform(1, self.K)
        drop = bool(loss.drop) and rng.random() < loss.drop
        duplicates = 1 if loss.duplicate and rng.random() < loss.duplicate else 0
        return LinkVerdict(
            drop=drop, duplicates=duplicates, extra_delay=extra_delay
        )


def plan_reliability(tick_interval: float = 0.002) -> Reliability:
    """Retransmission config sized to the node tick.

    The first retry lands a few ticks after a silent send — late enough
    to not double clean traffic (deliveries take ~a tick), early enough
    that a drop costs a handful of ticks, comfortably under the
    protocol's ``2K``-tick timeouts.
    """
    return Reliability(
        base_timeout=6 * tick_interval,
        max_backoff=64 * tick_interval,
        jitter=0.4,
        max_retries=None,
    )


def compile_to_runtime(
    plan: FaultPlan, tick_interval: float = 0.002, K: int = 4
) -> tuple[PlanLinkFaults, list[CrashInjection], Reliability]:
    """Compile ``plan`` into the asyncio cluster's fault knobs.

    Raises:
        ConfigurationError: when the plan schedules crash *recoveries* —
            runtime nodes are fail-stop (no durable state to replay); a
            plan with ``recover_cycle`` entries belongs to the service
            track (:mod:`repro.service`).
    """
    if plan.has_recoveries:
        raise ConfigurationError(
            "plan schedules crash recoveries; the runtime track is "
            "fail-stop only — run it on the service track instead"
        )
    faults = PlanLinkFaults(plan, tick_interval=tick_interval, K=K)
    crashes = [
        CrashInjection(pid=c.pid, after_seconds=c.cycle * tick_interval)
        for c in plan.crashes
    ]
    return faults, crashes, plan_reliability(tick_interval)


def cluster_from_plan(
    programs: list[Program],
    plan: FaultPlan,
    tick_interval: float = 0.002,
    K: int = 4,
    delay_model=None,
) -> Cluster:
    """Build a cluster wired with ``plan``'s compiled runtime faults."""
    faults, crashes, reliability = compile_to_runtime(
        plan, tick_interval=tick_interval, K=K
    )
    return Cluster(
        programs=programs,
        delay_model=delay_model,
        tick_interval=tick_interval,
        seed=plan.seed,
        crashes=crashes,
        link_faults=faults,
        reliability=reliability,
    )
