"""Unified fault injection: one declarative plan, two execution tracks.

This package closes the gap between *what faults a trial suffers* and
*where the trial runs*.  A :class:`FaultPlan` declares a schedule —
crash-at-cycle, partition windows, per-link loss/duplication/reorder
probabilities, delay overrides — in track-neutral cycle time, and two
compilers realise it:

* :func:`compile_to_adversary` → a
  :class:`~repro.adversary.base.CycleAdversary` for the deterministic
  simulator;
* :func:`compile_to_runtime` → transport link hooks, crash injections,
  and a retransmission config for the asyncio runtime.

The :class:`SafetyMonitor` machine-checks the paper's invariants
(agreement, validity, nonblocking-within-budget) on every trial, and
:func:`run_campaign` sweeps seeded randomized plans across both tracks
into one reproducible, machine-readable report.
"""

from repro.faults.campaign import (
    CAMPAIGN_SCHEMA,
    CampaignConfig,
    TrialCase,
    case_from_config,
    execute_trial_case,
    render_campaign_summary,
    run_campaign,
    run_campaign_trial,
    write_campaign_report,
)
from repro.faults.plan import (
    CrashFault,
    FaultPlan,
    LinkDelay,
    LinkLoss,
    PartitionWindow,
)
from repro.faults.runtime_compile import (
    PlanLinkFaults,
    cluster_from_plan,
    compile_to_runtime,
    plan_reliability,
)
from repro.faults.safety import (
    LIVENESS_PROPERTIES,
    SAFETY_PROPERTIES,
    SafetyMonitor,
    SafetyReport,
    Violation,
)
from repro.faults.sim_compile import FaultPlanAdversary, compile_to_adversary
from repro.faults.variants import (
    PROGRAM_VARIANTS,
    BrokenCommitProgram,
    make_programs,
    resolve_variant,
)

__all__ = [
    "CAMPAIGN_SCHEMA",
    "BrokenCommitProgram",
    "CampaignConfig",
    "CrashFault",
    "FaultPlan",
    "FaultPlanAdversary",
    "LIVENESS_PROPERTIES",
    "LinkDelay",
    "LinkLoss",
    "PROGRAM_VARIANTS",
    "PartitionWindow",
    "PlanLinkFaults",
    "SAFETY_PROPERTIES",
    "SafetyMonitor",
    "SafetyReport",
    "TrialCase",
    "Violation",
    "case_from_config",
    "cluster_from_plan",
    "compile_to_adversary",
    "compile_to_runtime",
    "execute_trial_case",
    "make_programs",
    "plan_reliability",
    "render_campaign_summary",
    "resolve_variant",
    "run_campaign",
    "run_campaign_trial",
    "write_campaign_report",
]
