"""Fault-injection campaigns: sweep seeded FaultPlans across both tracks.

A campaign is a batch of independent trials.  Trial ``i`` derives one
randomized :class:`~repro.faults.plan.FaultPlan` and one vote vector
from ``base_seed + i``, executes the plan on the deterministic
simulator and/or the asyncio runtime (on the virtual-clock loop, so
trials are fast and reproducible), and machine-checks the paper's
invariants with the :class:`~repro.faults.safety.SafetyMonitor`.

Trials fan out through the :mod:`repro.engine` executor, inheriting its
guarantee that results are byte-identical to the serial loop at any
worker count; combined with the virtual clock on the runtime track the
whole campaign *report* is reproducible from ``(config, base_seed)``
alone — rerun it anywhere and diff the JSON.

The report (``repro.fault-campaign v1``) embeds every plan, so any
violation ever found is replayable: feed the plan dict back through
:meth:`FaultPlan.from_dict` and either compiler.
"""

from __future__ import annotations

import dataclasses
import json
import random
from dataclasses import dataclass
from functools import partial
from pathlib import Path
from typing import Any

from repro.adversary.base import CycleAdversary, DeliverAll
from repro.adversary.scripted import ScriptedAdversary
from repro.engine.executor import run_trials
from repro.engine.seeds import (
    CAMPAIGN_SHAPE_STREAM,
    CAMPAIGN_VOTE_STREAM,
    MODEL_TIMING_STREAM,
    derive,
)
from repro.errors import AnalysisError, ConfigurationError
from repro.faults.plan import FaultPlan
from repro.faults.runtime_compile import cluster_from_plan
from repro.faults.safety import SafetyMonitor
from repro.faults.sim_compile import compile_to_adversary
from repro.faults.variants import make_programs, resolve_variant
from repro.models import DEFAULT_MODEL, resolve_model
from repro.runtime.cluster import NONTERMINATED, TERMINATED
from repro.runtime.virtualtime import run_virtual
from repro.sim.decisions import (
    CrashDecision,
    Decision,
    decision_from_dict,
    decision_to_dict,
)
from repro.sim.coreselect import simulation_class
from repro.sim.scheduler import Simulation
from repro.telemetry import registry as telemetry
from repro.telemetry.log import get_logger
from repro.trace import spans as trace_spans

_log = get_logger("faults.campaign")

#: Schema tag of the campaign report document.
CAMPAIGN_SCHEMA = "repro.fault-campaign v1"

#: The executable tracks a campaign can sweep.  ``sim`` and ``runtime``
#: execute the fail-stop model; ``service`` executes the crash-recovery
#: model (durable WALs, kill/restart, replay — :mod:`repro.service`) and
#: is the only track that accepts plans with ``recover_cycle`` entries.
TRACKS = ("sim", "runtime", "service")


@dataclass(frozen=True)
class CampaignConfig:
    """Configuration of one fault-injection campaign.

    Attributes:
        n: processors per trial.
        t: fault budget; ``None`` means the optimum ``(n - 1) // 2``.
        plans: number of randomized FaultPlans to sweep.
        base_seed: seed of plan 0; plan ``i`` uses ``base_seed + i``.
        tracks: which tracks each plan runs on.
        K: the protocols' on-time bound.
        max_steps: simulator horizon per trial.
        deadline: runtime-track budget in *virtual* seconds per trial.
        tick_interval: runtime node step granularity.
        over_budget_fraction: fraction of trials drawing a plan with
            more than ``t`` crashes (the graceful-degradation regime).
        all_commit_fraction: fraction of trials voting all-COMMIT; the
            rest draw random vote vectors.
        program: protocol variant to run, from
            :data:`repro.faults.variants.PROGRAM_VARIANTS` ("commit" is
            the paper's Protocol 2; "broken-commit" is the planted-bug
            fixture the counterexample pipeline validates against).
        recovery_probability: chance that each drawn crash is a
            kill/recover pair instead of a fail-stop crash.  Nonzero
            values require ``tracks == ("service",)`` — the fail-stop
            tracks cannot execute recoveries.
        txns: transactions per trial.  ``1`` is the classic
            one-commit campaign; larger values drive an open-loop
            multi-transaction workload through the service track's
            instance multiplexer and check safety per transaction.
            Requires ``tracks == ("service",)``.
        shards: commit groups per trial (multi-transaction mode);
            the cluster spans ``n * shards`` processors, ``n`` per
            group, and transaction ``i`` lands on shard ``i % shards``.
        commit_bias: Bernoulli parameter of the derived per-transaction
            votes in multi-transaction mode (the drawn vote vector only
            covers the default transaction).
        model: timing model each trial runs under, from the
            :mod:`repro.models` zoo.  ``"realistic"`` (the paper's
            model) compiles plans exactly as before; other models keep
            the plan's crashes and partitions but re-time its links.
    """

    n: int = 5
    t: int | None = None
    plans: int = 100
    base_seed: int = 0
    tracks: tuple[str, ...] = ("sim", "runtime")
    K: int = 4
    max_steps: int = 20_000
    deadline: float = 8.0
    tick_interval: float = 0.002
    over_budget_fraction: float = 0.25
    all_commit_fraction: float = 0.6
    program: str = "commit"
    recovery_probability: float = 0.0
    txns: int = 1
    shards: int = 1
    commit_bias: float = 1.0
    model: str = DEFAULT_MODEL

    def __post_init__(self) -> None:
        if self.n < 2:
            raise ConfigurationError(f"campaigns need n >= 2, got {self.n}")
        if self.plans <= 0:
            raise ConfigurationError(
                f"need at least one plan, got {self.plans}"
            )
        if not self.tracks:
            raise ConfigurationError("need at least one track")
        for track in self.tracks:
            if track not in TRACKS:
                raise ConfigurationError(
                    f"unknown track {track!r}; choose from {TRACKS}"
                )
        if not 0.0 <= self.over_budget_fraction <= 1.0:
            raise ConfigurationError(
                f"over_budget_fraction out of [0, 1]: "
                f"{self.over_budget_fraction}"
            )
        if not 0.0 <= self.all_commit_fraction <= 1.0:
            raise ConfigurationError(
                f"all_commit_fraction out of [0, 1]: "
                f"{self.all_commit_fraction}"
            )
        if not 0.0 <= self.recovery_probability <= 1.0:
            raise ConfigurationError(
                f"recovery_probability out of [0, 1]: "
                f"{self.recovery_probability}"
            )
        if self.recovery_probability > 0.0 and self.tracks != ("service",):
            raise ConfigurationError(
                "recovery_probability > 0 draws kill/recover plans, which "
                "only the service track can execute; use "
                f"tracks=('service',), got {self.tracks!r}"
            )
        if self.txns < 1 or self.shards < 1:
            raise ConfigurationError(
                f"txns and shards must be >= 1, got txns={self.txns}, "
                f"shards={self.shards}"
            )
        if not 0.0 <= self.commit_bias <= 1.0:
            raise ConfigurationError(
                f"commit_bias out of [0, 1]: {self.commit_bias}"
            )
        if (self.txns > 1 or self.shards > 1) and self.tracks != (
            "service",
        ):
            raise ConfigurationError(
                "multi-transaction campaigns (txns > 1 or shards > 1) "
                "run the instance multiplexer, which only the service "
                f"track hosts; use tracks=('service',), got {self.tracks!r}"
            )
        resolve_variant(self.program)
        timing = resolve_model(self.model)
        if self.model != DEFAULT_MODEL:
            unsupported = [
                track for track in self.tracks if track not in timing.tracks
            ]
            if unsupported:
                raise ConfigurationError(
                    f"timing model {self.model!r} has no analogue on "
                    f"tracks {unsupported}; it supports {timing.tracks}"
                )

    @property
    def resolved_t(self) -> int:
        return self.t if self.t is not None else (self.n - 1) // 2

    def to_dict(self) -> dict[str, Any]:
        doc = {
            "n": self.n,
            "t": self.resolved_t,
            "plans": self.plans,
            "base_seed": self.base_seed,
            "tracks": list(self.tracks),
            "K": self.K,
            "max_steps": self.max_steps,
            "deadline": self.deadline,
            "tick_interval": self.tick_interval,
            "over_budget_fraction": self.over_budget_fraction,
            "all_commit_fraction": self.all_commit_fraction,
            "program": self.program,
        }
        # Emitted only when set so pre-service reports stay byte-identical.
        if self.recovery_probability > 0.0:
            doc["recovery_probability"] = self.recovery_probability
        if self.txns > 1 or self.shards > 1:
            doc["txns"] = self.txns
            doc["shards"] = self.shards
            doc["commit_bias"] = self.commit_bias
        if self.model != DEFAULT_MODEL:
            doc["model"] = self.model
        return doc


@dataclass(frozen=True)
class TrialCase:
    """One fully-specified trial: everything needed to re-execute it.

    A campaign *draws* cases from ``(config, seed)``; the counterexample
    pipeline (:mod:`repro.counterexample`) *replays* and *shrinks* them.
    Both paths meet here: a case serializes losslessly via
    :meth:`to_dict`/:meth:`from_dict`, and :func:`execute_trial_case`
    is the single authority on how a case runs on each track — so a
    replayed case exercises exactly the code a campaign trial did.

    Attributes mirror the campaign knobs they are drawn from; ``votes``
    and ``plan`` are pinned values rather than distributions.  A case
    carrying a ``schedule`` (emitted by the model checker in
    :mod:`repro.mc`) pins the *exact* decision sequence of the sim
    track instead of a FaultPlan distribution: the scripted prefix is
    replayed verbatim, then a fair deliver-all fallback completes the
    run so the final state is well-defined.  Scheduled cases are
    sim-only — the decision sequence has no runtime-track analogue.
    """

    n: int
    t: int
    K: int
    votes: tuple[int, ...]
    plan: FaultPlan
    seed: int
    tracks: tuple[str, ...] = ("sim", "runtime")
    max_steps: int = 20_000
    deadline: float = 8.0
    tick_interval: float = 0.002
    program: str = "commit"
    schedule: tuple[Decision, ...] | None = None
    txns: int = 1
    shards: int = 1
    commit_bias: float = 1.0
    model: str = DEFAULT_MODEL

    @property
    def multi_txn(self) -> bool:
        """Whether this case drives the multi-transaction service."""
        return self.txns > 1 or self.shards > 1

    def __post_init__(self) -> None:
        if len(self.votes) != self.n:
            raise ConfigurationError(
                f"need one vote per processor: n={self.n}, "
                f"got {len(self.votes)} votes"
            )
        if self.multi_txn:
            if self.tracks != ("service",):
                raise ConfigurationError(
                    "multi-transaction cases are service-only, got "
                    f"tracks {self.tracks!r}"
                )
            if self.plan.n != self.n * self.shards:
                raise ConfigurationError(
                    f"a {self.shards}-shard case needs a plan spanning "
                    f"{self.n * self.shards} processors, got "
                    f"plan.n={self.plan.n}"
                )
        for track in self.tracks:
            if track not in TRACKS:
                raise ConfigurationError(
                    f"unknown track {track!r}; choose from {TRACKS}"
                )
        if self.schedule is not None and self.tracks != ("sim",):
            raise ConfigurationError(
                "scheduled cases are sim-only: a scripted decision "
                f"sequence cannot drive tracks {self.tracks!r}"
            )
        if self.plan.has_recoveries and self.tracks != ("service",):
            raise ConfigurationError(
                "the plan schedules crash recoveries, which only the "
                "crash-recovery service track can execute; use "
                f"tracks=('service',), got {self.tracks!r}"
            )
        resolve_variant(self.program)
        timing = resolve_model(self.model)
        if self.model != DEFAULT_MODEL:
            if self.schedule is not None:
                raise ConfigurationError(
                    "scheduled cases pin the exact decision sequence; a "
                    "timing model cannot re-time them — replay them "
                    "under the realistic model"
                )
            unsupported = [
                track for track in self.tracks if track not in timing.tracks
            ]
            if unsupported:
                raise ConfigurationError(
                    f"timing model {self.model!r} has no analogue on "
                    f"tracks {unsupported}; it supports {timing.tracks}"
                )

    @property
    def scheduled_crashes(self) -> int:
        """Crash decisions in the scripted schedule (0 if unscheduled)."""
        if self.schedule is None:
            return 0
        return sum(
            1 for d in self.schedule if isinstance(d, CrashDecision)
        )

    @property
    def within_budget(self) -> bool:
        if self.schedule is not None:
            return self.scheduled_crashes <= self.t
        return self.plan.within_budget(self.t)

    @property
    def expect_termination(self) -> bool:
        if self.schedule is not None:
            # A scripted prefix may starve or withhold arbitrarily; no
            # termination obligation can be read off it.
            return False
        if not resolve_model(self.model).preserves_eventual_delivery:
            # Models that drop messages permanently (round-closed) void
            # the plan's termination analysis: nontermination there is
            # degradation data, not a liveness violation.
            return False
        if self.multi_txn:
            # The plan's termination analysis reasons about pid 0 as
            # *the* coordinator; a sharded cluster has one coordinator
            # per group, so only plans where every crash recovers (no
            # group can lose its coordinator for good) carry the
            # obligation over.
            return (
                self.plan.guarantees_termination(self.t)
                and self.plan.permanent_crash_count == 0
            )
        return self.plan.guarantees_termination(self.t)

    def to_dict(self) -> dict[str, Any]:
        doc = {
            "n": self.n,
            "t": self.t,
            "K": self.K,
            "votes": list(self.votes),
            "plan": self.plan.to_dict(),
            "seed": self.seed,
            "tracks": list(self.tracks),
            "max_steps": self.max_steps,
            "deadline": self.deadline,
            "tick_interval": self.tick_interval,
            "program": self.program,
        }
        if self.schedule is not None:
            doc["schedule"] = [decision_to_dict(d) for d in self.schedule]
        if self.multi_txn:
            doc["txns"] = self.txns
            doc["shards"] = self.shards
            doc["commit_bias"] = self.commit_bias
        if self.model != DEFAULT_MODEL:
            doc["model"] = self.model
        return doc

    @classmethod
    def from_dict(cls, doc: dict[str, Any]) -> "TrialCase":
        try:
            schedule = doc.get("schedule")
            return cls(
                n=doc["n"],
                t=doc["t"],
                K=doc["K"],
                votes=tuple(doc["votes"]),
                plan=FaultPlan.from_dict(doc["plan"]),
                seed=doc["seed"],
                tracks=tuple(doc["tracks"]),
                max_steps=doc["max_steps"],
                deadline=doc["deadline"],
                tick_interval=doc["tick_interval"],
                program=doc.get("program", "commit"),
                schedule=(
                    tuple(decision_from_dict(d) for d in schedule)
                    if schedule is not None
                    else None
                ),
                txns=doc.get("txns", 1),
                shards=doc.get("shards", 1),
                commit_bias=doc.get("commit_bias", 1.0),
                model=doc.get("model", DEFAULT_MODEL),
            )
        except (KeyError, TypeError) as exc:
            raise AnalysisError(f"malformed trial case: {doc!r}") from exc

    def replace(self, **changes: Any) -> "TrialCase":
        """A copy with fields replaced (shrink operators use this)."""
        return dataclasses.replace(self, **changes)


def _draw_votes(config: CampaignConfig, seed: int) -> list[int]:
    rng = random.Random(derive(seed, CAMPAIGN_VOTE_STREAM))
    if rng.random() < config.all_commit_fraction:
        return [1] * config.n
    return [rng.randint(0, 1) for _ in range(config.n)]


def _draw_plan(config: CampaignConfig, seed: int) -> FaultPlan:
    shape = random.Random(derive(seed, CAMPAIGN_SHAPE_STREAM))
    over_budget = (
        config.resolved_t < config.n - 1
        and shape.random() < config.over_budget_fraction
    )
    # Multi-transaction trials span shards * n processors; keeping the
    # crash budget at the per-group t means within-budget plans stay
    # within every group's budget no matter where the crashes land.
    return FaultPlan.random(
        n=config.n * config.shards,
        t=config.resolved_t,
        seed=seed,
        K=config.K,
        over_budget=over_budget,
        recovery_probability=config.recovery_probability,
    )


def case_from_config(config: CampaignConfig, seed: int) -> TrialCase:
    """Draw trial ``seed``'s fully-pinned case from a campaign config."""
    return TrialCase(
        n=config.n,
        t=config.resolved_t,
        K=config.K,
        votes=tuple(_draw_votes(config, seed)),
        plan=_draw_plan(config, seed),
        seed=seed,
        tracks=config.tracks,
        max_steps=config.max_steps,
        deadline=config.deadline,
        tick_interval=config.tick_interval,
        program=config.program,
        txns=config.txns,
        shards=config.shards,
        commit_bias=config.commit_bias,
        model=config.model,
    )


def _run_sim_track(case: TrialCase) -> dict[str, Any]:
    if case.schedule is not None:
        # The scripted prefix is the counterexample; the deliver-all
        # fallback (which never consults cycle bookkeeping) completes
        # the run deterministically once the script runs out.
        adversary = ScriptedAdversary(
            case.schedule,
            then=CycleAdversary(seed=case.seed, delivery=DeliverAll()),
        )
    elif case.model == DEFAULT_MODEL:
        adversary = compile_to_adversary(case.plan, K=case.K)
    else:
        # Non-realistic models own their delivery randomness; seeding it
        # from MODEL_TIMING_STREAM keeps the draw strictly after every
        # historical per-trial stream.
        adversary = resolve_model(case.model).compile_plan(
            case.plan,
            K=case.K,
            seed=derive(case.seed, MODEL_TIMING_STREAM),
        )
    simulation = simulation_class()(
        programs=make_programs(
            case.program, case.n, case.t, case.votes, case.K
        ),
        adversary=adversary,
        K=case.K,
        t=case.t,
        seed=case.seed,
        max_steps=case.max_steps,
    )
    result = simulation.run()
    run = result.run
    decisions = [run.decisions[pid] for pid in range(case.n)]
    return {
        "outcome": TERMINATED if result.terminated else NONTERMINATED,
        "decisions": decisions,
        "crashed": sorted(run.faulty()),
        "events": run.event_count,
    }


def _run_runtime_track(case: TrialCase) -> dict[str, Any]:
    plan = case.plan
    if case.model != DEFAULT_MODEL:
        plan = resolve_model(case.model).runtime_plan(plan, K=case.K)
    cluster = cluster_from_plan(
        programs=make_programs(
            case.program, case.n, case.t, case.votes, case.K
        ),
        plan=plan,
        tick_interval=case.tick_interval,
        K=case.K,
    )
    result = run_virtual(cluster.run(deadline=case.deadline))
    decisions = [result.decisions()[pid] for pid in range(case.n)]
    stats = result.transport_stats
    return {
        "outcome": result.outcome,
        "decisions": decisions,
        "crashed": sorted(result.crashed_pids()),
        "transport": {
            "sent": stats.get("sent", 0),
            "retransmitted": stats.get("retransmitted", 0),
            "duplicated": stats.get("duplicated", 0),
            "duplicates_dropped": stats.get("duplicates_dropped", 0),
            "dropped_by_faults": stats.get("dropped_by_faults", 0),
        },
    }


def _run_service_multi_track(case: TrialCase) -> dict[str, Any]:
    """Execute a multi-transaction case and check safety per txn.

    One trial = one sharded cluster (``shards`` commit groups of ``n``)
    under one FaultPlan, with an open-loop workload of ``case.txns``
    transactions.  Agreement/validity are per-transaction properties of
    that transaction's group, so this track builds its own per-txn
    :class:`~repro.faults.safety.SafetyMonitor` reports (against the
    derived per-transaction votes) and merges them — the generic
    whole-cluster check in :func:`execute_trial_case` does not apply.
    """
    from repro.service.cluster import (
        ServiceCluster,
        TxnWorkload,
        shard_configs,
    )
    from repro.service.txn import ShardMap, txn_vote

    # Submit everything inside the first quarter of the budget so a
    # kill/recover tail still fits before the deadline.
    window = max(case.tick_interval * 4, min(1.0, case.deadline / 4))
    rate = case.txns / window
    shard_map = ShardMap(shards=case.shards, group_size=case.n)
    configs = shard_configs(
        case.shards,
        case.n,
        case.t,
        case.K,
        case.seed,
        variant=case.program,
        commit_bias=case.commit_bias,
    )
    cluster = ServiceCluster(
        configs,
        case.plan,
        seed=case.seed,
        tick_interval=case.tick_interval,
        snapshot_every=32,
        K=case.K,
        workload=TxnWorkload.open_loop(case.txns, rate, case.tick_interval),
        shard_map=shard_map,
    )
    result = run_virtual(cluster.run(deadline=case.deadline))
    txns_by_pid = {
        snapshot.pid: dict(snapshot.txns or {}) for snapshot in result.nodes
    }
    checked: set[str] = set()
    violations: list[dict[str, Any]] = []
    txn_decisions: dict[int, int | None] = {}
    for txn_id in result.submitted_txns:
        members = list(shard_map.members(shard_map.group_of(txn_id)))
        monitor = SafetyMonitor(
            n=case.n,
            t=case.t,
            votes=[txn_vote(configs[pid], txn_id) for pid in members],
        )
        decisions = {
            local: txns_by_pid.get(pid, {}).get(txn_id)
            for local, pid in enumerate(members)
        }
        crashed = {
            local
            for local, pid in enumerate(members)
            if pid in result.permanently_crashed
        }
        obligated = [
            bit for local, bit in decisions.items() if local not in crashed
        ]
        report = monitor.check(
            decisions=decisions,
            crashed=crashed,
            terminated=bool(obligated)
            and all(bit is not None for bit in obligated),
            expect_termination=case.expect_termination,
            benign=False,
        )
        checked.update(report.checked)
        for violation in report.violations:
            doc = violation.to_dict()
            doc["txn"] = txn_id
            violations.append(doc)
        agreed = {bit for bit in decisions.values() if bit is not None}
        txn_decisions[txn_id] = agreed.pop() if len(agreed) == 1 else None
    return {
        "outcome": result.outcome,
        "decisions": [
            txn_decisions.get(txn_id) for txn_id in result.submitted_txns
        ],
        "crashed": sorted(result.permanently_crashed),
        "recoveries": result.recoveries,
        "transfer_decisions": sum(
            1 for s in result.nodes if s.decision_origin == "transfer"
        ),
        "bus": dict(result.bus_stats),
        "txns": {
            "submitted": len(result.submitted_txns),
            "decided": sum(
                1 for bit in txn_decisions.values() if bit is not None
            ),
            "undecided": {
                str(pid): txn_ids
                for pid, txn_ids in sorted(result.undecided.items())
            },
        },
        "safety": {
            "checked": sorted(checked),
            "violations": violations,
            "safety_ok": not any(
                v["property"] != "nonblocking" for v in violations
            ),
            "liveness_ok": not any(
                v["property"] == "nonblocking" for v in violations
            ),
        },
    }


def _run_service_track(case: TrialCase) -> dict[str, Any]:
    # Imported here (not at module top) to keep the fail-stop campaign
    # path free of the service subsystem's import cost.
    if case.multi_txn:
        return _run_service_multi_track(case)
    from repro.service.cluster import ServiceCluster, node_configs

    cluster = ServiceCluster(
        node_configs(
            n=case.n,
            t=case.t,
            votes=list(case.votes),
            K=case.K,
            seed=case.seed,
            variant=case.program,
        ),
        case.plan,
        seed=case.seed,
        tick_interval=case.tick_interval,
        snapshot_every=32,
        K=case.K,
    )
    result = run_virtual(cluster.run(deadline=case.deadline))
    decision_map = result.decisions()
    return {
        "outcome": result.outcome,
        "decisions": [decision_map.get(pid) for pid in range(case.n)],
        # Only *permanent* crashes count as faulty: a killed-and-recovered
        # node rejoined, so safety accounting owes it a decision.
        "crashed": sorted(result.permanently_crashed),
        "recoveries": result.recoveries,
        "transfer_decisions": sum(
            1 for s in result.nodes if s.decision_origin == "transfer"
        ),
        "bus": dict(result.bus_stats),
    }


def execute_trial_case(case: TrialCase) -> dict[str, Any]:
    """Run one pinned case on every configured track and check safety.

    This is the single execution authority shared by campaigns, replay,
    and the shrinker: identical cases produce identical result dicts.
    """
    monitor = SafetyMonitor(n=case.n, t=case.t, votes=list(case.votes))
    tracer = trace_spans.active_recorder()
    trial_span = None
    if tracer is not None:
        # Campaign-track time axis is the trial index (= seed offset);
        # sim/runtime child spans carry their own fine-grained axes.
        trial_span = tracer.begin_span(
            f"trial-{case.seed}",
            kind="trial",
            track="campaign",
            start=case.seed,
            seed=case.seed,
            n=case.n,
            t=case.t,
            K=case.K,
            within_budget=case.within_budget,
        )
    tracks: dict[str, Any] = {}
    for track in case.tracks:
        if track == "sim":
            outcome = _run_sim_track(case)
        elif track == "service":
            outcome = _run_service_track(case)
        else:
            outcome = _run_runtime_track(case)
        if "safety" not in outcome:
            report = monitor.check(
                decisions={
                    pid: bit for pid, bit in enumerate(outcome["decisions"])
                },
                crashed=set(outcome["crashed"]),
                terminated=outcome["outcome"] == TERMINATED,
                expect_termination=case.expect_termination,
                benign=False,
            )
            outcome["safety"] = report.to_dict()
        tracks[track] = outcome
        if telemetry.enabled():
            telemetry.count(
                "campaign_trials_total",
                help="campaign trials executed, by track and outcome",
                track=track,
                outcome=outcome["outcome"],
            )
            for violation in outcome["safety"]["violations"]:
                telemetry.count(
                    "campaign_violations_total",
                    help="safety/liveness violations observed, "
                    "by track and property",
                    track=track,
                    property=violation["property"],
                )
        if tracer is not None:
            for violation in outcome["safety"]["violations"]:
                tracer.point(
                    "violation",
                    track="campaign",
                    time=case.seed,
                    span=trial_span,
                    violated_track=track,
                    property=violation["property"],
                )
    if tracer is not None and trial_span is not None:
        tracer.end_span(
            trial_span,
            case.seed + 1,
            violations=sum(
                len(data["safety"]["violations"]) for data in tracks.values()
            ),
        )
    return {
        "within_budget": case.within_budget,
        "expect_termination": case.expect_termination,
        "tracks": tracks,
    }


def run_campaign_trial(config: CampaignConfig, seed: int) -> dict[str, Any]:
    """Run one seeded plan on every configured track and check safety."""
    case = case_from_config(config, seed)
    result = execute_trial_case(case)
    if telemetry.enabled():
        # Live progress for the /metrics endpoint: counters merge
        # additively when trials fan out to worker processes, and tick
        # in real time on the serial path.
        telemetry.count(
            "campaign_plans_executed_total",
            help="campaign plans completed so far",
        )
    return {
        "seed": seed,
        "plan": case.plan.to_dict(),
        "votes": list(case.votes),
        "within_budget": result["within_budget"],
        "expect_termination": result["expect_termination"],
        "tracks": result["tracks"],
    }


def _summarize(config: CampaignConfig, records: list[dict]) -> dict[str, Any]:
    summary: dict[str, Any] = {
        "trials": len(records),
        "within_budget_trials": sum(
            1 for r in records if r["within_budget"]
        ),
        "over_budget_trials": sum(
            1 for r in records if not r["within_budget"]
        ),
        "safety_violations": 0,
        "liveness_violations": 0,
        "tracks": {},
    }
    for track in config.tracks:
        outcomes = {TERMINATED: 0, NONTERMINATED: 0}
        decisions = {"commit": 0, "abort": 0, "undecided": 0}
        safety_violations = 0
        liveness_violations = 0
        retransmitted = 0
        duplicates_dropped = 0
        dropped_by_faults = 0
        recoveries = 0
        transfer_decisions = 0
        for record in records:
            data = record["tracks"][track]
            outcomes[data["outcome"]] += 1
            bits = {b for b in data["decisions"] if b is not None}
            if not bits:
                decisions["undecided"] += 1
            elif bits == {1}:
                decisions["commit"] += 1
            elif bits == {0}:
                decisions["abort"] += 1
            else:  # pragma: no cover - an agreement violation
                decisions["undecided"] += 1
            for violation in data["safety"]["violations"]:
                if violation["property"] in ("nonblocking",):
                    liveness_violations += 1
                else:
                    safety_violations += 1
            transport = data.get("transport")
            if transport:
                retransmitted += transport["retransmitted"]
                duplicates_dropped += transport["duplicates_dropped"]
                dropped_by_faults += transport["dropped_by_faults"]
            recoveries += data.get("recoveries", 0)
            transfer_decisions += data.get("transfer_decisions", 0)
        track_summary: dict[str, Any] = {
            "outcomes": outcomes,
            "decisions": decisions,
            "safety_violations": safety_violations,
            "liveness_violations": liveness_violations,
        }
        if track == "runtime":
            track_summary["transport"] = {
                "retransmitted": retransmitted,
                "duplicates_dropped": duplicates_dropped,
                "dropped_by_faults": dropped_by_faults,
            }
        if track == "service":
            track_summary["service"] = {
                "recoveries": recoveries,
                "transfer_decisions": transfer_decisions,
            }
        summary["tracks"][track] = track_summary
        summary["safety_violations"] += safety_violations
        summary["liveness_violations"] += liveness_violations
    return summary


def run_campaign(
    config: CampaignConfig, workers: int | None = None
) -> dict[str, Any]:
    """Run a whole campaign and build its report document.

    The document is deterministic in ``(config, workers-independent)``:
    the engine reassembles trial records in seed order and the virtual
    clock removes wall-clock wobble, so serial and parallel campaigns
    serialize byte-identically.

    With span tracing active the campaign runs serially regardless of
    ``workers`` — recorders live in this process; worker-process spans
    would be lost — and wraps the sweep in one campaign span.
    """
    tracer = trace_spans.active_recorder()
    if tracer is not None and workers != 1:
        _log.info(
            "span tracing active: forcing campaign workers=1 "
            "(requested %r)",
            workers,
        )
        workers = 1
    if telemetry.enabled():
        telemetry.set_gauge(
            "campaign_plans_planned",
            config.plans,
            help="plans this campaign will execute",
        )
    campaign_span = None
    if tracer is not None:
        campaign_span = tracer.begin_span(
            "campaign",
            kind="campaign",
            track="campaign",
            start=config.base_seed,
            plans=config.plans,
            n=config.n,
            program=config.program,
        )
    records = run_trials(
        partial(run_campaign_trial, config),
        trials=config.plans,
        base_seed=config.base_seed,
        workers=workers,
    )
    summary = _summarize(config, records)
    if tracer is not None and campaign_span is not None:
        tracer.end_span(
            campaign_span,
            config.base_seed + config.plans,
            safety_violations=summary["safety_violations"],
            liveness_violations=summary["liveness_violations"],
        )
    return {
        "schema": CAMPAIGN_SCHEMA,
        "config": config.to_dict(),
        "summary": summary,
        "trials": records,
    }


def render_campaign_summary(report: dict[str, Any]) -> str:
    """A short human-readable digest of a campaign report."""
    summary = report["summary"]
    lines = [
        f"fault campaign: {summary['trials']} plans "
        f"({summary['within_budget_trials']} within budget, "
        f"{summary['over_budget_trials']} over budget)",
    ]
    for track, data in summary["tracks"].items():
        outcomes = data["outcomes"]
        decisions = data["decisions"]
        lines.append(
            f"  {track:>7}: {outcomes[TERMINATED]} terminated / "
            f"{outcomes[NONTERMINATED]} nonterminated; "
            f"decisions commit={decisions['commit']} "
            f"abort={decisions['abort']} "
            f"undecided={decisions['undecided']}; "
            f"safety violations={data['safety_violations']}, "
            f"liveness violations={data['liveness_violations']}"
        )
        transport = data.get("transport")
        if transport:
            lines.append(
                f"           transport: {transport['retransmitted']} "
                f"retransmitted, {transport['duplicates_dropped']} "
                f"duplicates dropped, {transport['dropped_by_faults']} "
                f"dropped by faults"
            )
        service = data.get("service")
        if service:
            lines.append(
                f"           service: {service['recoveries']} node "
                f"recoveries, {service['transfer_decisions']} decisions "
                f"adopted via state transfer"
            )
    verdict = (
        "SAFE" if summary["safety_violations"] == 0 else "SAFETY VIOLATED"
    )
    lines.append(
        f"  verdict: {verdict} "
        f"({summary['safety_violations']} safety / "
        f"{summary['liveness_violations']} liveness violations)"
    )
    return "\n".join(lines)


def write_campaign_report(report: dict[str, Any], path: str | Path) -> Path:
    """Serialize a report deterministically (sorted keys, one line)."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(report, sort_keys=True) + "\n")
    return target
