"""Critical-path extraction: the longest causal chain behind a decision.

A decision at processor ``p`` is causally preceded by the messages
``p`` received, which are preceded by the messages *their* senders had
received by send time, and so on.  The critical path ending at ``p``'s
decision is the longest such send→deliver chain — the sequence of
message hops that *had* to happen, one after another, for ``p`` to
decide when it did.

Attribution to the paper's time measure: each hop is labelled with the
sender's asynchronous round at send time, and
:attr:`CriticalPath.round_span` is the largest round label along the
chain.  In E2-style runs (``K = 4``, on-time delivery) this equals the
decision round exactly — the chain *explains* the round count hop by
hop.  With larger ``K`` a round can also end on the ``K``-tick timer
without any round-``(r-1)`` message arriving, in which case the
decision round exceeds the chain's round span; the difference is
surfaced honestly as :attr:`CriticalPath.timer_gap` rather than papered
over.

Two front ends share one dynamic program:

* :func:`critical_path_from_run` — straight off an in-memory
  :class:`~repro.sim.trace.Run` (times are event indices);
* :func:`critical_paths_from_records` — off an exported
  ``repro.span-trace`` document, using recorder event ids as the
  happens-before order, so it works for any track that records
  ``send``/``deliver``/``decide`` events (sim and runtime alike).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Sequence

from repro.errors import AnalysisError
from repro.sim.rounds import RoundAnalyzer
from repro.sim.trace import Run


@dataclass(frozen=True)
class Hop:
    """One send→deliver link on a critical path."""

    message: int
    sender: int
    recipient: int
    send_time: float
    receive_time: float
    round: int | None = None

    def to_dict(self) -> dict[str, Any]:
        return {
            "message": self.message,
            "sender": self.sender,
            "recipient": self.recipient,
            "send_time": self.send_time,
            "receive_time": self.receive_time,
            "round": self.round,
        }


@dataclass(frozen=True)
class CriticalPath:
    """The longest causal message chain ending at one decision."""

    pid: int
    decision: Any
    decision_time: float
    decision_round: int | None
    hops: tuple[Hop, ...]
    trial: int | None = None
    track: str = "sim"

    @property
    def length(self) -> int:
        """Chain length in message hops."""
        return len(self.hops)

    @property
    def round_span(self) -> int:
        """Largest sender round along the chain (0 for an empty chain)."""
        rounds = [h.round for h in self.hops if h.round is not None]
        return max(rounds, default=0)

    @property
    def timer_gap(self) -> int | None:
        """Rounds the decision ran ahead of the chain (K-timer driven).

        Zero in message-driven runs (E2-style, ``K = 4``): the chain
        fully accounts for the decision round.  Positive when some
        round ended on the ``K``-tick timer alone.  ``None`` when the
        decision round is unknown.
        """
        if self.decision_round is None:
            return None
        return self.decision_round - self.round_span

    def to_dict(self) -> dict[str, Any]:
        return {
            "pid": self.pid,
            "decision": self.decision,
            "decision_time": self.decision_time,
            "decision_round": self.decision_round,
            "trial": self.trial,
            "track": self.track,
            "length": self.length,
            "round_span": self.round_span,
            "timer_gap": self.timer_gap,
            "hops": [hop.to_dict() for hop in self.hops],
        }


@dataclass(frozen=True)
class _Link:
    """Internal: one delivered message, in a total happens-before order."""

    message: int
    sender: int
    recipient: int
    send_order: int
    receive_order: int
    send_time: float
    receive_time: float
    round: int | None


@dataclass(frozen=True)
class _Decision:
    pid: int
    decision: Any
    order: int
    time: float
    round: int | None


def _longest_chains(
    links: Sequence[_Link], decisions: Sequence[_Decision]
) -> dict[int, tuple[_Link, ...]]:
    """The DP core: longest chain of links ending before each decision.

    ``order`` fields give a total order consistent with causality:
    link ``a`` can precede link ``b`` when ``a`` is delivered to ``b``'s
    sender no later than ``b`` is sent.  Depth is computed in send
    order; ties break toward the smallest message id so results are
    deterministic.
    """
    depth: dict[int, int] = {}
    parent: dict[int, _Link | None] = {}
    by_link: dict[int, _Link] = {}
    delivered_to: dict[int, list[_Link]] = {}
    for link in sorted(links, key=lambda l: (l.send_order, l.message)):
        best, best_parent = 0, None
        for prior in delivered_to.get(link.sender, []):
            if prior.receive_order <= link.send_order:
                prior_depth = depth[prior.message]
                if prior_depth > best or (
                    prior_depth == best
                    and best_parent is not None
                    and prior.message < best_parent.message
                ):
                    best, best_parent = prior_depth, prior
        depth[link.message] = best + 1
        parent[link.message] = best_parent
        by_link[link.message] = link
        delivered_to.setdefault(link.recipient, []).append(link)

    chains: dict[int, tuple[_Link, ...]] = {}
    for decision in decisions:
        best_link: _Link | None = None
        for candidate in delivered_to.get(decision.pid, []):
            if candidate.receive_order > decision.order:
                continue
            if (
                best_link is None
                or depth[candidate.message] > depth[best_link.message]
                or (
                    depth[candidate.message] == depth[best_link.message]
                    and candidate.message < best_link.message
                )
            ):
                best_link = candidate
        chain: list[_Link] = []
        cursor = best_link
        while cursor is not None:
            chain.append(cursor)
            cursor = parent[cursor.message]
        chains[decision.pid] = tuple(reversed(chain))
    return chains


def _hop(link: _Link) -> Hop:
    return Hop(
        message=link.message,
        sender=link.sender,
        recipient=link.recipient,
        send_time=link.send_time,
        receive_time=link.receive_time,
        round=link.round,
    )


def critical_path_from_run(
    run: Run, rounds: RoundAnalyzer | None = None
) -> list[CriticalPath]:
    """Critical paths for every decided processor of a run.

    ``rounds`` may be passed to reuse an existing analyzer; when omitted
    one is built (and round labels are skipped entirely if analysis
    fails to converge).
    """
    if rounds is None:
        try:
            rounds = RoundAnalyzer(run)
        except AnalysisError:
            rounds = None

    def _round_at(pid: int, clock: int) -> int | None:
        if rounds is None:
            return None
        try:
            return rounds.round_at_clock(pid, clock)
        except AnalysisError:
            return None

    links: list[_Link] = []
    for env in run.envelopes.values():
        if env.receive_event is None:
            continue
        links.append(
            _Link(
                message=int(env.message_id),
                sender=env.sender,
                recipient=env.recipient,
                send_order=env.send_event,
                receive_order=env.receive_event,
                send_time=env.send_event,
                receive_time=env.receive_event,
                round=_round_at(env.sender, env.send_clock),
            )
        )

    decisions: list[_Decision] = []
    decided: set[int] = set()
    for event in run.events:
        if (
            event.kind == "step"
            and event.decision_after is not None
            and event.actor not in decided
        ):
            decided.add(event.actor)
            decisions.append(
                _Decision(
                    pid=event.actor,
                    decision=event.decision_after,
                    order=event.index,
                    time=event.index,
                    round=_round_at(event.actor, event.clock_after),
                )
            )

    chains = _longest_chains(links, decisions)
    return [
        CriticalPath(
            pid=d.pid,
            decision=d.decision,
            decision_time=d.time,
            decision_round=d.round,
            hops=tuple(_hop(link) for link in chains[d.pid]),
        )
        for d in sorted(decisions, key=lambda d: d.pid)
    ]


# -- from exported span traces ----------------------------------------------


def critical_paths_from_records(
    records: Iterable[dict[str, Any]],
) -> list[CriticalPath]:
    """Critical paths from a ``repro.span-trace`` document's records.

    Works per trial: events are grouped by their root span, so a trace
    holding many trials (a campaign) yields paths for each.  Recorder
    event ids serve as the happens-before order — a deliver recorded
    before a send happened before it on every track.
    """
    from repro.trace.export import trace_from_records

    trace = trace_from_records(list(records))
    spans = {span.id: span for span in trace.spans}

    def _root(span_id: int | None) -> int | None:
        seen = set()
        while span_id is not None and span_id in spans:
            if span_id in seen:  # defensive: corrupt parentage
                return span_id
            seen.add(span_id)
            parent = spans[span_id].parent
            if parent is None:
                return span_id
            span_id = parent
        return span_id

    events_by_id = {event.id: event for event in trace.events}
    send_to_deliver = {
        edge.src: edge.dst for edge in trace.edges if edge.kind == "message"
    }

    links_by_trial: dict[int | None, list[_Link]] = {}
    decisions_by_trial: dict[int | None, list[_Decision]] = {}
    for event in trace.events:
        if event.name == "send" and event.id in send_to_deliver:
            deliver = events_by_id.get(send_to_deliver[event.id])
            if deliver is None:
                continue
            trial = _root(event.span)
            attrs = event.attrs
            links_by_trial.setdefault(trial, []).append(
                _Link(
                    message=attrs.get("message", event.id),
                    sender=attrs.get("sender", -1),
                    recipient=deliver.attrs.get(
                        "recipient", attrs.get("recipient", -1)
                    ),
                    send_order=event.id,
                    receive_order=deliver.id,
                    send_time=event.time,
                    receive_time=deliver.time,
                    round=attrs.get("round"),
                )
            )
        elif event.name == "decide":
            trial = _root(event.span)
            decisions_by_trial.setdefault(trial, []).append(
                _Decision(
                    pid=event.attrs.get("pid", -1),
                    decision=event.attrs.get("decision"),
                    order=event.id,
                    time=event.time,
                    round=event.attrs.get("round"),
                )
            )

    paths: list[CriticalPath] = []
    for trial in sorted(
        decisions_by_trial, key=lambda value: (value is None, value)
    ):
        decisions = decisions_by_trial[trial]
        links = links_by_trial.get(trial, [])
        chains = _longest_chains(links, decisions)
        track = "sim"
        if trial is not None and trial in spans:
            track = spans[trial].track
        for d in sorted(decisions, key=lambda d: d.pid):
            paths.append(
                CriticalPath(
                    pid=d.pid,
                    decision=d.decision,
                    decision_time=d.time,
                    decision_round=d.round,
                    hops=tuple(_hop(link) for link in chains[d.pid]),
                    trial=trial,
                    track=track,
                )
            )
    return paths
