"""The causal span model and its recorder.

Three record kinds, mirroring the shape of distributed-tracing systems
but dependency-free and deterministic:

* :class:`Span` — a named interval on some track's time axis (trial →
  round → phase on the sim track; cluster runs on the runtime track;
  campaigns and explorations on their own trial-index axes).  Spans
  nest through ``parent`` ids;
* :class:`PointEvent` — an instantaneous occurrence inside a span:
  ``send``, ``deliver``, ``decide``, ``crash``, ``retransmit``,
  ``violation``;
* :class:`CausalEdge` — a happens-before edge between two point
  events, today always a ``message`` edge from a ``send`` to the
  ``deliver`` of the same message id.

The :class:`SpanRecorder` hands out monotonically increasing span and
event ids, keeps a stack of open spans so children default their
parent to the innermost open span, and matches ``send``/``deliver``
pairs on caller-supplied keys (message id on the sim track,
``(scope, seq)`` on the runtime track — :meth:`SpanRecorder.new_scope`
namespaces keys so concurrent trials in one recorder cannot
cross-link).

Activation mirrors :mod:`repro.telemetry.registry`: tracing is **off by
default**; instrumented code resolves :func:`active_recorder` once (a
single attribute read when disabled) and records nothing unless a
recorder is installed.  Recording never feeds back into scheduling —
the sim track is built *post-hoc* from the completed run (see
:mod:`repro.trace.build`), so traces are byte-identical with tracing on
or off; ``tests/telemetry/test_overhead.py`` pins this.
"""

from __future__ import annotations

import contextlib
import itertools
import threading
from dataclasses import dataclass, field
from typing import Any, Hashable, Iterator, Mapping

from repro.errors import ConfigurationError

#: Attribute values that survive the JSONL round-trip unchanged.
AttrValue = Any  # JSON scalars; enforced loosely, exporters sort keys

#: Sentinel meaning "parent is the innermost open span".
_CURRENT = object()


@dataclass
class Span:
    """One named interval; ``end`` is ``None`` while the span is open."""

    id: int
    name: str
    kind: str
    track: str
    start: float
    end: float | None = None
    parent: int | None = None
    attrs: dict[str, AttrValue] = field(default_factory=dict)

    @property
    def duration(self) -> float | None:
        return None if self.end is None else self.end - self.start


@dataclass(frozen=True)
class PointEvent:
    """One instantaneous occurrence inside a span."""

    id: int
    name: str
    track: str
    time: float
    span: int | None
    attrs: Mapping[str, AttrValue] = field(default_factory=dict)


@dataclass(frozen=True)
class CausalEdge:
    """A happens-before edge between two point events (src → dst)."""

    src: int
    dst: int
    kind: str = "message"


class SpanRecorder:
    """Accumulates spans, point events, and causal edges for one process.

    Thread-safe (the runtime track records from asyncio callbacks and
    the metrics server thread may snapshot concurrently): all mutation
    happens under one lock.  Ids are dense and start at 1; edge
    endpoints always satisfy ``src < dst`` because a deliver can only
    be matched to a previously recorded send — this is what makes the
    causal graph acyclic by construction (pinned by the property tests
    in ``tests/property/test_trace_properties.py``).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._span_ids = itertools.count(1)
        self._event_ids = itertools.count(1)
        self._scope_ids = itertools.count(1)
        self.spans: dict[int, Span] = {}
        self.events: list[PointEvent] = []
        self.edges: list[CausalEdge] = []
        self._stack: list[int] = []
        self._pending_sends: dict[tuple[str, Hashable], int] = {}

    # -- scopes --------------------------------------------------------------

    def new_scope(self) -> int:
        """A fresh namespace for send/deliver keys.

        Message ids restart from zero in every simulation and transport
        sequence numbers restart in every cluster; components take one
        scope per run so keys from different runs never collide.
        """
        with self._lock:
            return next(self._scope_ids)

    # -- spans ---------------------------------------------------------------

    def begin_span(
        self,
        name: str,
        *,
        kind: str,
        track: str,
        start: float,
        parent: int | None | object = _CURRENT,
        **attrs: AttrValue,
    ) -> int:
        """Open a span and push it on the stack; returns its id."""
        with self._lock:
            if parent is _CURRENT:
                parent_id = self._stack[-1] if self._stack else None
            else:
                parent_id = parent  # type: ignore[assignment]
            span_id = next(self._span_ids)
            self.spans[span_id] = Span(
                id=span_id,
                name=name,
                kind=kind,
                track=track,
                start=start,
                parent=parent_id,
                attrs=dict(attrs),
            )
            self._stack.append(span_id)
            return span_id

    def end_span(
        self, span_id: int, end: float, **attrs: AttrValue
    ) -> None:
        """Close a span (popping it off the stack if still open there)."""
        with self._lock:
            span = self.spans.get(span_id)
            if span is None:
                raise ConfigurationError(f"unknown span id {span_id}")
            span.end = end
            span.attrs.update(attrs)
            if span_id in self._stack:
                while self._stack and self._stack[-1] != span_id:
                    self._stack.pop()
                if self._stack:
                    self._stack.pop()

    @contextlib.contextmanager
    def span(
        self,
        name: str,
        *,
        kind: str,
        track: str,
        start: float,
        end: float | None = None,
        **attrs: AttrValue,
    ) -> Iterator[int]:
        """Context manager: begin on enter, end on exit.

        ``end`` fixes the close time up front; when ``None`` the span
        closes at its own start time plus the number of child spans
        opened underneath it — callers on real time axes should close
        explicitly via :meth:`end_span` inside the block instead.
        """
        span_id = self.begin_span(
            name, kind=kind, track=track, start=start, **attrs
        )
        try:
            yield span_id
        finally:
            span = self.spans[span_id]
            if span.end is None:
                close = end if end is not None else start + 1
                self.end_span(span_id, close)

    # -- point events --------------------------------------------------------

    def point(
        self,
        name: str,
        *,
        track: str,
        time: float,
        span: int | None | object = _CURRENT,
        **attrs: AttrValue,
    ) -> int:
        """Record an instantaneous event; returns its id."""
        with self._lock:
            if span is _CURRENT:
                span_id = self._stack[-1] if self._stack else None
            else:
                span_id = span  # type: ignore[assignment]
            event_id = next(self._event_ids)
            self.events.append(
                PointEvent(
                    id=event_id,
                    name=name,
                    track=track,
                    time=time,
                    span=span_id,
                    attrs=dict(attrs),
                )
            )
            return event_id

    def send(
        self,
        *,
        track: str,
        key: Hashable,
        time: float,
        span: int | None | object = _CURRENT,
        **attrs: AttrValue,
    ) -> int:
        """Record a ``send`` event and remember it for edge matching."""
        event_id = self.point(
            "send", track=track, time=time, span=span, **attrs
        )
        with self._lock:
            self._pending_sends[(track, key)] = event_id
        return event_id

    def deliver(
        self,
        *,
        track: str,
        key: Hashable,
        time: float,
        span: int | None | object = _CURRENT,
        **attrs: AttrValue,
    ) -> int:
        """Record a ``deliver`` event, linking it to the matching send.

        The causal edge is only emitted when the send was seen; an
        unmatched deliver (e.g. a trace sliced mid-run) records the
        event alone.
        """
        event_id = self.point(
            "deliver", track=track, time=time, span=span, **attrs
        )
        with self._lock:
            src = self._pending_sends.get((track, key))
            if src is not None:
                self.edges.append(CausalEdge(src=src, dst=event_id))
        return event_id

    # -- introspection -------------------------------------------------------

    def __len__(self) -> int:
        return len(self.spans)

    def counts(self) -> dict[str, int]:
        """Record counts, for summaries and progress lines."""
        with self._lock:
            return {
                "spans": len(self.spans),
                "events": len(self.events),
                "edges": len(self.edges),
            }


# -- the default recorder ----------------------------------------------------

_active: SpanRecorder | None = None


def active_recorder() -> SpanRecorder | None:
    """The installed recorder, or ``None`` when tracing is off.

    This is the hot-path guard: components resolve it once per run
    (one module-global read) and skip all recording when it is
    ``None``.
    """
    return _active


def tracing_enabled() -> bool:
    """Whether a recorder is installed."""
    return _active is not None


def enable_tracing(recorder: SpanRecorder | None = None) -> SpanRecorder:
    """Install (and return) the process-wide recorder."""
    global _active
    _active = recorder if recorder is not None else SpanRecorder()
    return _active


def disable_tracing() -> SpanRecorder | None:
    """Uninstall the recorder; returns it for inspection/export."""
    global _active
    previous = _active
    _active = None
    return previous


@contextlib.contextmanager
def use_recorder(recorder: SpanRecorder) -> Iterator[SpanRecorder]:
    """Temporarily install ``recorder`` as the active one."""
    global _active
    previous = _active
    _active = recorder
    try:
        yield recorder
    finally:
        _active = previous
