"""Causal span tracing across every executable track.

Where :mod:`repro.telemetry` answers "how much / how often" with
aggregate counters, this package answers "*why did this run take the
time it took*": it records **spans** (trial → round → phase), **point
events** (send, deliver, decide, crash, retransmit, violation), and
**causal edges** (send → deliver, carried on message ids) into a
:class:`~repro.trace.spans.SpanRecorder`, then analyzes and exports
them.

Four layers:

* :mod:`repro.trace.spans` — the span/event/edge model, the recorder,
  and the process-wide activation plumbing (``enable_tracing`` /
  ``disable_tracing`` / ``active_recorder``), mirroring the telemetry
  registry: **off by default**, one attribute read when disabled, and
  trace-neutral when enabled (simulator runs stay byte-identical —
  pinned by ``tests/telemetry/test_overhead.py``);
* :mod:`repro.trace.build` — derives the sim track's full span tree
  (trial span, asynchronous-round spans, per-processor phase spans,
  send→deliver edges, decide/crash points) post-hoc from a completed
  :class:`~repro.sim.trace.Run`, which is what the scheduler feeds the
  active recorder;
* :mod:`repro.trace.critical_path` — extracts the longest causal
  message chain ending at each decision and attributes the decision
  round to it (chain round span + timer gap);
* :mod:`repro.trace.export` — schema-versioned JSONL
  (``repro.span-trace`` v1) and Chrome trace-event JSON loadable in
  Perfetto / ``chrome://tracing``.

CLI: ``--trace-spans PATH`` on ``run-commit`` / ``faults campaign`` /
``mc explore`` records a run, and ``repro trace export | summarize |
critical-path`` consumes the file.  See ``docs/OBSERVABILITY.md``.
"""

from repro.trace.build import record_run
from repro.trace.critical_path import (
    CriticalPath,
    Hop,
    critical_path_from_run,
    critical_paths_from_records,
)
from repro.trace.export import (
    CHROME_SCHEMA_NOTE,
    SPAN_TRACE_SCHEMA,
    SPAN_TRACE_VERSION,
    SpanTrace,
    read_span_trace,
    recorder_to_records,
    summarize_trace,
    to_chrome_trace,
    trace_from_records,
    write_chrome_trace,
    write_span_trace,
)
from repro.trace.spans import (
    CausalEdge,
    PointEvent,
    Span,
    SpanRecorder,
    active_recorder,
    disable_tracing,
    enable_tracing,
    tracing_enabled,
    use_recorder,
)

__all__ = [
    "CHROME_SCHEMA_NOTE",
    "CausalEdge",
    "CriticalPath",
    "Hop",
    "PointEvent",
    "SPAN_TRACE_SCHEMA",
    "SPAN_TRACE_VERSION",
    "Span",
    "SpanRecorder",
    "SpanTrace",
    "active_recorder",
    "critical_path_from_run",
    "critical_paths_from_records",
    "disable_tracing",
    "enable_tracing",
    "read_span_trace",
    "record_run",
    "recorder_to_records",
    "summarize_trace",
    "to_chrome_trace",
    "trace_from_records",
    "tracing_enabled",
    "use_recorder",
    "write_chrome_trace",
    "write_span_trace",
]
