"""Derive the sim track's span tree from a completed run.

The simulator never records spans while executing — that would risk
perturbing the schedule and would duplicate what the
:class:`~repro.sim.trace.Run` already captures.  Instead, when a
recorder is active the scheduler calls :func:`record_run` *after* the
run completes, and this module replays the run into spans:

* one **trial** span covering the whole run (time axis = event index);
* one **round** span per asynchronous round (Section 2.2 boundaries via
  :class:`~repro.sim.rounds.RoundAnalyzer`), from the earliest to the
  latest step any processor took in that round;
* one **phase** span per (processor, round) — processor ``p``'s slice
  of round ``r``;
* ``send``/``deliver`` point events per envelope, joined by causal
  edges keyed on the message id, each labelled with the sender's (resp.
  recipient's) round at that clock reading;
* ``decide`` and ``crash`` point events.

Runs the round analyzer cannot label (non-convergent pathological
schedules) still get the trial span, message events, and edges — only
round/phase structure is omitted.
"""

from __future__ import annotations

import bisect
from typing import Any

from repro.errors import AnalysisError
from repro.sim.rounds import RoundAnalyzer
from repro.sim.trace import Run
from repro.trace.spans import SpanRecorder


def _steps_by_actor(run: Run) -> dict[int, tuple[list[int], list[int]]]:
    """Per actor: parallel lists of (clock_after, event index) for steps."""
    steps: dict[int, tuple[list[int], list[int]]] = {
        pid: ([], []) for pid in range(run.n)
    }
    for event in run.events:
        if event.kind == "step":
            clocks, indexes = steps[event.actor]
            clocks.append(event.clock_after)
            indexes.append(event.index)
    return steps


def record_run(
    recorder: SpanRecorder,
    run: Run,
    *,
    track: str = "sim",
    name: str = "sim-run",
    **attrs: Any,
) -> int:
    """Record a completed run's span tree; returns the trial span id.

    The trial span nests under whatever span is currently open on the
    recorder (the campaign's trial span, for instance), or at the root
    when recording a bare ``run_commit``.
    """
    scope = recorder.new_scope()
    try:
        rounds: RoundAnalyzer | None = RoundAnalyzer(run)
    except AnalysisError:
        rounds = None

    trial_attrs: dict[str, Any] = {
        "n": run.n,
        "t": run.t,
        "K": run.K,
        "events": run.event_count,
        "decided": sum(1 for v in run.decisions.values() if v is not None),
    }
    if rounds is not None:
        trial_attrs["max_decision_round"] = rounds.max_decision_round()
    trial_attrs.update(attrs)
    trial = recorder.begin_span(
        name, kind="trial", track=track, start=0, **trial_attrs
    )

    steps = _steps_by_actor(run)
    # phase_spans[(pid, round)] -> span id, for parenting message events.
    phase_spans: dict[tuple[int, int], int] = {}
    if rounds is not None:
        # Collect every (pid, round) phase as an event-index interval.
        phases: dict[int, list[tuple[int, int, int]]] = {}
        for pid in range(run.n):
            clocks, indexes = steps[pid]
            if not clocks:
                continue
            ends = rounds.boundaries(pid).ends
            for r in range(1, len(ends)):
                low, high = ends[r - 1], ends[r]
                first = bisect.bisect_right(clocks, low)
                last = bisect.bisect_right(clocks, high) - 1
                if first > last:
                    continue
                phases.setdefault(r, []).append(
                    (pid, indexes[first], indexes[last])
                )
        for r in sorted(phases):
            entries = phases[r]
            round_span = recorder.begin_span(
                f"round-{r}",
                kind="round",
                track=track,
                start=min(start for _, start, _ in entries),
                parent=trial,
                round=r,
            )
            recorder.end_span(
                round_span, max(end for _, _, end in entries) + 1
            )
            for pid, start, end in entries:
                span = recorder.begin_span(
                    f"p{pid}/r{r}",
                    kind="phase",
                    track=track,
                    start=start,
                    parent=round_span,
                    pid=pid,
                    round=r,
                )
                recorder.end_span(span, end + 1)
                phase_spans[(pid, r)] = span

    def _round_at(pid: int, clock: int) -> int | None:
        if rounds is None:
            return None
        try:
            return rounds.round_at_clock(pid, clock)
        except AnalysisError:
            return None

    def _phase_of(pid: int, round_number: int | None) -> int:
        if round_number is None:
            return trial
        return phase_spans.get((pid, round_number), trial)

    # Message events + causal edges, replayed in event order.  Within
    # one step, delivers precede sends (a process reads its inbox before
    # emitting), which keeps recorder ids aligned with causality.
    sends_by_event: dict[int, list] = {}
    delivers_by_event: dict[int, list] = {}
    for env in run.envelopes.values():
        sends_by_event.setdefault(env.send_event, []).append(env)
        if env.receive_event is not None:
            delivers_by_event.setdefault(env.receive_event, []).append(env)

    decided: set[int] = set()
    for event in run.events:
        index = event.index
        for env in sorted(
            delivers_by_event.get(index, []), key=lambda e: e.message_id
        ):
            r = _round_at(env.recipient, event.clock_after)
            recorder.deliver(
                track=track,
                key=(scope, int(env.message_id)),
                time=index,
                span=_phase_of(env.recipient, r),
                message=int(env.message_id),
                sender=env.sender,
                recipient=env.recipient,
                clock=event.clock_after,
                round=r,
            )
        for env in sorted(
            sends_by_event.get(index, []), key=lambda e: e.message_id
        ):
            r = _round_at(env.sender, env.send_clock)
            recorder.send(
                track=track,
                key=(scope, int(env.message_id)),
                time=index,
                span=_phase_of(env.sender, r),
                message=int(env.message_id),
                sender=env.sender,
                recipient=env.recipient,
                clock=env.send_clock,
                round=r,
            )
        if event.kind == "crash":
            recorder.point(
                "crash",
                track=track,
                time=index,
                span=trial,
                pid=event.actor,
                clock=event.clock_after,
            )
        if (
            event.decision_after is not None
            and event.actor not in decided
            and event.kind == "step"
        ):
            decided.add(event.actor)
            r = _round_at(event.actor, event.clock_after)
            recorder.point(
                "decide",
                track=track,
                time=index,
                span=_phase_of(event.actor, r),
                pid=event.actor,
                decision=event.decision_after,
                clock=event.clock_after,
                round=r,
            )

    recorder.end_span(trial, run.event_count)
    return trial
