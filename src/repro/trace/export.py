"""Span-trace serialization: JSONL (``repro.span-trace`` v1) and Chrome.

JSONL layout follows the repo's artifact idiom (header / body / final,
deterministic sorted-key writer, strict versioned reader — shared
helpers in :mod:`repro.telemetry.runio`):

* line 1 — ``{"record": "header", "schema": "repro.span-trace",
  "version": 1}``;
* one ``{"record": "span", ...}`` per span, in id order;
* one ``{"record": "event", ...}`` per point event, in id order;
* one ``{"record": "edge", ...}`` per causal edge, in record order;
* last line — ``{"record": "final", "spans": ..., "events": ...,
  "edges": ...}`` (counts double as a truncation check).

The Chrome exporter emits the trace-event JSON format understood by
Perfetto (https://ui.perfetto.dev) and ``chrome://tracing``: complete
(``"X"``) events for spans, instant (``"i"``) events for points, and
flow (``"s"``/``"f"``) pairs for causal edges.  Tracks map to
processes, span lanes (processor id when present) map to threads, and
timestamps are microseconds — logical time units (event indices, trial
indices) count 1 µs each, runtime seconds are scaled by 1e6.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Sequence

from repro.errors import AnalysisError
from repro.telemetry.runio import (
    check_header,
    read_jsonl_records,
    write_jsonl_records,
)
from repro.trace.spans import CausalEdge, PointEvent, Span, SpanRecorder

#: Schema identifier carried in every span-trace header record.
SPAN_TRACE_SCHEMA = "repro.span-trace"

#: Format version; bump on breaking changes.
SPAN_TRACE_VERSION = 1

#: Note embedded in Chrome exports' ``otherData``.
CHROME_SCHEMA_NOTE = (
    "exported by repro.trace; logical time units (event/trial indices) "
    "are 1us each, runtime seconds are scaled to us"
)

#: Per-track multiplier from recorded time units to microseconds.
_TRACK_TIME_SCALE = {"runtime": 1_000_000.0}


@dataclass
class SpanTrace:
    """A parsed span-trace document."""

    header: dict[str, Any]
    spans: list[Span] = field(default_factory=list)
    events: list[PointEvent] = field(default_factory=list)
    edges: list[CausalEdge] = field(default_factory=list)

    @property
    def empty(self) -> bool:
        """True when nothing was recorded (the CLI maps this to exit 4)."""
        return not self.spans and not self.events


# -- JSONL -------------------------------------------------------------------


def recorder_to_records(recorder: SpanRecorder) -> list[dict[str, Any]]:
    """Serialize a recorder's contents to span-trace records."""
    records: list[dict[str, Any]] = [
        {
            "record": "header",
            "schema": SPAN_TRACE_SCHEMA,
            "version": SPAN_TRACE_VERSION,
        }
    ]
    for span_id in sorted(recorder.spans):
        span = recorder.spans[span_id]
        records.append(
            {
                "record": "span",
                "id": span.id,
                "name": span.name,
                "kind": span.kind,
                "track": span.track,
                "start": span.start,
                "end": span.end,
                "parent": span.parent,
                "attrs": dict(span.attrs),
            }
        )
    for event in recorder.events:
        records.append(
            {
                "record": "event",
                "id": event.id,
                "name": event.name,
                "track": event.track,
                "time": event.time,
                "span": event.span,
                "attrs": dict(event.attrs),
            }
        )
    for edge in recorder.edges:
        records.append(
            {"record": "edge", "src": edge.src, "dst": edge.dst,
             "kind": edge.kind}
        )
    counts = recorder.counts()
    records.append({"record": "final", **counts})
    return records


def trace_from_records(records: Sequence[dict[str, Any]]) -> SpanTrace:
    """Parse span-trace records back into a :class:`SpanTrace`.

    Raises:
        AnalysisError: on a missing/invalid header, unsupported version,
            malformed records, or a truncated document (missing final).
    """
    header = check_header(records, SPAN_TRACE_SCHEMA, SPAN_TRACE_VERSION)
    trace = SpanTrace(header=header)
    saw_final = False
    for number, record in enumerate(records[1:], start=2):
        kind = record.get("record")
        try:
            if kind == "span":
                trace.spans.append(
                    Span(
                        id=record["id"],
                        name=record["name"],
                        kind=record["kind"],
                        track=record["track"],
                        start=record["start"],
                        end=record["end"],
                        parent=record["parent"],
                        attrs=dict(record.get("attrs", {})),
                    )
                )
            elif kind == "event":
                trace.events.append(
                    PointEvent(
                        id=record["id"],
                        name=record["name"],
                        track=record["track"],
                        time=record["time"],
                        span=record["span"],
                        attrs=dict(record.get("attrs", {})),
                    )
                )
            elif kind == "edge":
                trace.edges.append(
                    CausalEdge(
                        src=record["src"],
                        dst=record["dst"],
                        kind=record.get("kind", "message"),
                    )
                )
            elif kind == "final":
                saw_final = True
                if record.get("spans") != len(trace.spans) or record.get(
                    "events"
                ) != len(trace.events):
                    raise AnalysisError(
                        f"span-trace counts mismatch: final says "
                        f"{record.get('spans')} spans/"
                        f"{record.get('events')} events, document has "
                        f"{len(trace.spans)}/{len(trace.events)}"
                    )
            else:
                raise AnalysisError(f"unknown record type {kind!r}")
        except (KeyError, TypeError) as exc:
            raise AnalysisError(
                f"malformed span-trace record #{number}: {record!r}"
            ) from exc
    if not saw_final:
        raise AnalysisError("truncated span trace: no final record")
    return trace


def write_span_trace(
    recorder: SpanRecorder, path: str | Path
) -> Path:
    """Write a recorder's contents as span-trace JSONL."""
    return write_jsonl_records(recorder_to_records(recorder), path)


def read_span_trace(path: str | Path) -> SpanTrace:
    """Read a span-trace JSONL file back into a :class:`SpanTrace`."""
    return trace_from_records(read_jsonl_records(path))


# -- Chrome trace-event JSON -------------------------------------------------


def _scale(track: str, time: float) -> float:
    return time * _TRACK_TIME_SCALE.get(track, 1.0)


def to_chrome_trace(trace: SpanTrace) -> dict[str, Any]:
    """Convert a span trace to the Chrome trace-event JSON document."""
    tracks = sorted(
        {span.track for span in trace.spans}
        | {event.track for event in trace.events}
    )
    process_ids = {track: index + 1 for index, track in enumerate(tracks)}
    spans_by_id = {span.id: span for span in trace.spans}

    def _lane(span_id: int | None) -> int:
        span = spans_by_id.get(span_id) if span_id is not None else None
        if span is None:
            return 0
        pid = span.attrs.get("pid")
        if isinstance(pid, int):
            return pid + 2
        return 1 if span.kind in ("round", "phase") else 0

    trace_events: list[dict[str, Any]] = []
    for track in tracks:
        trace_events.append(
            {
                "ph": "M",
                "name": "process_name",
                "pid": process_ids[track],
                "tid": 0,
                "args": {"name": f"track:{track}"},
            }
        )
    for span in trace.spans:
        end = span.end if span.end is not None else span.start
        trace_events.append(
            {
                "ph": "X",
                "name": span.name,
                "cat": span.kind,
                "pid": process_ids[span.track],
                "tid": _lane(span.id),
                "ts": _scale(span.track, span.start),
                "dur": max(_scale(span.track, end - span.start), 0.0),
                "args": dict(span.attrs),
            }
        )
    positions = {}
    for event in trace.events:
        position = {
            "pid": process_ids.get(event.track, 0),
            "tid": _lane(event.span),
            "ts": _scale(event.track, event.time),
        }
        positions[event.id] = position
        trace_events.append(
            {
                "ph": "i",
                "s": "t",
                "name": event.name,
                "cat": event.track,
                **position,
                "args": dict(event.attrs),
            }
        )
    for index, edge in enumerate(trace.edges):
        src = positions.get(edge.src)
        dst = positions.get(edge.dst)
        if src is None or dst is None:
            continue
        common = {"cat": edge.kind, "name": edge.kind, "id": index + 1}
        trace_events.append({"ph": "s", **common, **src})
        trace_events.append({"ph": "f", "bp": "e", **common, **dst})

    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {
            "schema": SPAN_TRACE_SCHEMA,
            "version": SPAN_TRACE_VERSION,
            "note": CHROME_SCHEMA_NOTE,
        },
    }


def write_chrome_trace(trace: SpanTrace, path: str | Path) -> Path:
    """Write a span trace as Chrome trace-event JSON."""
    import json

    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(
        json.dumps(to_chrome_trace(trace), sort_keys=True, indent=None),
        encoding="utf-8",
    )
    return target


# -- summaries ---------------------------------------------------------------


def summarize_trace(trace: SpanTrace) -> dict[str, Any]:
    """Aggregate counts for ``repro trace summarize`` (and tests)."""
    spans_by_kind: dict[str, int] = {}
    for span in trace.spans:
        key = f"{span.track}/{span.kind}"
        spans_by_kind[key] = spans_by_kind.get(key, 0) + 1
    events_by_name: dict[str, int] = {}
    for event in trace.events:
        events_by_name[event.name] = events_by_name.get(event.name, 0) + 1
    # Count outermost trial spans only: a campaign's trial span wraps
    # the sim trial it executes, and those are the same logical trial.
    spans_by_id = {span.id: span for span in trace.spans}

    def _has_trial_ancestor(span: Span) -> bool:
        parent = span.parent
        while parent is not None and parent in spans_by_id:
            if spans_by_id[parent].kind == "trial":
                return True
            parent = spans_by_id[parent].parent
        return False

    all_trials = [span for span in trace.spans if span.kind == "trial"]
    trials = [
        span for span in all_trials if not _has_trial_ancestor(span)
    ]
    rounds = [
        span.attrs.get("max_decision_round")
        for span in all_trials
        if span.attrs.get("max_decision_round") is not None
    ]
    return {
        "spans": len(trace.spans),
        "events": len(trace.events),
        "edges": len(trace.edges),
        "tracks": sorted(
            {s.track for s in trace.spans} | {e.track for e in trace.events}
        ),
        "spans_by_kind": dict(sorted(spans_by_kind.items())),
        "events_by_name": dict(sorted(events_by_name.items())),
        "trials": len(trials),
        "max_decision_round": max(rounds) if rounds else None,
    }
