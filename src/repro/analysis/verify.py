"""Run verification: check every paper condition on one recorded run.

``verify_commit_run`` takes a run (plus the initial votes it started
from) and checks the complete battery:

* **agreement** — at most one decision value;
* **abort validity** — some initial 0 and deciding ⇒ all abort;
* **commit validity** — all 1, failure-free, on-time, deciding ⇒ all
  commit;
* **decision permanence** — every processor's decision, once recorded,
  never changes across the trace;
* **output coherence** — returned programs' outputs equal decisions;
* **remark-1 budget** — failure-free on-time runs decided within 8K.

The result is a structured :class:`VerificationReport`, so fuzzing
harnesses and CI checks can assert on individual conditions and print
actionable failures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.sim.trace import Run
from repro.types import Decision, ProcessStatus


@dataclass(frozen=True)
class Verdict:
    """One checked condition."""

    condition: str
    holds: bool
    applicable: bool
    detail: str = ""

    @property
    def violated(self) -> bool:
        return self.applicable and not self.holds


@dataclass
class VerificationReport:
    """Outcome of the full condition battery for one run."""

    verdicts: list[Verdict] = field(default_factory=list)

    def add(
        self, condition: str, holds: bool, applicable: bool = True, detail: str = ""
    ) -> None:
        self.verdicts.append(
            Verdict(
                condition=condition,
                holds=holds,
                applicable=applicable,
                detail=detail,
            )
        )

    @property
    def ok(self) -> bool:
        """Whether no applicable condition was violated."""
        return not any(v.violated for v in self.verdicts)

    def violations(self) -> list[Verdict]:
        return [v for v in self.verdicts if v.violated]

    def render(self) -> str:
        lines = []
        for verdict in self.verdicts:
            if not verdict.applicable:
                status = "n/a "
            elif verdict.holds:
                status = "ok  "
            else:
                status = "FAIL"
            detail = f"  ({verdict.detail})" if verdict.detail else ""
            lines.append(f"[{status}] {verdict.condition}{detail}")
        return "\n".join(lines)


def verify_commit_run(
    run: Run, initial_votes: Sequence[int]
) -> VerificationReport:
    """Check the full commit-problem condition battery on ``run``."""
    if len(initial_votes) != run.n:
        raise ValueError(
            f"run has n={run.n} but {len(initial_votes)} votes were given"
        )
    report = VerificationReport()
    nonfaulty = run.nonfaulty()
    deciding = run.is_deciding()
    values = run.decision_values()

    # Agreement: at most one decision value, counting crashed deciders
    # (a processor that decided and then crashed may have externalized).
    report.add(
        "agreement (at most one decision value)",
        holds=len(values) <= 1,
        detail=f"values={sorted(values)}" if values else "no decisions",
    )

    # Abort validity.
    has_no_vote = any(v == 0 for v in initial_votes)
    abort_ok = all(
        run.decisions[pid] in (None, int(Decision.ABORT)) for pid in nonfaulty
    )
    report.add(
        "abort validity (any initial 0 => abort)",
        holds=abort_ok,
        applicable=has_no_vote,
        detail="some nonfaulty processor decided commit"
        if has_no_vote and not abort_ok
        else "",
    )

    # Commit validity.
    well_behaved = (
        deciding
        and not has_no_vote
        and not run.faulty()
        and run.is_on_time()
    )
    commit_ok = all(
        run.decisions[pid] == int(Decision.COMMIT) for pid in nonfaulty
    )
    report.add(
        "commit validity (all 1 + failure-free + on-time => commit)",
        holds=commit_ok,
        applicable=well_behaved,
        detail="" if commit_ok else "a well-behaved run did not commit",
    )

    # Decision permanence across the trace.
    permanent = True
    seen: dict[int, int] = {}
    for event in run.events:
        decision = event.decision_after
        if decision is None:
            continue
        previous = seen.get(event.actor)
        if previous is not None and previous != decision:
            permanent = False
            break
        seen[event.actor] = decision
    report.add(
        "decision permanence (decision states are absorbing)",
        holds=permanent,
    )

    # Output coherence for returned programs.
    coherent = True
    for pid, status in run.statuses.items():
        if status is not ProcessStatus.RETURNED:
            continue
        output = run.outputs.get(pid)
        decision = run.decisions.get(pid)
        if decision is not None and output is not None:
            if int(output) != decision:
                coherent = False
    report.add(
        "output coherence (program return value equals decision)",
        holds=coherent,
    )

    # Remark 1's 8K budget on well-behaved runs.
    budget_ok = True
    max_clock = run.max_decision_clock()
    if well_behaved and max_clock is not None:
        budget_ok = max_clock <= 8 * run.K
    report.add(
        "remark-1 budget (failure-free on-time decide within 8K)",
        holds=budget_ok,
        applicable=well_behaved,
        detail=f"decided at tick {max_clock}, budget {8 * run.K}"
        if well_behaved
        else "",
    )
    return report
