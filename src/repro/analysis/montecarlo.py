"""Monte-Carlo trial running.

Randomized protocols are analysed in expectation, so every experiment is
a batch of independent trials: trial ``i`` derives its tape seed and its
adversary seed from ``base_seed + i``, making whole batches replayable
from one integer.  :class:`TrialBatch` aggregates the per-run metric
bundles into the summaries the experiment tables print.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial
from typing import Callable, Iterator, Sequence

from repro.adversary.base import Adversary
from repro.analysis.metrics import (
    RunMetrics,
    abort_validity_satisfied,
    commit_validity_satisfied,
    extract_metrics,
)
from repro.analysis.stats import Summary, proportion, summarize
from repro.core.api import ProtocolOutcome
from repro.core.commit import CommitProgram
from repro.core.halting import HaltingMode
from repro.engine.executor import run_trials
from repro.errors import InsufficientDataError
from repro.sim.coreselect import resolve_sim_core
from repro.sim.scheduler import Simulation


@dataclass
class TrialBatch:
    """Metrics of a batch of independent trials of one configuration."""

    metrics: list[RunMetrics] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.metrics)

    def __iter__(self) -> Iterator[RunMetrics]:
        return iter(self.metrics)

    def add(self, metric: RunMetrics) -> None:
        self.metrics.append(metric)

    def summary(self, name: str, confidence: float = 0.95) -> Summary:
        """Summarise one numeric metric field over trials where it exists.

        Raises:
            InsufficientDataError: if no trial produced the metric (e.g.
                asking for decision rounds in a batch that never decided).
        """
        values = [
            getattr(m, name) for m in self.metrics if getattr(m, name) is not None
        ]
        if not values:
            raise InsufficientDataError(
                f"metric {name!r} absent from all {len(self.metrics)} trials"
            )
        return summarize(values, confidence=confidence)

    def rate(self, predicate: Callable[[RunMetrics], bool]) -> float:
        """Fraction of trials satisfying ``predicate``."""
        return proportion(
            sum(1 for m in self.metrics if predicate(m)), len(self.metrics)
        )

    @property
    def termination_rate(self) -> float:
        return self.rate(lambda m: m.terminated)

    @property
    def consistency_rate(self) -> float:
        return self.rate(lambda m: m.consistent)

    @property
    def commit_rate(self) -> float:
        return self.rate(lambda m: m.decision == 1)


#: A factory building a fresh adversary for trial ``seed``.
AdversaryFactory = Callable[[int], Adversary]


@dataclass(frozen=True)
class CommitTrialConfig:
    """Configuration of one commit Monte-Carlo batch.

    Attributes mirror :func:`repro.core.api.run_commit`; ``votes`` may be
    a fixed list or a per-seed factory for randomized vote patterns.
    """

    votes: Sequence[int] | Callable[[int], Sequence[int]]
    adversary_factory: AdversaryFactory
    t: int | None = None
    K: int = 4
    coin_count: int | None = None
    halting: HaltingMode = HaltingMode.DECIDE_BROADCAST
    max_steps: int = 100_000
    allow_sub_resilience: bool = False

    def votes_for(self, seed: int) -> list[int]:
        if callable(self.votes):
            return [int(v) for v in self.votes(seed)]
        return [int(v) for v in self.votes]


def run_commit_trial(config: CommitTrialConfig, seed: int) -> RunMetrics:
    """Run one commit trial and extract its metrics.

    Executes on the resolved simulation core (``--sim-core`` /
    ``REPRO_SIM_CORE``): the fast core routes through
    :func:`repro.sim.fastcore.fast_commit_trial`, whose metrics are
    contract-equal to this function's.  The ``(config, seed)`` signature
    is unchanged, so batches still pickle for the engine's worker pool;
    workers re-resolve the core from the inherited environment.
    """
    if resolve_sim_core() == "fast":
        from repro.sim.fastcore import fast_commit_trial

        return fast_commit_trial(config, seed)
    votes = config.votes_for(seed)
    n = len(votes)
    t = config.t if config.t is not None else (n - 1) // 2
    programs = [
        CommitProgram(
            pid=pid,
            n=n,
            t=t,
            initial_vote=vote,
            K=config.K,
            coin_count=config.coin_count,
            halting=config.halting,
            allow_sub_resilience=config.allow_sub_resilience,
        )
        for pid, vote in enumerate(votes)
    ]
    adversary = config.adversary_factory(seed)
    from repro.models import apply_active_model

    adversary = apply_active_model(adversary, K=config.K, seed=seed)
    simulation = Simulation(
        programs=programs,
        adversary=adversary,
        K=config.K,
        t=t,
        seed=seed,
        max_steps=config.max_steps,
    )
    attach = getattr(adversary, "attach", None)
    if attach is not None:
        attach(simulation)
    outcome = ProtocolOutcome(result=simulation.run())
    metrics = extract_metrics(outcome, programs=programs)
    if not abort_validity_satisfied(outcome, votes):
        raise AssertionError(
            f"abort validity violated in commit trial seed={seed}"
        )
    if not commit_validity_satisfied(outcome, votes):
        raise AssertionError(
            f"commit validity violated in commit trial seed={seed}"
        )
    return metrics


def run_commit_batch(
    config: CommitTrialConfig,
    trials: int,
    base_seed: int = 0,
    workers: int | None = None,
) -> TrialBatch:
    """Run ``trials`` independent commit trials.

    Routed through the :mod:`repro.engine` executor: ``workers > 1`` fans
    the trials out over worker processes when the configuration pickles
    (use :class:`~repro.engine.spec.SeededFactory` and plain vote lists),
    and falls back to the in-process loop otherwise.  Results are in seed
    order either way.
    """
    return run_custom_batch(
        partial(run_commit_trial, config),
        trials=trials,
        base_seed=base_seed,
        workers=workers,
    )


def run_custom_batch(
    trial: Callable[[int], RunMetrics],
    trials: int,
    base_seed: int = 0,
    workers: int | None = None,
) -> TrialBatch:
    """Run an arbitrary per-seed trial function as a batch."""
    if trials <= 0:
        raise InsufficientDataError(f"need at least one trial, got {trials}")
    batch = TrialBatch()
    for metrics in run_trials(
        trial, trials=trials, base_seed=base_seed, workers=workers
    ):
        batch.add(metrics)
    return batch
