"""Monte-Carlo analysis: trials, metrics, statistics, sweeps, tables."""

from repro.analysis.histogram import histogram
from repro.analysis.metrics import (
    RunMetrics,
    abort_validity_satisfied,
    commit_validity_satisfied,
    extract_metrics,
)
from repro.analysis.montecarlo import (
    CommitTrialConfig,
    TrialBatch,
    run_commit_batch,
    run_commit_trial,
    run_custom_batch,
)
from repro.analysis.stats import Summary, proportion, summarize
from repro.analysis.sweep import SweepPoint, grid, sweep
from repro.analysis.tables import ResultTable
from repro.analysis.verify import (
    VerificationReport,
    Verdict,
    verify_commit_run,
)

__all__ = [
    "CommitTrialConfig",
    "Verdict",
    "VerificationReport",
    "ResultTable",
    "RunMetrics",
    "Summary",
    "SweepPoint",
    "TrialBatch",
    "abort_validity_satisfied",
    "commit_validity_satisfied",
    "extract_metrics",
    "grid",
    "proportion",
    "run_commit_batch",
    "run_commit_trial",
    "run_custom_batch",
    "histogram",
    "summarize",
    "sweep",
    "verify_commit_run",
]
