"""Tiny ASCII histograms for metric distributions.

E10's headline is a *distribution* claim (Ben-Or's stages are
geometric-with-tiny-success-probability, Protocol 1's are a point mass),
so the experiment reports benefit from a shape view, not just a mean.
"""

from __future__ import annotations

import math
from typing import Sequence


def histogram(
    samples: Sequence[float],
    bins: int = 10,
    width: int = 40,
    log_bins: bool = False,
) -> str:
    """Render samples as an ASCII histogram.

    Args:
        samples: the values (at least one).
        bins: number of buckets.
        width: bar width in characters for the fullest bucket.
        log_bins: geometric bucket edges (for heavy-tailed metrics like
            Ben-Or stage counts).
    """
    if not samples:
        raise ValueError("cannot histogram zero samples")
    if bins < 1 or width < 1:
        raise ValueError("bins and width must be positive")
    low = min(samples)
    high = max(samples)
    if low == high:
        return f"{low:g} x{len(samples)}  {'#' * min(width, len(samples))}"
    if log_bins and low > 0:
        log_low = math.log(low)
        log_high = math.log(high)
        edges = [
            math.exp(log_low + (log_high - log_low) * i / bins)
            for i in range(bins + 1)
        ]
    else:
        edges = [low + (high - low) * i / bins for i in range(bins + 1)]
    counts = [0] * bins
    for value in samples:
        for index in range(bins):
            if value <= edges[index + 1] or index == bins - 1:
                counts[index] += 1
                break
    fullest = max(counts)
    lines = []
    for index, count in enumerate(counts):
        bar = "#" * (round(width * count / fullest) if count else 0)
        lines.append(
            f"[{edges[index]:>8.1f}, {edges[index + 1]:>8.1f}]  "
            f"{count:>4}  {bar}"
        )
    return "\n".join(lines)
