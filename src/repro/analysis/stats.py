"""Summary statistics for Monte-Carlo trial results.

Confidence intervals use the Student-t quantile when scipy is available
and fall back to the normal approximation otherwise (the library's only
hard dependencies are the standard library; scipy/numpy are optional
extras).  All of the paper's quantitative claims are about *expected*
values, so the primary object here is a mean with a confidence interval.
"""

from __future__ import annotations

import math
import statistics
from dataclasses import dataclass
from typing import Sequence

from repro.errors import InsufficientDataError

try:  # pragma: no cover - environment-dependent import
    from scipy import stats as _scipy_stats
except ImportError:  # pragma: no cover
    _scipy_stats = None


def _t_quantile(confidence: float, dof: int) -> float:
    """Two-sided Student-t quantile, with a normal fallback."""
    if _scipy_stats is not None:
        return float(_scipy_stats.t.ppf(0.5 + confidence / 2.0, dof))
    # Normal approximation (exact enough for dof >= 30; conservative
    # callers should install scipy).  Abramowitz-Stegun inverse-erf.
    p = 0.5 + confidence / 2.0
    # Beasley-Springer-Moro style rational approximation.
    a = [
        -3.969683028665376e01,
        2.209460984245205e02,
        -2.759285104469687e02,
        1.383577518672690e02,
        -3.066479806614716e01,
        2.506628277459239e00,
    ]
    b = [
        -5.447609879822406e01,
        1.615858368580409e02,
        -1.556989798598866e02,
        6.680131188771972e01,
        -1.328068155288572e01,
    ]
    q = p - 0.5
    r = q * q
    numerator = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5])
    denominator = ((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0
    return numerator * q / denominator


@dataclass(frozen=True)
class Summary:
    """Mean and spread of one metric over Monte-Carlo trials.

    Attributes:
        count: number of samples.
        mean: sample mean.
        stdev: sample standard deviation (0 for a single sample).
        minimum / maximum: range.
        ci_low / ci_high: confidence interval for the mean.
        confidence: the confidence level used.
    """

    count: int
    mean: float
    stdev: float
    minimum: float
    maximum: float
    ci_low: float
    ci_high: float
    confidence: float

    def __str__(self) -> str:
        return (
            f"{self.mean:.2f} ± {(self.ci_high - self.mean):.2f} "
            f"(n={self.count}, range [{self.minimum:.0f}, {self.maximum:.0f}])"
        )


def summarize(samples: Sequence[float], confidence: float = 0.95) -> Summary:
    """Summarise samples with a confidence interval for the mean.

    Raises:
        InsufficientDataError: with no samples at all.
    """
    if not samples:
        raise InsufficientDataError("cannot summarise zero samples")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    values = [float(v) for v in samples]
    count = len(values)
    mean = statistics.fmean(values)
    stdev = statistics.stdev(values) if count > 1 else 0.0
    if count > 1 and stdev > 0.0:
        half_width = _t_quantile(confidence, count - 1) * stdev / math.sqrt(count)
    else:
        half_width = 0.0
    return Summary(
        count=count,
        mean=mean,
        stdev=stdev,
        minimum=min(values),
        maximum=max(values),
        ci_low=mean - half_width,
        ci_high=mean + half_width,
        confidence=confidence,
    )


def proportion(successes: int, trials: int) -> float:
    """A guarded ratio for rate metrics.

    Raises:
        InsufficientDataError: when ``trials`` is zero.
    """
    if trials <= 0:
        raise InsufficientDataError("cannot compute a rate over zero trials")
    if not 0 <= successes <= trials:
        raise ValueError(
            f"successes {successes} out of range for trials {trials}"
        )
    return successes / trials
