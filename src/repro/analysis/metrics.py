"""Metric extraction from protocol outcomes.

Each metric corresponds to a quantity the paper reasons about:

* ``stages`` — agreement stages until the last nonfaulty decision
  (Lemma 8: expected < 4 with ``|coins| >= n``);
* ``rounds`` — asynchronous rounds until the last nonfaulty decision
  (Theorem 10: expected <= 14 for Protocol 2);
* ``ticks`` — largest clock reading at a decide step (Remark 1: <= 8K in
  failure-free on-time runs);
* safety flags — consistency, termination, validity conditions.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.api import ProtocolOutcome
from repro.errors import AnalysisError
from repro.sim.rounds import RoundAnalyzer
from repro.sim.trace import Run
from repro.telemetry import registry as telemetry
from repro.types import Decision, ProcessStatus


@dataclass(frozen=True)
class RunMetrics:
    """The standard metric bundle extracted from one run.

    Attributes:
        terminated: every nonfaulty program returned.
        consistent: at most one decision value in the run.
        decision: the unanimous decision bit, if any.
        rounds: asynchronous rounds to the last nonfaulty decision.
        ticks: max clock at a decide step.
        first_decision_ticks: min clock at a decide step (how early the
            first processor entered a decision state — the E13 metric).
        stages: max agreement stages started by a nonfaulty processor.
        decision_stage: max stage at which a nonfaulty processor decided.
        shared_coin_stages: max stages resolved with the shared coin list.
        private_coin_stages: max stages resolved with private flips.
        messages: total envelopes sent.
        events: total events in the run.
        crashes: number of crashed processors.
        on_time: whether the run had no late messages.
    """

    terminated: bool
    consistent: bool
    decision: int | None
    rounds: int | None
    ticks: int | None
    first_decision_ticks: int | None
    stages: int | None
    decision_stage: int | None
    shared_coin_stages: int | None
    private_coin_stages: int | None
    messages: int
    events: int
    crashes: int
    on_time: bool


def metrics_from_run(
    run: Run,
    analyzer: RoundAnalyzer | None = None,
    record: bool = True,
) -> RunMetrics:
    """Build the metric bundle from a recorded run alone.

    This is the trace-derivable subset: everything except the program
    stage telemetry (``stages``, ``decision_stage``, coin-source splits),
    which lives on the program objects and is therefore ``None`` here.
    Because it needs nothing but the :class:`~repro.sim.trace.Run`, the
    same function applies to live runs and to traces re-imported through
    :mod:`repro.telemetry.runio` — the JSONL round-trip tests assert the
    two agree exactly.
    """
    terminated = all(
        run.statuses.get(pid) is ProcessStatus.RETURNED
        for pid in run.nonfaulty()
    )
    rounds: int | None = None
    if terminated:
        try:
            if analyzer is None:
                analyzer = RoundAnalyzer(run)
            rounds = analyzer.max_decision_round()
        except AnalysisError:
            rounds = None
    decision_values = run.decision_values()
    decision = decision_values.pop() if len(decision_values) == 1 else None
    metrics = RunMetrics(
        terminated=terminated,
        consistent=run.agreement_holds(),
        decision=decision,
        rounds=rounds,
        ticks=run.max_decision_clock(),
        first_decision_ticks=min(
            (c for c in run.decision_clocks.values() if c is not None),
            default=None,
        ),
        stages=None,
        decision_stage=None,
        shared_coin_stages=None,
        private_coin_stages=None,
        messages=run.messages_sent(),
        events=run.event_count,
        crashes=len(run.faulty()),
        on_time=run.is_on_time(),
    )
    if record:
        _record_run_metrics(metrics)
    return metrics


def _record_run_metrics(metrics: RunMetrics) -> None:
    """Mirror a metric bundle into the telemetry registry.

    Wired into both extraction paths so experiment tables (built from
    :class:`RunMetrics`) and registry snapshots agree by construction.
    """
    if not telemetry.enabled():
        return
    telemetry.count(
        "analysis_runs_total",
        help="metric bundles extracted, by outcome flags",
        terminated=metrics.terminated,
        consistent=metrics.consistent,
        on_time=metrics.on_time,
    )
    if metrics.rounds is not None:
        telemetry.observe(
            "analysis_decision_rounds",
            metrics.rounds,
            help="rounds to the last nonfaulty decision (Theorem 10)",
            buckets=telemetry.COUNT_BUCKETS,
        )
    if metrics.ticks is not None:
        telemetry.observe(
            "analysis_decision_ticks",
            metrics.ticks,
            help="clock ticks to the last decision (Remark 1)",
            buckets=(8, 16, 32, 64, 128, 256, 512, 1024),
        )
    if metrics.stages is not None:
        telemetry.observe(
            "analysis_stages",
            metrics.stages,
            help="agreement stages started (Lemma 8)",
            buckets=telemetry.COUNT_BUCKETS,
        )
    telemetry.observe(
        "analysis_messages",
        metrics.messages,
        help="envelopes sent per run",
        buckets=(16, 64, 256, 1024, 4096, 16384),
    )


def extract_metrics(
    outcome: ProtocolOutcome,
    programs: list | None = None,
) -> RunMetrics:
    """Build the metric bundle for one outcome.

    Args:
        outcome: the protocol outcome.
        programs: the program objects (for stage telemetry).  When omitted,
            stage metrics are ``None``.
    """
    run = outcome.run
    nonfaulty = run.nonfaulty()
    stages: int | None = None
    decision_stage: int | None = None
    shared_coin_stages: int | None = None
    private_coin_stages: int | None = None
    if programs is not None:
        stage_values = []
        decision_stage_values = []
        shared_values = []
        private_values = []
        for program in programs:
            if program.pid not in nonfaulty:
                continue
            stats = getattr(program, "stats", None)
            if stats is None:
                continue
            agreement = getattr(stats, "agreement", stats)
            if agreement is None:
                continue
            stage_count = getattr(agreement, "stages_started", None)
            if stage_count is not None:
                stage_values.append(stage_count)
            decided_at = getattr(agreement, "decision_stage", None)
            if decided_at is not None:
                decision_stage_values.append(decided_at)
            shared_values.append(getattr(agreement, "shared_coin_stages", 0))
            private_values.append(getattr(agreement, "private_coin_stages", 0))
        stages = max(stage_values) if stage_values else None
        decision_stage = (
            max(decision_stage_values) if decision_stage_values else None
        )
        shared_coin_stages = max(shared_values) if shared_values else None
        private_coin_stages = max(private_values) if private_values else None
    base = metrics_from_run(
        run,
        analyzer=outcome.rounds if outcome.terminated else None,
        record=False,
    )
    metrics = replace(
        base,
        stages=stages,
        decision_stage=decision_stage,
        shared_coin_stages=shared_coin_stages,
        private_coin_stages=private_coin_stages,
    )
    _record_run_metrics(metrics)
    return metrics


def commit_validity_satisfied(
    outcome: ProtocolOutcome, initial_votes: list[int]
) -> bool:
    """Check the paper's commit validity condition on one run.

    If the run is deciding, all initial votes are 1, and the run is
    failure-free and on time, the nonfaulty processors must decide 1.
    Vacuously true otherwise.
    """
    run = outcome.run
    preconditions = (
        run.is_deciding()
        and all(v == 1 for v in initial_votes)
        and not run.faulty()
        and run.is_on_time()
    )
    if not preconditions:
        return True
    return all(
        run.decisions[pid] == int(Decision.COMMIT) for pid in run.nonfaulty()
    )


def abort_validity_satisfied(
    outcome: ProtocolOutcome, initial_votes: list[int]
) -> bool:
    """Check the paper's abort validity condition on one run.

    If the run is deciding and any initial vote is 0, the nonfaulty
    processors must decide 0 — no matter the timing behaviour.
    """
    run = outcome.run
    if not run.is_deciding() or all(v == 1 for v in initial_votes):
        return True
    return all(
        run.decisions[pid] == int(Decision.ABORT) for pid in run.nonfaulty()
    )
