"""ASCII result tables.

Every experiment renders its results as a plain-text table with the same
row/column vocabulary the EXPERIMENTS.md document uses, so the benchmark
output and the written record stay literally comparable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence


@dataclass
class ResultTable:
    """A titled grid of stringifiable cells.

    Attributes:
        title: table caption (usually the experiment id and claim).
        columns: header cells.
        rows: body rows; each the same length as ``columns``.
        notes: free-form footnotes printed under the table.
    """

    title: str
    columns: Sequence[str]
    rows: list[list[object]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, *cells: object) -> None:
        """Append one row (must match the column count)."""
        if len(cells) != len(self.columns):
            raise ValueError(
                f"row has {len(cells)} cells for {len(self.columns)} columns"
            )
        self.rows.append(list(cells))

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def render(self) -> str:
        """Render the table as aligned monospace text."""
        header = [str(c) for c in self.columns]
        body = [[_format_cell(c) for c in row] for row in self.rows]
        widths = [len(h) for h in header]
        for row in body:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))

        def line(cells: Sequence[str]) -> str:
            return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

        rule = "  ".join("-" * w for w in widths)
        parts = [self.title, rule, line(header), rule]
        parts.extend(line(row) for row in body)
        parts.append(rule)
        for note in self.notes:
            parts.append(f"* {note}")
        return "\n".join(parts)

    def to_dict(self) -> dict:
        """Plain-data view of the table for JSON export.

        Cells are kept as-is (JSON-native values pass through; anything
        exotic is stringified the same way :meth:`render` would show it),
        so machine consumers see the numbers, not their formatting.
        """
        return {
            "title": self.title,
            "columns": [str(c) for c in self.columns],
            "rows": [
                [
                    cell
                    if cell is None or isinstance(cell, (bool, int, float, str))
                    else _format_cell(cell)
                    for cell in row
                ]
                for row in self.rows
            ],
            "notes": list(self.notes),
        }

    def to_markdown(self) -> str:
        """Render the table as GitHub-flavoured markdown."""
        header = [str(c) for c in self.columns]
        parts = [f"**{self.title}**", ""]
        parts.append("| " + " | ".join(header) + " |")
        parts.append("|" + "|".join("---" for _ in header) + "|")
        for row in self.rows:
            parts.append("| " + " | ".join(_format_cell(c) for c in row) + " |")
        for note in self.notes:
            parts.append("")
            parts.append(f"*{note}*")
        return "\n".join(parts)


def _format_cell(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.2f}"
    if cell is None:
        return "-"
    return str(cell)
