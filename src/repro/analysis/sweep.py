"""Parameter sweeps: run a trial batch per point of a parameter grid."""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Iterable, Mapping, Sequence

from repro.analysis.montecarlo import TrialBatch


@dataclass(frozen=True)
class SweepPoint:
    """One grid point with its trial batch."""

    params: Mapping[str, object]
    batch: TrialBatch

    def __getitem__(self, key: str) -> object:
        return self.params[key]


def grid(**axes: Sequence[object]) -> Iterable[dict[str, object]]:
    """Cartesian product of named parameter axes, in axis order.

    Example::

        for point in grid(n=[4, 8], crashes=[0, 1]):
            ...  # {'n': 4, 'crashes': 0}, {'n': 4, 'crashes': 1}, ...
    """
    names = list(axes)
    for values in itertools.product(*(axes[name] for name in names)):
        yield dict(zip(names, values))


def sweep(
    axes: Mapping[str, Sequence[object]],
    run_point: Callable[[dict[str, object]], TrialBatch],
) -> list[SweepPoint]:
    """Run ``run_point`` for every grid point and collect results."""
    points = []
    for params in grid(**dict(axes)):
        points.append(SweepPoint(params=params, batch=run_point(params)))
    return points
