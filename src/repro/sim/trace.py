"""Run traces: the full-information record of a simulation.

A :class:`Run` is the analyst's object — unlike the adversary's
:class:`~repro.sim.pattern.PatternView` it records everything, including
payloads, decisions, and per-step clock readings, so that lateness,
asynchronous rounds, and correctness conditions can be checked post-hoc.

The lateness predicate implements the paper's definition directly: message
``m`` is *late* in run ``R`` if any processor takes more than ``K`` steps
between the event where ``m`` is sent and the event where ``m`` is
received; a run is *on-time* if it contains no late message.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Iterable

from repro.sim.message import Envelope, MessageId
from repro.types import ProcessStatus


@dataclass(frozen=True)
class TraceEvent:
    """Full-information record of one applied event.

    Attributes:
        index: global event index (0-based).
        kind: ``"step"`` or ``"crash"``.
        actor: the processor involved.
        clock_after: the actor's clock after the event.
        delivered: envelope ids received at this event.
        sent: envelope ids emitted at this event.
        decision_after: the actor's decision after the event (None if
            undecided), recorded so analyses can locate decide steps.
        halted_after: whether the actor's program had returned after the
            event.
    """

    index: int
    kind: str
    actor: int
    clock_after: int
    delivered: tuple[MessageId, ...]
    sent: tuple[MessageId, ...]
    decision_after: int | None
    halted_after: bool


@dataclass
class Run:
    """The complete record of one simulation run.

    Attributes:
        n: number of processors.
        t: fault budget the adversary was configured with.
        K: on-time bound in clock ticks.
        events: chronological trace events.
        envelopes: every envelope ever sent, by id.
        statuses: final lifecycle status per processor.
        decisions: final decision per processor (None if undecided).
        decision_clocks: clock reading at each processor's decide step.
        outputs: program return values per processor (None if not returned).
    """

    n: int
    t: int
    K: int
    events: list[TraceEvent] = field(default_factory=list)
    envelopes: dict[MessageId, Envelope] = field(default_factory=dict)
    statuses: dict[int, ProcessStatus] = field(default_factory=dict)
    decisions: dict[int, int | None] = field(default_factory=dict)
    decision_clocks: dict[int, int | None] = field(default_factory=dict)
    outputs: dict[int, object] = field(default_factory=dict)

    # Cache: per-processor sorted list of event indices at which the
    # processor took a step; built lazily for lateness queries.
    _step_indices: dict[int, list[int]] | None = field(
        default=None, repr=False, compare=False
    )
    # Cache: the late-message list.  A Run is assembled once, after the
    # simulation finishes, so lateness is immutable; analyses typically ask
    # both ``is_on_time`` and ``late_count``, which would otherwise scan
    # every envelope twice.
    _late_cache: list[Envelope] | None = field(
        default=None, repr=False, compare=False
    )

    # -- basic queries ------------------------------------------------------

    @property
    def event_count(self) -> int:
        """Number of events in the run."""
        return len(self.events)

    def faulty(self) -> set[int]:
        """Processors that crashed in this run."""
        return {
            pid
            for pid, status in self.statuses.items()
            if status is ProcessStatus.CRASHED
        }

    def nonfaulty(self) -> set[int]:
        """Processors that did not crash.

        In the formal model "nonfaulty" means "takes infinitely many
        steps"; for a finite recorded run we identify nonfaulty with
        not-crashed, which is the standard reading for terminating runs.
        """
        return set(range(self.n)) - self.faulty()

    def decision_values(self) -> set[int]:
        """The set of values decided by any processor."""
        return {d for d in self.decisions.values() if d is not None}

    def is_deciding(self) -> bool:
        """Whether every nonfaulty processor decided."""
        return all(self.decisions.get(pid) is not None for pid in self.nonfaulty())

    def agreement_holds(self) -> bool:
        """The paper's agreement condition: at most one decision value."""
        return len(self.decision_values()) <= 1

    # -- lateness -------------------------------------------------------------

    def _steps_of(self, pid: int) -> list[int]:
        """Sorted event indices at which ``pid`` took a step."""
        if self._step_indices is None:
            indices: dict[int, list[int]] = {p: [] for p in range(self.n)}
            for event in self.events:
                if event.kind == "step":
                    indices[event.actor].append(event.index)
            self._step_indices = indices
        return self._step_indices[pid]

    def steps_in_interval(self, pid: int, first_event: int, last_event: int) -> int:
        """How many steps ``pid`` took in the event interval (exclusive ends).

        Counts step events with ``first_event < index < last_event``, which
        matches "takes more than K steps *between* the send event and the
        receive event".
        """
        steps = self._steps_of(pid)
        lo = bisect.bisect_right(steps, first_event)
        hi = bisect.bisect_left(steps, last_event)
        return hi - lo

    def is_late(self, envelope: Envelope) -> bool:
        """The paper's lateness predicate for one delivered message.

        An undelivered envelope is not (yet) late — lateness is defined via
        the receive event.  Delivery-fairness violations are reported by the
        admissibility monitor instead.
        """
        if envelope.receive_event is None:
            return False
        return any(
            self.steps_in_interval(pid, envelope.send_event, envelope.receive_event)
            > self.K
            for pid in range(self.n)
        )

    def late_messages(self) -> list[Envelope]:
        """Every late message in the run (cached after the first call)."""
        if self._late_cache is None:
            self._late_cache = [
                env for env in self.envelopes.values() if self.is_late(env)
            ]
        return list(self._late_cache)

    def is_on_time(self) -> bool:
        """Whether the run contains no late messages."""
        return not self.late_messages()

    # -- convenience ----------------------------------------------------------

    def envelopes_from(self, sender: int) -> list[Envelope]:
        """All envelopes sent by ``sender``, in send order."""
        return sorted(
            (e for e in self.envelopes.values() if e.sender == sender),
            key=lambda e: e.send_event,
        )

    def delivered_envelopes(self) -> Iterable[Envelope]:
        """All envelopes that were received."""
        return (e for e in self.envelopes.values() if e.delivered)

    def messages_sent(self) -> int:
        """Total number of envelopes sent in the run."""
        return len(self.envelopes)

    def payload_kind_counts(self, delivered_only: bool = False) -> dict[str, int]:
        """Payload tallies by payload class name, sorted by kind.

        The unit is the protocol message (payload), not the envelope: one
        envelope packs every payload one step addressed to one recipient,
        so payload counts are the paper's message-complexity measure while
        :meth:`messages_sent` counts scheduled deliveries.
        """
        counts: dict[str, int] = {}
        for envelope in self.envelopes.values():
            if delivered_only and not envelope.delivered:
                continue
            for payload in envelope.payloads:
                kind = type(payload).__name__
                counts[kind] = counts.get(kind, 0) + 1
        return dict(sorted(counts.items()))

    def late_count(self) -> int:
        """Number of late messages (the per-phase lateness counter)."""
        return len(self.late_messages())

    def max_decision_clock(self) -> int | None:
        """The largest clock reading at which any processor decided.

        ``None`` when no processor decided.  This is the metric of the
        paper's Remark 1 ("all the processors decide within at most 8K
        clock ticks").
        """
        clocks = [c for c in self.decision_clocks.values() if c is not None]
        return max(clocks) if clocks else None
