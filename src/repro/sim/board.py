"""The internal bulletin board on which a processor posts received messages.

The paper: "As a processor receives messages, it posts them on an internal
bulletin board ... each time a processor takes a step it posts the messages
received and then checks if the condition following the wait has been
achieved, by looking at all the messages received so far."

The board therefore only ever grows.  It offers matcher-based counting (the
work-horse of Protocol 1's waits) plus a simple type index so protocols can
retrieve, e.g., "all stage-(2, s) messages seen so far" without scanning
the full history each step.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable, Iterable

from repro.sim.message import Payload, ReceivedPayload


class BulletinBoard:
    """Append-only store of everything one processor has received."""

    def __init__(self) -> None:
        self._entries: list[ReceivedPayload] = []
        self._by_key: dict[object, list[ReceivedPayload]] = defaultdict(list)
        self._senders_by_key: dict[object, set[int]] = defaultdict(set)

    def __len__(self) -> int:
        return len(self._entries)

    def post(self, entry: ReceivedPayload) -> None:
        """Record one received payload."""
        self._entries.append(entry)
        key = getattr(entry.payload, "board_key", None)
        if callable(key):
            value = key()
            self._by_key[value].append(entry)
            self._senders_by_key[value].add(entry.sender)

    def post_all(self, entries: Iterable[ReceivedPayload]) -> None:
        """Record several received payloads in order."""
        for entry in entries:
            self.post(entry)

    def entries(self) -> list[ReceivedPayload]:
        """All entries, in receipt order (a copy)."""
        return list(self._entries)

    def by_key(self, key: object) -> list[ReceivedPayload]:
        """Entries whose payload declared ``board_key() == key``."""
        return list(self._by_key.get(key, ()))

    def senders_for_key(self, key: object) -> set[int]:
        """Distinct senders of entries under ``key`` (O(1) per post)."""
        return self._senders_by_key.get(key, set())

    def count_for_key(self, key: object) -> int:
        """Number of distinct senders under ``key``."""
        return len(self._senders_by_key.get(key, ()))

    def matching(
        self, matcher: Callable[[Payload], bool]
    ) -> list[ReceivedPayload]:
        """All entries whose payload satisfies ``matcher``."""
        return [e for e in self._entries if matcher(e.payload)]

    def count_matching(
        self, matcher: Callable[[Payload], bool], distinct_senders: bool = True
    ) -> int:
        """Number of matching entries, optionally one per distinct sender."""
        if not distinct_senders:
            return sum(1 for e in self._entries if matcher(e.payload))
        senders = {e.sender for e in self._entries if matcher(e.payload)}
        return len(senders)

    def senders_matching(
        self, matcher: Callable[[Payload], bool]
    ) -> set[int]:
        """The set of senders whose payload satisfies ``matcher``."""
        return {e.sender for e in self._entries if matcher(e.payload)}
