"""Wait conditions — the ``wait`` construct of the paper's pseudocode.

The paper describes waits operationally: a processor posts received
messages on an internal bulletin board and, at each step, checks whether
the condition following the ``wait`` has been achieved by looking at all
messages received so far.  Protocol programs here are generators that
``yield`` :class:`WaitCondition` objects; the hosting driver (simulator or
asyncio node) re-evaluates the pending condition at every step.

Conditions are *armed* when first yielded, which is when clock-relative
deadlines ("... or 2K clock ticks") are fixed.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.sim.board import BulletinBoard

from repro.sim.message import Payload


class WaitCondition:
    """Base class for conditions a protocol program can block on."""

    def arm(self, clock: int) -> None:
        """Record the clock at which the program reached this wait.

        The default is stateless; :class:`WithTimeout` uses the armed clock
        to fix its deadline.
        """

    def satisfied(self, board: "BulletinBoard", clock: int) -> bool:
        """Whether the program may resume, given the board and own clock."""
        raise NotImplementedError

    def __and__(self, other: "WaitCondition") -> "WaitAll":
        return WaitAll((self, other))

    def __or__(self, other: "WaitCondition") -> "WaitAny":
        return WaitAny((self, other))


class MessageCount(WaitCondition):
    """Wait until ``count`` matching payloads (from distinct senders) arrive.

    ``matcher`` receives each payload; counting is per distinct sender by
    default, which is the reading the crash-fault proofs rely on ("receive
    n - t messages of the form (1, s, *)" counts one per processor).

    Passing ``key`` (a payload ``board_key`` value the matcher is
    equivalent to) switches counting to the board's O(1) per-key
    distinct-sender index — essential for long runs, where a full-board
    scan per step would be quadratic.
    """

    def __init__(
        self,
        matcher: Callable[[Payload], bool],
        count: int,
        distinct_senders: bool = True,
        key: object = None,
    ) -> None:
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        self.matcher = matcher
        self.count = count
        self.distinct_senders = distinct_senders
        self.key = key

    def satisfied(self, board: "BulletinBoard", clock: int) -> bool:
        if self.key is not None and self.distinct_senders:
            return board.count_for_key(self.key) >= self.count
        return board.count_matching(self.matcher, self.distinct_senders) >= self.count

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MessageCount(count={self.count}, key={self.key!r})"


class Predicate(WaitCondition):
    """Wait until an arbitrary predicate over the board becomes true."""

    def __init__(
        self, predicate: Callable[["BulletinBoard", int], bool], label: str = ""
    ) -> None:
        self.predicate = predicate
        self.label = label

    def satisfied(self, board: "BulletinBoard", clock: int) -> bool:
        return self.predicate(board, clock)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Predicate({self.label or self.predicate!r})"


class ClockAtLeast(WaitCondition):
    """Wait until the processor's own clock reaches an absolute value."""

    def __init__(self, clock_value: int) -> None:
        self.clock_value = clock_value

    def satisfied(self, board: "BulletinBoard", clock: int) -> bool:
        return clock >= self.clock_value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ClockAtLeast({self.clock_value})"


class Never(WaitCondition):
    """A wait that never completes (used to park halted programs)."""

    def satisfied(self, board: "BulletinBoard", clock: int) -> bool:
        return False


class WithTimeout(WaitCondition):
    """``inner`` or ``ticks`` of the local clock, whichever happens first.

    Realises the paper's "wait for n GO messages or 2K clock ticks": the
    deadline is fixed relative to the clock reading at the moment the wait
    is armed.
    """

    def __init__(self, inner: WaitCondition, ticks: int) -> None:
        if ticks < 0:
            raise ValueError(f"timeout ticks must be non-negative, got {ticks}")
        self.inner = inner
        self.ticks = ticks
        self.deadline: int | None = None

    def arm(self, clock: int) -> None:
        self.inner.arm(clock)
        if self.deadline is None:
            self.deadline = clock + self.ticks

    def satisfied(self, board: "BulletinBoard", clock: int) -> bool:
        if self.inner.satisfied(board, clock):
            return True
        return self.deadline is not None and clock >= self.deadline

    def timed_out(self, board: "BulletinBoard", clock: int) -> bool:
        """Whether the wait completed by deadline rather than by ``inner``.

        Protocol code calls this right after resuming to branch on the
        "have not received n GO messages" style checks.
        """
        return not self.inner.satisfied(board, clock)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"WithTimeout({self.inner!r}, ticks={self.ticks})"


class WaitAll(WaitCondition):
    """Conjunction of several conditions."""

    def __init__(self, conditions: Sequence[WaitCondition]) -> None:
        self.conditions = tuple(conditions)

    def arm(self, clock: int) -> None:
        for condition in self.conditions:
            condition.arm(clock)

    def satisfied(self, board: "BulletinBoard", clock: int) -> bool:
        return all(c.satisfied(board, clock) for c in self.conditions)


class WaitAny(WaitCondition):
    """Disjunction of several conditions."""

    def __init__(self, conditions: Sequence[WaitCondition]) -> None:
        self.conditions = tuple(conditions)

    def arm(self, clock: int) -> None:
        for condition in self.conditions:
            condition.arm(clock)

    def satisfied(self, board: "BulletinBoard", clock: int) -> bool:
        return any(c.satisfied(board, clock) for c in self.conditions)
