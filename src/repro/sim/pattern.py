"""The message pattern — everything the adversary is allowed to see.

Section 2.3 of the paper defines the adversary as a function of the
*message pattern*: the sequence of triples recording, for each event, which
processor stepped, which earlier send-events' messages it received, and to
whom it sent messages.  Contents of messages, local states, and coin flips
are hidden "unless deducible from the pattern of communication".

:class:`PatternView` is the read-only facade handed to adversaries.  It
exposes pattern data and pattern-deducible derivatives (per-processor step
counts, pending-message metadata, crash history) and nothing else.  The
scheduler holds the full-information structures; adversaries only ever
receive this view, so information hygiene is enforced by construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from repro.sim.message import MessageId

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.scheduler import Simulation


@dataclass(frozen=True)
class SentRecord:
    """Pattern record of one envelope send: id and recipient only."""

    message_id: MessageId
    recipient: int


@dataclass(frozen=True)
class PatternEntry:
    """One element of the message pattern.

    ``kind`` is ``"step"`` for an ordinary event ``(p, M, f)`` and
    ``"crash"`` for an explicit failure.  ``delivered`` lists the ids of
    the envelopes received at this event; ``sent`` the envelopes emitted.
    """

    index: int
    kind: str
    actor: int
    delivered: tuple[MessageId, ...]
    sent: tuple[SentRecord, ...]


@dataclass(frozen=True)
class PendingMessage:
    """Pattern-visible metadata of one undelivered envelope.

    The adversary may see who sent it, at which event, and the sender's
    clock at that event (all deducible from the pattern) — never the
    payloads.
    """

    message_id: MessageId
    sender: int
    recipient: int
    send_event: int
    send_clock: int
    guaranteed: bool


class PatternHistory(Sequence):
    """A zero-copy, read-only window onto the live message pattern.

    Adversaries may consult the full history every decision; copying the
    pattern list per decision made that O(events²) over a run.  This
    wrapper exposes the scheduler's live list through the ``Sequence``
    protocol only — no mutators — so reads are O(1) and iteration incurs
    no allocation.  The window always reflects the pattern *so far*.
    """

    __slots__ = ("_entries",)

    def __init__(self, entries: list[PatternEntry]) -> None:
        self._entries = entries

    def __len__(self) -> int:
        return len(self._entries)

    def __getitem__(self, index):
        return self._entries[index]

    def __iter__(self):
        return iter(self._entries)

    def __repr__(self) -> str:
        return f"PatternHistory({len(self._entries)} events)"


class PatternView:
    """Read-only, contents-free view of a simulation for adversaries."""

    def __init__(self, simulation: "Simulation") -> None:
        self._sim = simulation

    # -- static parameters ---------------------------------------------------

    @property
    def n(self) -> int:
        """Number of processors."""
        return self._sim.n

    @property
    def t(self) -> int:
        """The fault budget the adversary is expected to respect."""
        return self._sim.t

    @property
    def K(self) -> int:
        """The on-time delivery bound in clock ticks."""
        return self._sim.K

    # -- dynamic pattern data --------------------------------------------------

    @property
    def event_count(self) -> int:
        """Number of events applied so far."""
        return self._sim.event_count

    def clock(self, pid: int) -> int:
        """Steps processor ``pid`` has taken (deducible from the pattern)."""
        return self._sim.process_clock(pid)

    def crashed(self) -> frozenset[int]:
        """Processors the adversary has crashed so far."""
        return self._sim.crashed_frozen()

    def alive(self) -> list[int]:
        """Processors still eligible to take steps, ascending by id."""
        return list(self._sim.alive_pids())

    def pending(self, pid: int) -> list[PendingMessage]:
        """Metadata of the envelopes sitting in ``pid``'s buffer."""
        return self._sim.pending_metadata(pid)

    def pending_ids(self, pid: int) -> list[MessageId]:
        """Ids of the envelopes in ``pid``'s buffer, oldest first."""
        return [m.message_id for m in self.pending(pid)]

    def history(self) -> Sequence[PatternEntry]:
        """The full message pattern so far (a live, read-only window)."""
        return self._sim.pattern_history()

    def steps_between(self, first_event: int, last_event: int) -> int:
        """Largest per-processor step count within an event interval.

        Used by delay-sensitive adversaries to keep (or break) the on-time
        property: a message is late exactly when this exceeds ``K`` between
        its send and receive events.
        """
        return self._sim.max_steps_between(first_event, last_event)
