"""Per-processor message buffers.

The model gives every processor a buffer holding messages that have been
sent to it but not yet received; an event may deliver any subset of the
buffer.  The buffer is a *set* in the paper; we keep insertion order for
determinism (adversaries that say "deliver everything pending" must produce
identical runs across invocations), but membership semantics are set-like:
each envelope is delivered at most once.

The buffer is on the scheduler's per-event hot path, so all operations
are indexed: deliveries resolve through the id map and an insertion-rank
map (``take`` is O(k log k) in the delivered count, not O(pending)), and
per-sender queries go through a sender index instead of a scan.  The
``version`` counter lets callers (the scheduler's pattern-metadata cache)
invalidate derived views only when the buffer actually changed.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.errors import SchedulingError
from repro.sim.message import Envelope, MessageId


class MessageBuffer:
    """An ordered set of undelivered envelopes for one processor."""

    __slots__ = ("_pending", "_rank", "_by_sender", "_counter", "version")

    def __init__(self) -> None:
        self._pending: dict[MessageId, Envelope] = {}
        #: Insertion rank per pending id; delivery order follows it.
        self._rank: dict[MessageId, int] = {}
        #: Sender index: sender pid -> insertion-ordered id map.
        self._by_sender: dict[int, dict[MessageId, Envelope]] = {}
        self._counter = 0
        #: Bumped on every mutation; lets derived views cache safely.
        self.version = 0

    def __len__(self) -> int:
        return len(self._pending)

    def __contains__(self, message_id: MessageId) -> bool:
        return message_id in self._pending

    def __iter__(self) -> Iterator[Envelope]:
        return iter(self._pending.values())

    def add(self, envelope: Envelope) -> None:
        """Insert a newly sent envelope.

        Raises:
            SchedulingError: if an envelope with the same id is already
                pending (ids are run-unique, so this indicates a kernel bug
                or a hand-built schedule error).
        """
        message_id = envelope.message_id
        if message_id in self._pending:
            raise SchedulingError(
                f"duplicate envelope {message_id} added to buffer"
            )
        self._pending[message_id] = envelope
        self._rank[message_id] = self._counter
        self._counter += 1
        self._by_sender.setdefault(envelope.sender, {})[message_id] = envelope
        self.version += 1

    def _remove(self, message_id: MessageId) -> Envelope:
        envelope = self._pending.pop(message_id)
        del self._rank[message_id]
        sender_map = self._by_sender[envelope.sender]
        del sender_map[message_id]
        if not sender_map:
            del self._by_sender[envelope.sender]
        return envelope

    def take(self, message_ids: Iterable[MessageId]) -> list[Envelope]:
        """Remove and return the envelopes with the given ids.

        The order of the returned list follows buffer insertion order, not
        the order of ``message_ids``, so delivery is deterministic no matter
        how an adversary happened to enumerate ids.

        Raises:
            SchedulingError: if any id is not pending — the event would not
                be *applicable* in the model's sense.
        """
        wanted = set(message_ids)
        if not wanted:
            return []
        rank = self._rank
        missing = [mid for mid in wanted if mid not in rank]
        if missing:
            raise SchedulingError(
                f"event not applicable: envelopes {sorted(missing)} are not "
                f"in the buffer"
            )
        ordered = sorted(wanted, key=rank.__getitem__)
        taken = [self._remove(mid) for mid in ordered]
        self.version += 1
        return taken

    def peek_ids(self) -> list[MessageId]:
        """Ids of all pending envelopes, oldest first."""
        return list(self._pending.keys())

    def pending_from(self, sender: int) -> list[Envelope]:
        """All pending envelopes from ``sender``, oldest first."""
        return list(self._by_sender.get(sender, {}).values())

    def drop(self, message_id: MessageId) -> Envelope:
        """Remove an envelope without delivering it.

        Only legal for non-guaranteed envelopes (sent at a crashed sender's
        final step); the scheduler enforces that restriction.
        """
        if message_id not in self._pending:
            raise SchedulingError(
                f"cannot drop envelope {message_id}: not pending"
            )
        envelope = self._remove(message_id)
        self.version += 1
        return envelope
