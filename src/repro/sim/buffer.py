"""Per-processor message buffers.

The model gives every processor a buffer holding messages that have been
sent to it but not yet received; an event may deliver any subset of the
buffer.  The buffer is a *set* in the paper; we keep insertion order for
determinism (adversaries that say "deliver everything pending" must produce
identical runs across invocations), but membership semantics are set-like:
each envelope is delivered at most once.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.errors import SchedulingError
from repro.sim.message import Envelope, MessageId


class MessageBuffer:
    """An ordered set of undelivered envelopes for one processor."""

    def __init__(self) -> None:
        self._pending: dict[MessageId, Envelope] = {}

    def __len__(self) -> int:
        return len(self._pending)

    def __contains__(self, message_id: MessageId) -> bool:
        return message_id in self._pending

    def __iter__(self) -> Iterator[Envelope]:
        return iter(self._pending.values())

    def add(self, envelope: Envelope) -> None:
        """Insert a newly sent envelope.

        Raises:
            SchedulingError: if an envelope with the same id is already
                pending (ids are run-unique, so this indicates a kernel bug
                or a hand-built schedule error).
        """
        if envelope.message_id in self._pending:
            raise SchedulingError(
                f"duplicate envelope {envelope.message_id} added to buffer"
            )
        self._pending[envelope.message_id] = envelope

    def take(self, message_ids: Iterable[MessageId]) -> list[Envelope]:
        """Remove and return the envelopes with the given ids.

        The order of the returned list follows buffer insertion order, not
        the order of ``message_ids``, so delivery is deterministic no matter
        how an adversary happened to enumerate ids.

        Raises:
            SchedulingError: if any id is not pending — the event would not
                be *applicable* in the model's sense.
        """
        wanted = set(message_ids)
        missing = wanted - self._pending.keys()
        if missing:
            raise SchedulingError(
                f"event not applicable: envelopes {sorted(missing)} are not "
                f"in the buffer"
            )
        taken = [env for mid, env in self._pending.items() if mid in wanted]
        for envelope in taken:
            del self._pending[envelope.message_id]
        return taken

    def peek_ids(self) -> list[MessageId]:
        """Ids of all pending envelopes, oldest first."""
        return list(self._pending.keys())

    def pending_from(self, sender: int) -> list[Envelope]:
        """All pending envelopes from ``sender``, oldest first."""
        return [e for e in self._pending.values() if e.sender == sender]

    def drop(self, message_id: MessageId) -> Envelope:
        """Remove an envelope without delivering it.

        Only legal for non-guaranteed envelopes (sent at a crashed sender's
        final step); the scheduler enforces that restriction.
        """
        try:
            return self._pending.pop(message_id)
        except KeyError:
            raise SchedulingError(
                f"cannot drop envelope {message_id}: not pending"
            ) from None
