"""Monitoring ``t``-admissibility of adversary behaviour.

A run is ``t``-admissible when (i) its schedule is applicable — the kernel
enforces that unconditionally, rejecting inapplicable events —, (ii) at
most ``t`` processors are faulty, and (iii) every guaranteed message sent
to a nonfaulty processor is eventually received.  Condition (iii) is a
liveness property of infinite runs; for the finite prefixes a simulation
produces we report the *fairness debt*: guaranteed messages to nonfaulty
processors still undelivered when the run stopped.  A terminated run (all
programs returned) with debt is fine — the protocol finished without those
messages.  A horizon run with debt may indicate an unfair adversary rather
than a blocking protocol, so experiments distinguish the two.

The paper's definition also requires that some nonfaulty processor receive
a message in the run (to rule out penalising protocols that were never
started); the report records that too.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.scheduler import Simulation


@dataclass(frozen=True)
class AdmissibilityReport:
    """Summary of an adversary's compliance with ``t``-admissibility.

    Attributes:
        t: the configured fault budget.
        crashes: processors crashed, in crash order.
        within_fault_budget: ``len(crashes) <= t``.
        undelivered_guaranteed: count of guaranteed envelopes addressed to
            nonfaulty processors still pending when the run stopped.
        some_nonfaulty_received: whether any nonfaulty processor received a
            message (part of the definition of a t-admissible adversary).
    """

    t: int
    crashes: tuple[int, ...]
    within_fault_budget: bool
    undelivered_guaranteed: int
    some_nonfaulty_received: bool

    @property
    def admissible_so_far(self) -> bool:
        """Whether nothing observed so far rules out ``t``-admissibility.

        Fairness debt does not count against a finite prefix: an admissible
        adversary may simply not have delivered yet.
        """
        return self.within_fault_budget


@dataclass
class AdmissibilityMonitor:
    """Accumulates admissibility evidence during a simulation."""

    n: int
    t: int
    crash_order: list[int] = field(default_factory=list)

    def record_crash(self, pid: int) -> None:
        """Note a crash decision."""
        self.crash_order.append(pid)

    def report(self, simulation: "Simulation") -> AdmissibilityReport:
        """Build the report for the simulation's current state."""
        crashed = set(self.crash_order)
        debt = 0
        for pid in range(self.n):
            if pid in crashed:
                continue
            for env in simulation.buffers[pid]:
                if env.guaranteed:
                    debt += 1
        some_received = any(
            event.kind == "step" and event.delivered and event.actor not in crashed
            for event in simulation.pattern_entries()
        )
        return AdmissibilityReport(
            t=self.t,
            crashes=tuple(self.crash_order),
            within_fault_budget=len(self.crash_order) <= self.t,
            undelivered_guaranteed=debt,
            some_nonfaulty_received=some_received,
        )
