"""Messages and envelopes.

A *payload* is a typed protocol message (e.g. a stage message ``(1, s, v)``
of Protocol 1 or a GO message of Protocol 2).  The model lets a processor
send at most one message to each recipient per step, while one step of our
generator-driven programs may emit several logical payloads; the kernel
therefore packs all payloads addressed to one recipient in one step into a
single :class:`Envelope`, which is the unit the adversary schedules.

Envelopes carry only *pattern* metadata in the clear (sender, recipient,
send event index); the adversary API never exposes ``payloads``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, NewType

#: Globally unique identifier of an envelope within one run.  Doubles as
#: the "integer indexing the event that sent the message" in the paper's
#: message-pattern definition (we index by envelope rather than event; the
#: send event index is carried alongside).
MessageId = NewType("MessageId", int)


class Payload:
    """Base class for protocol message payloads.

    Subclasses are small frozen dataclasses defined by each protocol.  The
    base class exists so the kernel can type-annotate containers without
    knowing any protocol's message vocabulary.
    """

    __slots__ = ()


@dataclass(frozen=True)
class RawPayload(Payload):
    """An untyped payload for tests and toy protocols."""

    data: Any


@dataclass
class Envelope:
    """One step's worth of payloads from one sender to one recipient.

    Attributes:
        message_id: unique within the run; allocated by the scheduler.
        sender: sending processor id.
        recipient: receiving processor id.
        payloads: the protocol messages packed into this envelope.
        send_event: global event index at which the envelope was sent.
        send_clock: sender's clock reading when the envelope was sent.
        receive_event: global event index of delivery, or ``None`` while
            the envelope sits in the recipient's buffer.
        guaranteed: false when the envelope was sent at what turned out to
            be the sender's final step (the paper's non-guaranteed
            messages, modelling a crash mid-broadcast).  Maintained by the
            scheduler when a crash occurs.
    """

    message_id: MessageId
    sender: int
    recipient: int
    payloads: tuple[Payload, ...]
    send_event: int
    send_clock: int
    receive_event: int | None = None
    guaranteed: bool = True
    #: Scheduler-owned cache of this envelope's pattern-visible metadata
    #: (a ``PendingMessage``); rebuilt when ``guaranteed`` flips.  Not
    #: part of the envelope's identity.
    pattern_meta: Any = field(default=None, repr=False, compare=False)

    @property
    def delivered(self) -> bool:
        """Whether the envelope has been received."""
        return self.receive_event is not None


class EnvelopeFactory:
    """Allocates run-unique :class:`MessageId` values."""

    def __init__(self) -> None:
        self._counter = itertools.count()

    def build(
        self,
        sender: int,
        recipient: int,
        payloads: tuple[Payload, ...],
        send_event: int,
        send_clock: int,
    ) -> Envelope:
        """Create an envelope with the next free id."""
        return Envelope(
            message_id=MessageId(next(self._counter)),
            sender=sender,
            recipient=recipient,
            payloads=payloads,
            send_event=send_event,
            send_clock=send_clock,
        )


@dataclass(frozen=True)
class ReceivedPayload:
    """A payload as seen on a processor's bulletin board.

    Couples the payload with its sender and local receipt bookkeeping so
    wait conditions can count distinct senders and protocols can reason
    about when something arrived on their own clock.
    """

    sender: int
    payload: Payload
    receive_clock: int
    message_id: MessageId = field(default=MessageId(-1))
