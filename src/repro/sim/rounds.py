"""Asynchronous rounds — the paper's time measure, computed post-hoc.

Definition (Section 2.2 of the paper), inductive per processor ``p``:

* round 1 begins when ``p`` first takes a step and ends when ``p``'s clock
  reads ``K``;
* round ``r > 1`` begins at the end of ``p``'s round ``r - 1`` and ends at
  the *later* of (a) ``K`` clock ticks after the end of round ``r - 1`` and
  (b) ``K`` clock ticks after ``p`` receives the last message sent by a
  nonfaulty processor ``q`` in ``q``'s round ``r - 1``.

Rounds are an analyst's measure: computing them requires knowing which
processors are nonfaulty, so they are derived from a completed
:class:`~repro.sim.trace.Run`, never inside a protocol.  The computation
iterates round-by-round: once every processor's round-``(r-1)`` boundary is
known, every message can be labelled with its sender's round at send time,
which determines the round-``r`` boundaries.

For finite recorded runs, messages that were sent but never delivered
cannot extend a round (the definition speaks of messages ``p`` *receives*);
this matches admissible infinite runs, where guaranteed messages to
nonfaulty processors do arrive eventually and the analyzer would see them.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field

from repro.errors import AnalysisError
from repro.sim.trace import Run

#: Upper bound on rounds the analyzer will compute before giving up; far
#: above the paper's 14-expected-round bound, so hitting it signals a
#: pathological run rather than a normal one.
_MAX_ROUNDS = 10_000


@dataclass
class RoundBoundaries:
    """Round-end clock readings for one processor.

    ``ends[r]`` is the clock reading at which round ``r`` ends; ``ends[0]``
    is 0 by convention (rounds are 1-based).
    """

    pid: int
    ends: list[int] = field(default_factory=lambda: [0])

    def round_at_clock(self, clock: int) -> int:
        """The round containing the given clock reading.

        Clock ``c`` lies in round ``r`` when ``ends[r-1] < c <= ends[r]``;
        readings beyond the computed boundary list belong to later rounds
        and raise, so callers never silently mis-bin.
        """
        if clock <= 0:
            raise AnalysisError(f"clock readings are positive, got {clock}")
        index = bisect.bisect_left(self.ends, clock)
        if index >= len(self.ends):
            raise AnalysisError(
                f"clock {clock} beyond computed boundaries for "
                f"processor {self.pid} (last end {self.ends[-1]})"
            )
        return index


@dataclass(frozen=True)
class _Receipt:
    """One received message, reduced to what round analysis needs."""

    sender: int
    send_clock: int
    receive_clock: int


class RoundAnalyzer:
    """Computes asynchronous rounds for a completed run."""

    def __init__(self, run: Run) -> None:
        self.run = run
        self.K = run.K
        self._nonfaulty = run.nonfaulty()
        self._receipts = self._collect_receipts()
        self._boundaries: dict[int, RoundBoundaries] = {
            pid: RoundBoundaries(pid=pid) for pid in range(run.n)
        }
        self._computed_rounds = 0
        self._compute_all()

    def _collect_receipts(self) -> dict[int, list[_Receipt]]:
        """Delivered messages from nonfaulty senders, per recipient."""
        receipts: dict[int, list[_Receipt]] = {
            pid: [] for pid in range(self.run.n)
        }
        for env in self.run.envelopes.values():
            if env.receive_event is None or env.sender not in self._nonfaulty:
                continue
            receive_clock = self.run.events[env.receive_event].clock_after
            receipts[env.recipient].append(
                _Receipt(
                    sender=env.sender,
                    send_clock=env.send_clock,
                    receive_clock=receive_clock,
                )
            )
        return receipts

    def _target_clock(self, pid: int) -> int:
        """The largest clock reading round analysis must cover for ``pid``."""
        decision_clock = self.run.decision_clocks.get(pid)
        if decision_clock is not None:
            return decision_clock
        # Undecided processors: cover their whole recorded lifetime.
        clocks = [
            e.clock_after
            for e in self.run.events
            if e.actor == pid and e.kind == "step"
        ]
        return max(clocks, default=0)

    def _compute_all(self) -> None:
        """Iterate rounds until every target clock is within a boundary."""
        targets = {pid: self._target_clock(pid) for pid in range(self.run.n)}
        for round_number in range(1, _MAX_ROUNDS + 1):
            all_covered = all(
                self._boundaries[pid].ends[-1] >= targets[pid]
                for pid in range(self.run.n)
            )
            if all_covered and round_number > 1:
                break
            self._extend_one_round(round_number)
            self._computed_rounds = round_number
        else:
            raise AnalysisError(
                f"round analysis did not converge within {_MAX_ROUNDS} rounds"
            )

    def _extend_one_round(self, round_number: int) -> None:
        """Compute round ``round_number``'s end for every processor.

        Uses only the boundaries of round ``round_number - 1``, which the
        previous iteration fixed, so sender round labels are well-defined.
        """
        previous = round_number - 1
        for pid in range(self.run.n):
            ends = self._boundaries[pid].ends
            end = ends[previous] + self.K
            if previous >= 1:
                for receipt in self._receipts[pid]:
                    if self._send_round_is(receipt, previous):
                        end = max(end, receipt.receive_clock + self.K)
            ends.append(end)

    def _send_round_is(self, receipt: _Receipt, round_number: int) -> bool:
        """Whether the message was sent in the sender's given round."""
        sender_ends = self._boundaries[receipt.sender].ends
        if round_number >= len(sender_ends):
            return False
        low = sender_ends[round_number - 1]
        high = sender_ends[round_number]
        return low < receipt.send_clock <= high

    # -- public queries ------------------------------------------------------

    def boundaries(self, pid: int) -> RoundBoundaries:
        """The computed round boundaries for one processor."""
        return self._boundaries[pid]

    def round_at_clock(self, pid: int, clock: int) -> int:
        """The asynchronous round processor ``pid`` is in at ``clock``."""
        return self._boundaries[pid].round_at_clock(clock)

    def decision_rounds(self) -> dict[int, int | None]:
        """The round in which each processor decided (None if undecided)."""
        result: dict[int, int | None] = {}
        for pid in range(self.run.n):
            clock = self.run.decision_clocks.get(pid)
            if clock is None:
                result[pid] = None
            else:
                result[pid] = self.round_at_clock(pid, clock)
        return result

    def max_decision_round(self) -> int | None:
        """Rounds until the last nonfaulty decision — the Theorem 10 metric.

        ``None`` when no nonfaulty processor decided.
        """
        rounds = [
            r
            for pid, r in self.decision_rounds().items()
            if r is not None and pid in self._nonfaulty
        ]
        return max(rounds) if rounds else None
