"""Execution-core selection for the simulation track.

Two cores execute the paper's model:

* ``reference`` — :class:`repro.sim.scheduler.Simulation`, the readable
  object-graph kernel that the rest of the repo is specified against;
* ``fast`` — :class:`repro.sim.fastcore.FastSimulation`, a drop-in
  subclass with a slimmed per-event path plus a vectorised sweep mode for
  Monte-Carlo trials (:func:`repro.sim.fastcore.fast_commit_trial`).

The contract is byte-identical ``Run`` traces, decisions, and pattern
histories; ``repro faults diff --cores`` and the golden-trace tests in
``tests/sim/test_fastcore.py`` enforce it.

Selection mirrors the ``REPRO_WORKERS`` treatment exactly: explicit
argument beats the process-wide override (set by ``--sim-core``), which
beats the ``REPRO_SIM_CORE`` environment variable, which beats the
default of ``reference``.  Unknown values raise
:class:`~repro.errors.ConfigurationError` naming the variable rather
than being silently coerced.
"""

from __future__ import annotations

import os

from repro.errors import ConfigurationError

#: Recognised core names, in documentation order.
CORE_NAMES = ("reference", "fast")

#: Process-wide override installed by ``--sim-core``; ``None`` = unset.
_DEFAULT_CORE: str | None = None


def core_from_env(name: str = "REPRO_SIM_CORE", default: str = "reference") -> str:
    """Read a core name from the environment, strictly.

    An unset or blank variable yields ``default``.  Anything else must be
    one of :data:`CORE_NAMES` (case-insensitive, surrounding whitespace
    ignored); unknown values raise :class:`ConfigurationError` naming the
    variable, mirroring the ``REPRO_WORKERS`` treatment.
    """
    raw = os.environ.get(name)
    if raw is None or not raw.strip():
        return default
    core = raw.strip().lower()
    if core not in CORE_NAMES:
        choices = "|".join(CORE_NAMES)
        raise ConfigurationError(
            f"{name} must be one of {choices}, got {raw!r}"
        )
    return core


def numpy_allowed(name: str = "REPRO_SIM_NUMPY") -> bool:
    """Whether the fast core and batched tapes may use numpy.

    Unset or blank means yes (numpy is an optional accelerator, never a
    requirement — every consumer keeps a pure-Python fallback).  The CI
    ``sim-core-bench`` job sets ``REPRO_SIM_NUMPY=0`` to benchmark the
    fallbacks on hosts where numpy is installed.  Unknown values raise,
    mirroring the other ``REPRO_*`` knobs.
    """
    raw = os.environ.get(name)
    if raw is None or not raw.strip():
        return True
    value = raw.strip().lower()
    if value in ("1", "true", "on", "yes"):
        return True
    if value in ("0", "false", "off", "no"):
        return False
    raise ConfigurationError(
        f"{name} must be a boolean flag (0/1/true/false/on/off), got {raw!r}"
    )


def set_default_sim_core(core: str | None) -> None:
    """Install (or clear, with ``None``) the process-wide core override.

    ``--sim-core`` routes through here so that every simulation built for
    the rest of the process — including ones constructed deep inside
    campaign and model-checker plumbing — uses the requested core.
    """
    global _DEFAULT_CORE
    if core is not None and core not in CORE_NAMES:
        choices = "|".join(CORE_NAMES)
        raise ConfigurationError(
            f"sim core must be one of {choices}, got {core!r}"
        )
    _DEFAULT_CORE = core


def resolve_sim_core(core: str | None = None) -> str:
    """Resolve the core to use: explicit > override > env > reference."""
    if core is not None:
        if core not in CORE_NAMES:
            choices = "|".join(CORE_NAMES)
            raise ConfigurationError(
                f"sim core must be one of {choices}, got {core!r}"
            )
        return core
    if _DEFAULT_CORE is not None:
        return _DEFAULT_CORE
    return core_from_env()


def simulation_class(core: str | None = None):
    """Return the ``Simulation`` class implementing the resolved core."""
    resolved = resolve_sim_core(core)
    if resolved == "fast":
        from repro.sim.fastcore import FastSimulation

        return FastSimulation
    from repro.sim.scheduler import Simulation

    return Simulation


def make_simulation(*args, core: str | None = None, **kwargs):
    """Construct a simulation on the resolved core (convenience factory)."""
    return simulation_class(core)(*args, **kwargs)
