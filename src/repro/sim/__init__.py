"""Discrete-event simulation kernel implementing the paper's formal model.

The kernel realises Section 2 of Coan & Lundelius (PODC 1986):

* processors are state machines with message buffers and random tapes
  (:mod:`repro.sim.process`, :mod:`repro.sim.tape`);
* an *event* ``(p, M, f)`` delivers a set of buffered messages ``M`` and a
  random number ``f`` to processor ``p`` (:mod:`repro.sim.message`,
  :mod:`repro.sim.scheduler`);
* the adversary chooses each event from the *message pattern* only — it
  never observes message contents, local state, or coin flips
  (:mod:`repro.sim.pattern`, :mod:`repro.adversary`);
* lateness is defined against the constant ``K``: a message is late if any
  processor takes more than ``K`` steps between its send and its receipt
  (:mod:`repro.sim.trace`);
* asynchronous rounds are computed post-hoc by the paper's inductive
  definition (:mod:`repro.sim.rounds`);
* ``t``-admissibility is monitored (:mod:`repro.sim.admissibility`).

Everything is deterministic given the pair of seeds (adversary seed,
tape seed), so every run in every experiment is exactly replayable.
"""

from repro.sim.admissibility import AdmissibilityMonitor, AdmissibilityReport
from repro.sim.buffer import MessageBuffer
from repro.sim.message import Envelope, MessageId, Payload
from repro.sim.pattern import PatternEntry, PatternView
from repro.sim.process import Program, SimProcess
from repro.sim.rounds import RoundAnalyzer, RoundBoundaries
from repro.sim.scheduler import Simulation, SimulationResult
from repro.sim.tape import RandomTape, TapeCollection
from repro.sim.trace import Run, TraceEvent
from repro.sim.waits import (
    ClockAtLeast,
    MessageCount,
    Never,
    Predicate,
    WaitAll,
    WaitAny,
    WaitCondition,
    WithTimeout,
)

__all__ = [
    "AdmissibilityMonitor",
    "AdmissibilityReport",
    "ClockAtLeast",
    "Envelope",
    "MessageBuffer",
    "MessageCount",
    "MessageId",
    "Never",
    "PatternEntry",
    "PatternView",
    "Payload",
    "Predicate",
    "Program",
    "RandomTape",
    "RoundAnalyzer",
    "RoundBoundaries",
    "Run",
    "SimProcess",
    "Simulation",
    "SimulationResult",
    "TapeCollection",
    "TraceEvent",
    "WaitAll",
    "WaitAny",
    "WaitCondition",
    "WithTimeout",
]
