"""Per-processor random tapes — the collection ``F`` of the paper.

The formal model supplies each processor with an infinite sequence of real
numbers uniform on ``[0, 1)``; the number consumed at a step is an input of
the transition function.  The time lower bound (Section 5 of the paper)
additionally assumes each step consumes at most ``f(s)`` random *bits*.

:class:`RandomTape` realises one processor's sequence.  Each step draws one
float; protocol code obtains ``i`` bits from that step's float via
:meth:`RandomTape.flip`, which expands the float deterministically (so a run
is a pure function of the tape seed, exactly as a run in the paper is a pure
function of ``F``).

:class:`TapeCollection` is the full ``F``: one tape per processor, derived
from a single master seed so that experiments can be replayed from one
integer.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.errors import TapeExhaustedError

#: Number of deterministic bits we are willing to expand out of one step's
#: random float.  Far above what any shipped protocol uses per step; the
#: paper's technical restriction only requires *some* finite bound f(s).
_MAX_BITS_PER_STEP = 4096

#: Tape cells are materialised in batches of this many draws — one
#: generator call per simulated round's worth of steps instead of one
#: Python-level call per step.  The batch boundary is derived only from
#: how far the tape has been read, so the produced values are exactly the
#: same stream as one-at-a-time draws.
_PREFILL_CHUNK = 64

#: A tape switches from the stdlib generator to numpy's (identical
#: stream, see :func:`_numpy_tape_state`) only once it has grown to this
#: many cells: seeding a second MT19937 costs more than a few hundred
#: stdlib draws, so short-lived trial tapes stay on the stdlib path.
_NUMPY_TAPE_MIN = 2048

try:  # pragma: no cover - exercised indirectly via the fallback tests
    import numpy as _np
except Exception:  # pragma: no cover
    _np = None

#: Cached result of the one-time self-check that numpy's MT19937 stream
#: reproduces CPython's ``random.Random`` stream bit-for-bit for the
#: key-array seeding we use.  ``None`` means "not probed yet".
_NUMPY_TAPE_OK: bool | None = None


def _seed_key_words(seed: int) -> list[int]:
    """Little-endian 32-bit words of ``seed``, as CPython's seeder uses."""
    words = []
    while seed:
        words.append(seed & 0xFFFFFFFF)
        seed >>= 32
    return words or [0]


def _numpy_tape_state(seed: object):
    """A numpy ``RandomState`` producing the *same* stream as
    ``random.Random(seed)``, or ``None`` when that cannot be guaranteed.

    CPython seeds MT19937 through ``init_by_array`` over the seed's 32-bit
    words; numpy's legacy ``RandomState`` does the same when handed a key
    *array* of at least two words.  For seeds below ``2**32`` numpy
    collapses the one-element key to scalar seeding (``init_genrand``),
    which diverges — those tapes stay on the stdlib path.  The equivalence
    is verified once at first use; any mismatch disables the fast path
    rather than corrupting tapes.
    """
    global _NUMPY_TAPE_OK
    if _np is None or not isinstance(seed, int) or seed < 2**32:
        return None
    from repro.sim.coreselect import numpy_allowed

    if not numpy_allowed():
        return None
    if _NUMPY_TAPE_OK is None:
        probe = 0x9E3779B97F4A7C15  # any multi-word seed works as a probe
        state = _np.random.RandomState(
            _np.array(_seed_key_words(probe), dtype=_np.uint32)
        )
        reference = random.Random(probe)
        _NUMPY_TAPE_OK = state.random_sample(8).tolist() == [
            reference.random() for _ in range(8)
        ]
    if not _NUMPY_TAPE_OK:  # pragma: no cover - defensive
        return None
    return _np.random.RandomState(
        _np.array(_seed_key_words(seed), dtype=_np.uint32)
    )


def _bit_expander(value: float) -> random.Random:
    """A deterministic per-step bit source derived from one uniform float.

    Seeding a local PRNG with the float's exact fraction makes the bits a
    pure function of the tape cell, independent of how many bits earlier
    steps consumed — so runs replay exactly from the tape seed.
    """
    return random.Random(value.hex())


@dataclass
class RandomTape:
    """One processor's infinite (or finite) sequence of random numbers.

    An infinite tape is generated lazily from ``seed``.  A finite tape can
    be constructed from an explicit ``values`` sequence, which is how the
    lower-bound machinery builds the finite seeds of Section 5.

    Attributes:
        seed: generator seed for lazily extended tapes (ignored when
            ``values`` is given and ``finite`` is true).
        values: materialised prefix of the tape.
        finite: when true, reading past ``values`` raises
            :class:`~repro.errors.TapeExhaustedError` instead of extending.
    """

    seed: int = 0
    values: list[float] = field(default_factory=list)
    finite: bool = False
    _position: int = field(default=0, repr=False)
    _rng: random.Random | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        self._rng = random.Random(self.seed)
        # The vectorised generator is only sound when the whole stream is
        # ours to produce: an infinite tape with no pre-materialised
        # prefix.  Construction of the numpy state is deferred until a
        # tape actually grows long (seeding MT19937 twice costs more than
        # a few hundred stdlib draws), and the switch fast-forwards past
        # the already-materialised prefix so the stream never forks.
        self._np_rng = None
        self._np_eligible = (
            _np is not None
            and not self.finite
            and not self.values
            and isinstance(self.seed, int)
            and self.seed >= 2**32
        )
        self._bits_this_step: random.Random | None = None
        self._bits_consumed = 0

    @classmethod
    def from_values(cls, values: Iterable[float]) -> "RandomTape":
        """Build a finite tape holding exactly ``values``."""
        materialised = list(values)
        for v in materialised:
            if not 0.0 <= v < 1.0:
                raise ValueError(f"tape values must lie in [0, 1), got {v}")
        return cls(values=materialised, finite=True)

    @property
    def position(self) -> int:
        """Index of the next unread tape cell."""
        return self._position

    @property
    def length(self) -> int | None:
        """Length of a finite tape, or ``None`` for an infinite tape."""
        return len(self.values) if self.finite else None

    def peek(self, index: int) -> float:
        """Return the value at ``index`` without consuming anything."""
        self._ensure(index + 1)
        return self.values[index]

    def next_step_value(self) -> float:
        """Consume and return the random number for the next step.

        This is the ``f`` component of an event ``(p, M, f)``.  The value
        also becomes the source for :meth:`flip` calls made during the step.
        """
        self._ensure(self._position + 1)
        value = self.values[self._position]
        self._position += 1
        self._bits_this_step = None
        self._bits_consumed = 0
        self._current_value = value
        return value

    def flip(self, count: int) -> list[int]:
        """Return ``count`` random bits derived from the current step.

        Mirrors the paper's ``flip(i)`` procedure.  Successive calls within
        one step consume successive bits of the step's expansion; the next
        step re-seeds from its own tape value.

        Raises:
            TapeExhaustedError: if called before any step value was drawn,
                or past the per-step bit budget (the model's ``f(s)``
                restriction).
        """
        if count < 0:
            raise ValueError(f"bit count must be non-negative, got {count}")
        if self._position == 0:
            raise TapeExhaustedError(
                "flip() called before the tape supplied a step value"
            )
        if self._bits_this_step is None:
            self._bits_this_step = _bit_expander(self._current_value)
            self._bits_consumed = 0
        if self._bits_consumed + count > _MAX_BITS_PER_STEP:
            raise TapeExhaustedError(
                f"step bit budget exhausted: wanted {count}, have "
                f"{_MAX_BITS_PER_STEP - self._bits_consumed}"
            )
        self._bits_consumed += count
        return [self._bits_this_step.getrandbits(1) for _ in range(count)]

    def _ensure(self, length: int) -> None:
        """Materialise the tape out to ``length`` cells.

        Cells are drawn in deterministic batches (rounded up to the next
        :data:`_PREFILL_CHUNK` boundary) so the generator is called once
        per round's worth of steps rather than once per step.  Because the
        batch boundary depends only on ``length`` the materialised values
        are the identical stream a per-step loop would have produced.
        """
        have = len(self.values)
        if have >= length:
            return
        if self.finite:
            raise TapeExhaustedError(
                f"finite tape of length {have} read at "
                f"position {length - 1}"
            )
        target = -(-length // _PREFILL_CHUNK) * _PREFILL_CHUNK
        need = target - have
        if self._np_eligible and target >= _NUMPY_TAPE_MIN:
            self._np_eligible = False
            state = _numpy_tape_state(self.seed)
            if state is not None:
                if have:
                    state.random_sample(have)  # skip the materialised prefix
                self._np_rng = state
        if self._np_rng is not None:
            self.values.extend(self._np_rng.random_sample(need).tolist())
            return
        assert self._rng is not None
        rng_random = self._rng.random
        self.values.extend(rng_random() for _ in range(need))


class TapeCollection:
    """The collection ``F``: one random tape per processor.

    Tapes are derived from a master seed with a splitmix-style decorrelation
    so that per-processor streams are independent, yet the whole collection
    is reproducible from one integer.
    """

    def __init__(self, n: int, master_seed: int = 0) -> None:
        if n <= 0:
            raise ValueError(f"need at least one processor, got n={n}")
        self.n = n
        self.master_seed = master_seed
        self._tapes = [
            RandomTape(seed=self._derive_seed(master_seed, pid))
            for pid in range(n)
        ]

    @staticmethod
    def _derive_seed(master_seed: int, pid: int) -> int:
        """Decorrelate per-processor seeds from the master seed."""
        mix = (master_seed * 0x9E3779B97F4A7C15 + pid * 0xBF58476D1CE4E5B9)
        return mix & 0xFFFFFFFFFFFFFFFF

    @classmethod
    def from_tapes(cls, tapes: Sequence[RandomTape]) -> "TapeCollection":
        """Wrap explicit tapes (used to build the finite seeds of Sec. 5)."""
        collection = cls.__new__(cls)
        collection.n = len(tapes)
        collection.master_seed = -1
        collection._tapes = list(tapes)
        if collection.n == 0:
            raise ValueError("a tape collection needs at least one tape")
        return collection

    def tape(self, pid: int) -> RandomTape:
        """Return processor ``pid``'s tape."""
        return self._tapes[pid]

    def __len__(self) -> int:
        return self.n

    def __iter__(self):
        return iter(self._tapes)
