"""Scheduling decisions an adversary can issue.

The paper's adversary is a function from the message pattern to a pair
``(p, E)``: the next processor to step and the set of pending messages it
receives.  We add an explicit crash decision (the basic model expresses
crashes implicitly as "scheduled only finitely often"; an explicit decision
makes crash timing auditable and lets the kernel mark the sender's final
messages as non-guaranteed, modelling a crash in the middle of a
broadcast).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Protocol, runtime_checkable

from repro.errors import ConfigurationError
from repro.sim.message import MessageId
from repro.sim.pattern import PatternView


@dataclass(frozen=True)
class StepDecision:
    """Schedule one event ``(p, M, f)``.

    Attributes:
        pid: the processor to step.
        deliver: ids of buffered envelopes to deliver at this event.  May
            be empty — a step with no receipt is legal and is how timeouts
            make progress.
    """

    pid: int
    deliver: tuple[MessageId, ...] = field(default=())


@dataclass(frozen=True)
class CrashDecision:
    """Fail-stop a processor.

    After this decision the processor never takes another step; envelopes
    it sent at its final step lose their delivery guarantee (the adversary
    may deliver them or leave them undelivered forever).
    """

    pid: int


#: Union of decisions an adversary may return.
Decision = StepDecision | CrashDecision


def decision_to_dict(decision: Decision) -> dict[str, Any]:
    """Serialize one decision to a JSON-safe dict.

    Schedules travel inside replay artifacts (the model checker emits
    violating paths as scripted ``TrialCase`` schedules), so the wire
    form must be stable: ``{"kind": "step", "pid": p, "deliver": [...]}``
    or ``{"kind": "crash", "pid": p}``.
    """
    if isinstance(decision, CrashDecision):
        return {"kind": "crash", "pid": decision.pid}
    if isinstance(decision, StepDecision):
        return {
            "kind": "step",
            "pid": decision.pid,
            "deliver": [int(mid) for mid in decision.deliver],
        }
    raise ConfigurationError(f"unknown decision type: {decision!r}")


def decision_from_dict(doc: dict[str, Any]) -> Decision:
    """Rebuild a decision from :func:`decision_to_dict` output.

    Raises:
        ConfigurationError: on an unknown ``kind`` or malformed fields.
    """
    try:
        kind = doc["kind"]
        if kind == "crash":
            return CrashDecision(pid=int(doc["pid"]))
        if kind == "step":
            return StepDecision(
                pid=int(doc["pid"]),
                deliver=tuple(MessageId(int(m)) for m in doc["deliver"]),
            )
    except (KeyError, TypeError, ValueError) as exc:
        raise ConfigurationError(f"malformed decision: {doc!r}") from exc
    raise ConfigurationError(f"unknown decision kind {kind!r} in {doc!r}")


@runtime_checkable
class AdversaryProtocol(Protocol):
    """Structural interface the scheduler requires of adversaries."""

    def decide(self, view: PatternView) -> Decision:
        """Choose the next event given the message pattern so far."""
        ...
