"""The simulation scheduler: applies adversary decisions to processes.

This is the executable form of the paper's ``run(A, I, F)`` construction:
a run is uniquely determined by an adversary ``A``, an initial
configuration ``I`` (the protocol programs with their initial values), and
a collection ``F`` of random tapes.  The scheduler repeatedly asks the
adversary for a decision, applies the resulting event, and records the
trace, until every nonfaulty processor's program has returned or a step
horizon is reached (the finite-prefix stand-in for "runs forever").
"""

from __future__ import annotations

import enum
import time
from bisect import bisect_right
from dataclasses import dataclass
from typing import Sequence

from repro.errors import ConfigurationError, SchedulingError
from repro.sim.admissibility import AdmissibilityMonitor, AdmissibilityReport
from repro.sim.buffer import MessageBuffer
from repro.sim.decisions import (
    AdversaryProtocol,
    CrashDecision,
    Decision,
    StepDecision,
)
from repro.sim.message import Envelope, EnvelopeFactory, MessageId, ReceivedPayload
from repro.sim.pattern import (
    PatternEntry,
    PatternHistory,
    PatternView,
    PendingMessage,
    SentRecord,
)
from repro.sim.process import Program, SimProcess
from repro.sim.tape import TapeCollection
from repro.sim.trace import Run, TraceEvent
from repro.telemetry.log import get_logger
from repro.telemetry.registry import MetricsRegistry, active_registry
from repro.trace import spans as trace_spans
from repro.types import ProcessStatus

_log = get_logger("sim.scheduler")

#: Events per wall-clock timing batch when telemetry is enabled.
_STEP_BATCH = 256


class Outcome(enum.Enum):
    """Why a simulation stopped."""

    #: Every nonfaulty processor's program returned.
    TERMINATED = enum.auto()
    #: The step horizon was reached with some nonfaulty program unfinished.
    HORIZON = enum.auto()


@dataclass
class SimulationResult:
    """Everything a simulation produces.

    Attributes:
        outcome: whether the run terminated or hit the horizon.
        run: the full-information trace.
        admissibility: the monitor's report on the adversary's behaviour.
    """

    outcome: Outcome
    run: Run
    admissibility: AdmissibilityReport

    @property
    def terminated(self) -> bool:
        return self.outcome is Outcome.TERMINATED

    def decisions(self) -> dict[int, int | None]:
        """Final decision per processor."""
        return dict(self.run.decisions)


class Simulation:
    """Hosts ``n`` processes and drives them under one adversary.

    Args:
        programs: one :class:`~repro.sim.process.Program` per processor,
            ordered by pid (``programs[i].pid`` must equal ``i``).
        adversary: the scheduler of steps, deliveries, and crashes.
        K: the on-time bound in clock ticks (the paper's constant ``K``,
            assumed > 1 so the model does not degenerate to [FLP]).
        t: the adversary's fault budget (used for admissibility checks and
            exposed on the pattern view; protocols carry their own ``t``).
        tapes: the random-tape collection ``F``; defaults to a fresh
            collection seeded with ``seed``.
        seed: master seed for the default tape collection.
        max_steps: finite horizon standing in for an infinite run.
        telemetry: metrics registry for per-event counters and step-batch
            timers.  Defaults to the process-wide registry when telemetry
            is enabled, else ``None`` (instrumentation compiled down to a
            single attribute check per event).
    """

    def __init__(
        self,
        programs: Sequence[Program],
        adversary: AdversaryProtocol,
        K: int,
        t: int,
        tapes: TapeCollection | None = None,
        seed: int = 0,
        max_steps: int = 100_000,
        telemetry: MetricsRegistry | None = None,
    ) -> None:
        # Accept any Sequence (or iterable) of programs; materialise once
        # and share the list with callers via ``self.programs`` so batch
        # helpers need not re-list it for metric extraction.
        programs = list(programs)
        n = len(programs)
        if n == 0:
            raise ConfigurationError("a simulation needs at least one processor")
        for pid, program in enumerate(programs):
            if program.pid != pid:
                raise ConfigurationError(
                    f"programs must be ordered by pid: slot {pid} holds "
                    f"pid {program.pid}"
                )
        if K < 1:
            raise ConfigurationError(f"K must be at least 1, got {K}")
        if not 0 <= t < n:
            raise ConfigurationError(f"t must satisfy 0 <= t < n, got t={t}, n={n}")
        if max_steps <= 0:
            raise ConfigurationError(f"max_steps must be positive, got {max_steps}")

        self.n = n
        self.K = K
        self.t = t
        self.max_steps = max_steps
        self.adversary = adversary
        self.programs = programs
        self.tapes = tapes if tapes is not None else TapeCollection(n, seed)
        if len(self.tapes) != n:
            raise ConfigurationError(
                f"tape collection has {len(self.tapes)} tapes for n={n}"
            )

        self.processes = [
            SimProcess(program, self.tapes.tape(pid))
            for pid, program in enumerate(programs)
        ]
        self.buffers = [MessageBuffer() for _ in range(n)]
        self.event_count = 0
        self._factory = EnvelopeFactory()
        self._pattern: list[PatternEntry] = []
        self._envelopes: dict[MessageId, Envelope] = {}
        self._crashed: set[int] = set()
        self._last_send_event: dict[int, int] = {}
        self._trace: list[TraceEvent] = []
        # Per-processor sorted lists of the event indices at which the
        # processor took a step.  ``max_steps_between`` answers interval
        # queries with two bisects per processor instead of the old
        # per-event cumulative tables (which cost O(n) work and memory
        # per event).
        self._step_counts = [0] * n
        self._pid_step_events: list[list[int]] = [[] for _ in range(n)]
        self.monitor = AdmissibilityMonitor(n=n, t=t)
        self.view = PatternView(self)
        # Hot-path caches for the adversary-facing pattern view.  All are
        # derived state: crashes invalidate the crash/alive caches, buffer
        # versions gate the pending-metadata cache, and the history window
        # wraps the live pattern list (no copies).
        self._running_count = sum(
            1
            for proc in self.processes
            if proc.status is ProcessStatus.RUNNING
        )
        self._crashed_frozen: frozenset[int] = frozenset()
        self._alive_tuple: tuple[int, ...] = tuple(range(n))
        self._history = PatternHistory(self._pattern)
        self._pending_meta: list[tuple[int, list[PendingMessage]] | None] = [
            None
        ] * n
        if telemetry is None:
            telemetry = active_registry()
        elif not telemetry.enabled:
            telemetry = None
        self._telemetry = telemetry
        if telemetry is not None:
            # Instrument handles are resolved once so the per-event cost
            # is a method call, not a registry lookup.
            self._m_events = telemetry.counter(
                "sim_events_total", "scheduler events applied, by kind"
            )
            self._m_envelopes = telemetry.counter(
                "sim_envelopes_sent_total", "envelopes handed to buffers"
            )
            self._m_sent = telemetry.counter(
                "sim_payloads_sent_total", "payloads sent, by payload kind"
            )
            self._m_delivered = telemetry.counter(
                "sim_payloads_delivered_total",
                "payloads delivered, by payload kind",
            )
            self._m_batch_seconds = telemetry.histogram(
                "sim_step_batch_seconds",
                f"wall-clock seconds per {_STEP_BATCH}-event scheduler batch",
            )
            self._m_run_seconds = telemetry.histogram(
                "sim_run_seconds", "wall-clock seconds per simulation run"
            )

    # -- queries used by PatternView -----------------------------------------

    def process_clock(self, pid: int) -> int:
        return self.processes[pid].clock

    def crashed_pids(self) -> set[int]:
        return set(self._crashed)

    def crashed_frozen(self) -> frozenset[int]:
        """Crashed processors as a cached frozenset (invalidated on crash)."""
        return self._crashed_frozen

    def alive_pids(self) -> tuple[int, ...]:
        """Non-crashed processors, ascending (cached; invalidated on crash)."""
        return self._alive_tuple

    def pending_metadata(self, pid: int) -> list[PendingMessage]:
        """Pattern-visible metadata of ``pid``'s buffer, oldest first.

        The per-buffer list is cached against the buffer's mutation
        version and the per-envelope ``PendingMessage`` is cached on the
        envelope itself (rebuilt only if its delivery guarantee flips),
        so adversaries that consult pending metadata every decision no
        longer rebuild the metadata objects every event.
        """
        buffer = self.buffers[pid]
        cached = self._pending_meta[pid]
        if cached is not None and cached[0] == buffer.version:
            return list(cached[1])
        metadata = []
        for env in buffer:
            meta = env.pattern_meta
            if meta is None or meta.guaranteed != env.guaranteed:
                meta = PendingMessage(
                    message_id=env.message_id,
                    sender=env.sender,
                    recipient=env.recipient,
                    send_event=env.send_event,
                    send_clock=env.send_clock,
                    guaranteed=env.guaranteed,
                )
                env.pattern_meta = meta
            metadata.append(meta)
        self._pending_meta[pid] = (buffer.version, metadata)
        return list(metadata)

    def pattern_entries(self) -> list[PatternEntry]:
        return list(self._pattern)

    def pattern_history(self) -> PatternHistory:
        """Zero-copy read-only window onto the live pattern."""
        return self._history

    def max_steps_between(self, first_event: int, last_event: int) -> int:
        """Max per-processor step count strictly inside an event interval.

        Equivalent to reading per-event cumulative step tables at the
        interval's (clamped) endpoints: ``bisect_right`` over a
        processor's step-event indices *is* its cumulative count after a
        given event, saturating beyond the recorded range.
        """
        best = 0
        hi = last_event - 1
        for steps in self._pid_step_events:
            if not steps:
                continue
            at_first = bisect_right(steps, first_event) if first_event >= 0 else 0
            at_last = bisect_right(steps, hi) if last_event > 0 else 0
            delta = at_last - at_first
            if delta > best:
                best = delta
        return best

    def max_delivery_lag(self, delivered_only: bool = False) -> int:
        """Worst per-processor step count any envelope has sat undelivered.

        For delivered envelopes this is the step count between send and
        receive events; for still-pending envelopes it is measured against
        the current event (a lower bound on their eventual lag — once it
        exceeds ``K`` the envelope is late no matter when it arrives).  A
        run prefix is on time in the paper's sense iff this stays <= K,
        which is how the model checker recognises benign runs where
        commit validity must bite.  With ``delivered_only`` pending
        envelopes are skipped: at a terminal state every pending envelope
        is addressed to a returned (or crashed) processor, whose receipt
        can no longer influence anything.
        """
        worst = 0
        for env in self._envelopes.values():
            if env.receive_event is not None:
                end = env.receive_event
            elif delivered_only:
                continue
            else:
                end = self.event_count
            lag = self.max_steps_between(env.send_event, end)
            if lag > worst:
                worst = lag
        return worst

    # -- run loop ---------------------------------------------------------------

    def running_pids(self) -> list[int]:
        """Processors that are neither crashed nor returned."""
        return [
            pid
            for pid, proc in enumerate(self.processes)
            if proc.status is ProcessStatus.RUNNING
        ]

    def all_nonfaulty_done(self) -> bool:
        """Whether every non-crashed processor's program has returned.

        O(1): the scheduler maintains a running-processor count across
        step and crash transitions instead of rescanning every process
        each event.
        """
        return self._running_count == 0

    def run(self) -> SimulationResult:
        """Execute the simulation to termination or the step horizon."""
        telemetry = self._telemetry
        run_start = batch_start = (
            time.perf_counter() if telemetry is not None else 0.0
        )
        batch_anchor = self.event_count
        while not self.all_nonfaulty_done() and self.event_count < self.max_steps:
            try:
                decision = self.adversary.decide(self.view)
            except Exception:
                _log.exception(
                    "adversary %s failed deciding event %d",
                    type(self.adversary).__name__,
                    self.event_count,
                )
                raise
            self.apply(decision)
            if (
                telemetry is not None
                and self.event_count - batch_anchor >= _STEP_BATCH
            ):
                now = time.perf_counter()
                self._m_batch_seconds.observe(now - batch_start)
                batch_start = now
                batch_anchor = self.event_count
        outcome = (
            Outcome.TERMINATED if self.all_nonfaulty_done() else Outcome.HORIZON
        )
        if outcome is Outcome.HORIZON:
            _log.warning(
                "step horizon %d reached with processors %s still running "
                "under %s",
                self.max_steps,
                self.running_pids(),
                type(self.adversary).__name__,
            )
        if telemetry is not None:
            self._m_run_seconds.observe(time.perf_counter() - run_start)
            telemetry.counter(
                "sim_runs_total", "completed simulations, by outcome"
            ).inc(outcome=outcome.name.lower())
        run = self.build_run()
        recorder = trace_spans.active_recorder()
        if recorder is not None:
            # Spans are derived post-hoc from the already-built run, so
            # tracing cannot perturb scheduling and recorded runs stay
            # byte-identical to untraced ones.
            from repro.trace.build import record_run

            record_run(recorder, run, outcome=outcome.name.lower())
        return SimulationResult(
            outcome=outcome,
            run=run,
            admissibility=self.monitor.report(self),
        )

    def apply(self, decision: Decision) -> None:
        """Apply one adversary decision."""
        if isinstance(decision, CrashDecision):
            self._apply_crash(decision)
        elif isinstance(decision, StepDecision):
            self._apply_step(decision)
        else:  # pragma: no cover - defensive
            raise SchedulingError(f"unknown decision type: {decision!r}")

    # -- decision application ------------------------------------------------

    def _apply_crash(self, decision: CrashDecision) -> None:
        pid = decision.pid
        if pid in self._crashed:
            raise SchedulingError(f"processor {pid} is already crashed")
        process = self.processes[pid]
        was_running = process.status is ProcessStatus.RUNNING
        self._crashed.add(pid)
        self._crashed_frozen = frozenset(self._crashed)
        self._alive_tuple = tuple(
            p for p in range(self.n) if p not in self._crashed
        )
        process.mark_crashed()
        if was_running:
            self._running_count -= 1
        self.monitor.record_crash(pid)
        # Messages sent at the crashed processor's final step lose their
        # delivery guarantee (the paper's non-guaranteed messages).  The
        # sender index answers "pending from pid" without scanning whole
        # buffers; bumping the buffer version invalidates cached
        # pattern metadata for the flipped envelopes.
        last_send = self._last_send_event.get(pid)
        if last_send is not None:
            for buffer in self.buffers:
                flipped = False
                for env in buffer.pending_from(pid):
                    if env.send_event == last_send:
                        env.guaranteed = False
                        flipped = True
                if flipped:
                    buffer.version += 1
        _log.debug(
            "processor %d crashed at event %d (clock %d)",
            pid,
            self.event_count,
            self.processes[pid].clock,
        )
        if self._telemetry is not None:
            self._m_events.inc(kind="crash")
            self._telemetry.counter(
                "sim_crashes_total", "fail-stop crashes applied"
            ).inc()
        self._record_event(
            kind="crash", actor=pid, delivered=(), sent=(), envelopes_sent=[]
        )

    def _apply_step(self, decision: StepDecision) -> None:
        pid = decision.pid
        if pid in self._crashed:
            raise SchedulingError(f"cannot step crashed processor {pid}")
        buffer = self.buffers[pid]
        envelopes = buffer.take(decision.deliver)
        received: list[ReceivedPayload] = []
        for env in envelopes:
            env.receive_event = self.event_count
            for payload in env.payloads:
                received.append(
                    ReceivedPayload(
                        sender=env.sender,
                        payload=payload,
                        receive_clock=self.processes[pid].clock + 1,
                        message_id=env.message_id,
                    )
                )
        process = self.processes[pid]
        was_running = process.status is ProcessStatus.RUNNING
        outgoing = process.on_step(received)
        if was_running and process.status is not ProcessStatus.RUNNING:
            self._running_count -= 1
        sent_envelopes: list[Envelope] = []
        for recipient, payloads in outgoing:
            env = self._factory.build(
                sender=pid,
                recipient=recipient,
                payloads=payloads,
                send_event=self.event_count,
                send_clock=self.processes[pid].clock,
            )
            self._envelopes[env.message_id] = env
            self.buffers[recipient].add(env)
            sent_envelopes.append(env)
        if sent_envelopes:
            self._last_send_event[pid] = self.event_count
        self._step_counts[pid] += 1
        self._pid_step_events[pid].append(self.event_count)
        if self._telemetry is not None:
            self._m_events.inc(kind="step")
            if sent_envelopes:
                self._m_envelopes.inc(len(sent_envelopes))
                for env in sent_envelopes:
                    for payload in env.payloads:
                        self._m_sent.inc(kind=type(payload).__name__)
            for item in received:
                self._m_delivered.inc(kind=type(item.payload).__name__)
        self._record_event(
            kind="step",
            actor=pid,
            delivered=tuple(env.message_id for env in envelopes),
            sent=tuple(env.message_id for env in sent_envelopes),
            envelopes_sent=sent_envelopes,
        )

    def _record_event(
        self,
        kind: str,
        actor: int,
        delivered: tuple[MessageId, ...],
        sent: tuple[MessageId, ...],
        envelopes_sent: list[Envelope],
    ) -> None:
        index = self.event_count
        self.event_count += 1
        proc = self.processes[actor]
        self._pattern.append(
            PatternEntry(
                index=index,
                kind=kind,
                actor=actor,
                delivered=delivered,
                sent=tuple(
                    SentRecord(message_id=e.message_id, recipient=e.recipient)
                    for e in envelopes_sent
                ),
            )
        )
        self._trace.append(
            TraceEvent(
                index=index,
                kind=kind,
                actor=actor,
                clock_after=proc.clock,
                delivered=delivered,
                sent=sent,
                decision_after=proc.decision,
                halted_after=proc.halted,
            )
        )

    # -- result assembly ---------------------------------------------------------

    def build_run(self) -> Run:
        """Assemble the full-information :class:`~repro.sim.trace.Run`."""
        return Run(
            n=self.n,
            t=self.t,
            K=self.K,
            events=list(self._trace),
            envelopes=dict(self._envelopes),
            statuses={pid: proc.status for pid, proc in enumerate(self.processes)},
            decisions={pid: proc.decision for pid, proc in enumerate(self.processes)},
            decision_clocks={
                pid: proc.decision_clock for pid, proc in enumerate(self.processes)
            },
            outputs={pid: proc.output for pid, proc in enumerate(self.processes)},
        )
