"""The fast execution core: slim event path + vectorised trial sweeps.

Two layers, both contract-bound to byte-identical results versus the
reference core (:class:`repro.sim.scheduler.Simulation`):

* :class:`FastSimulation` — a drop-in ``Simulation`` subclass producing
  byte-identical ``Run`` traces, decisions, and pattern histories.  It
  eliminates the double construction of delivered payloads (the reference
  scheduler builds a ``ReceivedPayload`` which ``on_step`` immediately
  re-wraps), and assembles the lateness caches of the built ``Run`` from
  flat per-processor step-index arrays (numpy when present, bisect
  fallback otherwise) instead of the per-envelope × per-processor bisect
  storm the first ``is_on_time`` query would trigger.

* the *sweep* path (:func:`fast_commit_trial`) — a fused cycle driver
  for metrics-only Monte-Carlo trials.  When the adversary is a stock
  :class:`~repro.adversary.base.CycleAdversary` with a whitelisted
  delivery policy and no observer is attached (no telemetry, no span
  recorder), the driver replays the exact decide/apply semantics of the
  reference pair while skipping everything a :class:`RunMetrics` bundle
  cannot observe: pattern entries, trace events, envelope objects,
  pending-metadata caches, and all bulletin-board activity of returned
  processors.  RNG draw order is replicated draw-for-draw — the policy's
  own assignment dicts and the adversary's own ``rng`` are used — so the
  produced metrics are equal as Python objects to the reference's.
  Anything off the whitelist falls back to :class:`FastSimulation`,
  which is always safe.

Numpy use is optional everywhere (``REPRO_SIM_NUMPY=0`` disables it;
absence of numpy degrades silently to the pure-Python fallbacks).
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right

from repro.adversary.base import (
    CycleAdversary,
    DelayCycles,
    DeliverAll,
    DropNonGuaranteed,
)
from repro.errors import AnalysisError, ConfigurationError, SchedulingError
from repro.sim.board import BulletinBoard
from repro.sim.coreselect import numpy_allowed
from repro.sim.decisions import StepDecision
from repro.sim.message import Envelope, ReceivedPayload
from repro.sim.process import SimProcess
from repro.sim.scheduler import Simulation
from repro.sim.tape import TapeCollection
from repro.sim.trace import Run
from repro.telemetry.log import get_logger
from repro.telemetry.registry import active_registry
from repro.trace import spans as trace_spans
from repro.types import ProcessStatus

try:  # pragma: no cover - exercised via the fallback tests
    import numpy as _np
except Exception:  # pragma: no cover
    _np = None

_log = get_logger("sim.fastcore")

#: Upper bound on rounds, mirrored from :mod:`repro.sim.rounds`.
_MAX_ROUNDS = 10_000

#: Sentinel for payload types that declare no ``board_key``.
_NO_KEY = object()


def _use_numpy() -> bool:
    return _np is not None and numpy_allowed()


# ---------------------------------------------------------------------------
# Flat lateness
# ---------------------------------------------------------------------------


def _late_flags(
    K: int,
    pid_steps: list[list[int]],
    send_events: list[int],
    receive_events: list[int],
):
    """Lateness flag per delivered envelope, computed over flat arrays.

    An envelope is late iff some processor took more than ``K`` steps
    strictly between its send and receive events; per processor the count
    is ``bisect_left(steps, receive) - bisect_right(steps, send)``,
    exactly :meth:`repro.sim.trace.Run.steps_in_interval`.
    """
    count = len(send_events)
    if count == 0:
        return []
    if _use_numpy():
        sends = _np.asarray(send_events, dtype=_np.int64)
        recvs = _np.asarray(receive_events, dtype=_np.int64)
        worst = _np.zeros(count, dtype=_np.int64)
        for steps in pid_steps:
            if not steps:
                continue
            arr = _np.asarray(steps, dtype=_np.int64)
            counts = _np.searchsorted(arr, recvs, side="left")
            counts -= _np.searchsorted(arr, sends, side="right")
            _np.maximum(worst, counts, out=worst)
        return (worst > K).tolist()
    flags = []
    for send, recv in zip(send_events, receive_events):
        late = False
        for steps in pid_steps:
            if bisect_left(steps, recv) - bisect_right(steps, send) > K:
                late = True
                break
        flags.append(late)
    return flags


def _flat_late_envelopes(
    K: int, pid_steps: list[list[int]], envelopes: dict
) -> list[Envelope]:
    """The late-message list in ``envelopes.values()`` order."""
    delivered = [
        env for env in envelopes.values() if env.receive_event is not None
    ]
    flags = _late_flags(
        K,
        pid_steps,
        [env.send_event for env in delivered],
        [env.receive_event for env in delivered],
    )
    return [env for env, late in zip(delivered, flags) if late]


# ---------------------------------------------------------------------------
# Flat asynchronous rounds (replicates repro.sim.rounds.RoundAnalyzer)
# ---------------------------------------------------------------------------


def _flat_max_decision_round(
    n: int,
    K: int,
    faulty: set[int],
    receipts: list[list[tuple[int, int, int]]],
    decision_clocks: list[int | None],
    final_clocks: list[int],
) -> int | None:
    """Rounds to the last nonfaulty decision, over flat receipt lists.

    ``receipts[pid]`` holds ``(sender, send_clock, receive_clock)`` for
    every envelope delivered to ``pid`` from a nonfaulty sender, in
    envelope-id order — the same inductive inputs
    :class:`~repro.sim.rounds.RoundAnalyzer` extracts from a ``Run``.
    """
    targets = [
        decision_clocks[pid]
        if decision_clocks[pid] is not None
        else final_clocks[pid]
        for pid in range(n)
    ]
    ends: list[list[int]] = [[0] for _ in range(n)]
    for round_number in range(1, _MAX_ROUNDS + 1):
        if round_number > 1 and all(
            ends[pid][-1] >= targets[pid] for pid in range(n)
        ):
            break
        previous = round_number - 1
        for pid in range(n):
            pid_ends = ends[pid]
            end = pid_ends[previous] + K
            if previous >= 1:
                for sender, send_clock, receive_clock in receipts[pid]:
                    sender_ends = ends[sender]
                    if previous >= len(sender_ends):
                        continue
                    if (
                        sender_ends[previous - 1]
                        < send_clock
                        <= sender_ends[previous]
                    ):
                        candidate = receive_clock + K
                        if candidate > end:
                            end = candidate
            pid_ends.append(end)
    else:
        raise AnalysisError(
            f"round analysis did not converge within {_MAX_ROUNDS} rounds"
        )
    best: int | None = None
    for pid in range(n):
        clock = decision_clocks[pid]
        if clock is None or pid in faulty:
            continue
        if clock <= 0:
            raise AnalysisError(f"clock readings are positive, got {clock}")
        index = bisect_left(ends[pid], clock)
        if index >= len(ends[pid]):
            raise AnalysisError(
                f"clock {clock} beyond computed boundaries for "
                f"processor {pid} (last end {ends[pid][-1]})"
            )
        if best is None or index > best:
            best = index
    return best


# ---------------------------------------------------------------------------
# FastSimulation: byte-identical trace mode
# ---------------------------------------------------------------------------


class FastSimulation(Simulation):
    """Reference semantics on a slimmed per-event path.

    Behavioural contract: every observable of the reference core —
    ``Run`` traces, pattern histories, buffer/board/process state at any
    prefix — is byte-identical.  The golden-trace and hypothesis suites
    in ``tests/sim/test_fastcore.py`` and
    ``tests/property/test_fastcore_properties.py`` pin this.
    """

    core_name = "fast"

    def _apply_step(self, decision: StepDecision) -> None:
        pid = decision.pid
        if pid in self._crashed:
            raise SchedulingError(f"cannot step crashed processor {pid}")
        buffer = self.buffers[pid]
        envelopes = buffer.take(decision.deliver)
        process = self.processes[pid]
        was_running = process.status is ProcessStatus.RUNNING
        # Inlined SimProcess.on_step without the payload re-wrap: the
        # delivered ReceivedPayload is built once, with the post-step
        # clock, and posted directly — field-for-field the entry the
        # reference path posts.
        process.clock += 1
        process.tape.next_step_value()
        clock_after = process.clock
        received: list[ReceivedPayload] = []
        if envelopes:
            board_post = process.board.post
            event_index = self.event_count
            for env in envelopes:
                env.receive_event = event_index
                sender = env.sender
                message_id = env.message_id
                for payload in env.payloads:
                    entry = ReceivedPayload(
                        sender=sender,
                        payload=payload,
                        receive_clock=clock_after,
                        message_id=message_id,
                    )
                    received.append(entry)
                    board_post(entry)
        if process.status is ProcessStatus.RUNNING:
            process._advance()
        outgoing = process._flush_outbox()
        if was_running and process.status is not ProcessStatus.RUNNING:
            self._running_count -= 1
        sent_envelopes: list[Envelope] = []
        for recipient, payloads in outgoing:
            env = self._factory.build(
                sender=pid,
                recipient=recipient,
                payloads=payloads,
                send_event=self.event_count,
                send_clock=clock_after,
            )
            self._envelopes[env.message_id] = env
            self.buffers[recipient].add(env)
            sent_envelopes.append(env)
        if sent_envelopes:
            self._last_send_event[pid] = self.event_count
        self._step_counts[pid] += 1
        self._pid_step_events[pid].append(self.event_count)
        if self._telemetry is not None:
            self._m_events.inc(kind="step")
            if sent_envelopes:
                self._m_envelopes.inc(len(sent_envelopes))
                for env in sent_envelopes:
                    for payload in env.payloads:
                        self._m_sent.inc(kind=type(payload).__name__)
            for item in received:
                self._m_delivered.inc(kind=type(item.payload).__name__)
        self._record_event(
            kind="step",
            actor=pid,
            delivered=tuple(env.message_id for env in envelopes),
            sent=tuple(env.message_id for env in sent_envelopes),
            envelopes_sent=sent_envelopes,
        )

    def build_run(self) -> Run:
        """Assemble the run with pre-warmed lateness caches.

        The caches are ``compare=False`` fields of :class:`Run`, so the
        built run still compares equal to a reference run; warming them
        from the scheduler's flat step-index arrays just spares the first
        ``is_on_time``/``late_messages`` caller the bisect storm.
        """
        run = super().build_run()
        run._step_indices = {
            pid: list(steps)
            for pid, steps in enumerate(self._pid_step_events)
        }
        run._late_cache = _flat_late_envelopes(
            self.K, self._pid_step_events, run.envelopes
        )
        return run


# ---------------------------------------------------------------------------
# Sweep mode: fused metrics-only commit trials
# ---------------------------------------------------------------------------


class _FastEnv:
    """Flat in-flight message record for the sweep driver."""

    __slots__ = (
        "message_id",
        "sender",
        "recipient",
        "payloads",
        "send_event",
        "send_clock",
        "send_cycle",
        "guaranteed",
        "receive_event",
        "receive_clock",
    )

    def __init__(
        self, message_id, sender, recipient, payloads, send_event, send_clock, send_cycle
    ):
        self.message_id = message_id
        self.sender = sender
        self.recipient = recipient
        self.payloads = payloads
        self.send_event = send_event
        self.send_clock = send_clock
        self.send_cycle = send_cycle
        self.guaranteed = True
        self.receive_event = None
        self.receive_clock = None


class _Entry:
    """Minimal bulletin-board entry for sweep-mode deliveries.

    The shipped commit/agreement programs read exactly two attributes of
    a board entry — ``payload`` (through matchers and the key index) and
    ``sender`` (distinct-sender counting) — so ``receive_clock`` and
    ``message_id`` are unobservable in sweep mode and one entry per
    ``(payload object, sender)`` pair can be shared across every
    recipient board.  The memo key includes the sender because a relayed
    payload (e.g. a GO message) is broadcast by several senders, and
    distinct-sender counts depend on the sender recorded at post time.
    """

    __slots__ = ("sender", "payload")

    def __init__(self, sender, payload):
        self.sender = sender
        self.payload = payload


class _SweepBoard(BulletinBoard):
    """Bulletin board with a per-trial memo of payload board keys.

    A broadcast posts the *same* payload object on every recipient's
    board; the reference board calls ``payload.board_key()`` on each
    post.  The sweep driver (and this board's ``post``, which only
    self-sends still reach) computes it once per payload object.  The
    memo maps ``id(payload)`` to ``(payload, key_value, entries_by_
    sender)``; the strong payload reference pins the object's identity
    for the lifetime of the trial.
    """

    def __init__(self, key_memo: dict) -> None:
        super().__init__()
        self._key_memo = key_memo

    def post(self, entry: ReceivedPayload) -> None:
        self._entries.append(entry)
        payload = entry.payload
        memo = self._key_memo
        memo_key = id(payload)
        hit = memo.get(memo_key)
        if hit is None:
            key = getattr(payload, "board_key", None)
            value = key() if callable(key) else _NO_KEY
            memo[memo_key] = (payload, value, {})
        else:
            value = hit[1]
        if value is not _NO_KEY:
            self._by_key[value].append(entry)
            self._senders_by_key[value].add(entry.sender)


def _fast_selector(policy, rng):
    """A draw-for-draw replica of a whitelisted delivery policy.

    Returns a ``(pid, buffer, cycle) -> list[_FastEnv]`` closure bound to
    the policy's *own* assignment dicts and the adversary's *own* rng (so
    state and draw order match the reference exactly), or ``None`` when
    the policy is not whitelisted.  Matching is by exact class (or fully
    qualified name for private classes): subclasses with overridden
    behaviour fall off the fast path rather than being mis-replicated.

    Every whitelisted policy provably ignores the ``view`` argument of
    ``DeliveryPolicy.select``; a message's age in cycles is read off the
    envelope's recorded send cycle, which equals
    ``CycleContext.age_in_cycles`` by construction.
    """
    cls = type(policy)
    qualname = f"{cls.__module__}.{cls.__qualname__}"
    if cls is DeliverAll:

        def deliver_all(pid, buffer, cycle):
            return list(buffer.values())

        return deliver_all
    # ``low + rng._randbelow(span)`` is exactly what ``rng.randint``
    # computes (randrange with a positive step-1 width) minus the
    # argument-marshalling wrappers, so the underlying getrandbits
    # consumption — and hence every later draw — is unchanged.  The
    # cross-core equivalence suites would catch any drift.
    if cls is DelayCycles:
        assigned = policy._assigned
        low = policy.min_cycles
        span = policy.max_cycles - low + 1

        def delay_cycles(pid, buffer, cycle):
            ready = []
            get = assigned.get
            randbelow = rng._randbelow
            for env in buffer.values():
                message_id = env.message_id
                delay = get(message_id)
                if delay is None:
                    delay = low + randbelow(span)
                    assigned[message_id] = delay
                if cycle - env.send_cycle >= delay:
                    ready.append(env)
            return ready

        return delay_cycles
    if qualname == "repro.adversary.standard._SpikeDelays":
        assigned = policy._assigned
        probability = policy.late_probability
        late_delay = policy.late_delay
        targets = policy.target_senders

        def spike_delays(pid, buffer, cycle):
            ready = []
            get = assigned.get
            for env in buffer.values():
                message_id = env.message_id
                delay = get(message_id)
                if delay is None:
                    eligible = targets is None or env.sender in targets
                    if eligible and rng.random() < probability:
                        delay = late_delay
                    else:
                        delay = 1
                    assigned[message_id] = delay
                if cycle - env.send_cycle >= delay:
                    ready.append(env)
            return ready

        return spike_delays
    if qualname == "repro.faults.sim_compile._PlanPolicy":
        plan = policy.plan
        holds = policy._hold
        reorder_bound = policy.K
        drop_penalty = policy.drop_penalty
        severed = plan.severed
        delay_for = plan.delay_for
        loss_for = plan.loss_for

        def plan_policy(pid, buffer, cycle):
            chosen = []
            get = holds.get
            randbelow = rng._randbelow
            random_draw = rng.random
            for env in buffer.values():
                sender = env.sender
                if severed(sender, pid, cycle):
                    continue
                message_id = env.message_id
                hold = get(message_id)
                if hold is None:
                    delay = delay_for(sender, env.recipient)
                    if delay is not None:
                        low = delay.min_cycles
                        hold = low + randbelow(delay.max_cycles - low + 1)
                    else:
                        hold = 1
                    loss = loss_for(sender, env.recipient)
                    if loss.reorder and random_draw() < loss.reorder:
                        hold += 1 + randbelow(reorder_bound)
                    if loss.drop and random_draw() < loss.drop:
                        hold += drop_penalty
                    holds[message_id] = hold
                if cycle - env.send_cycle >= hold:
                    chosen.append(env)
            return chosen

        return plan_policy
    if cls is DropNonGuaranteed:
        inner = _fast_selector(policy.inner, rng)
        if inner is None:
            return None
        victims = policy.victims

        def drop_non_guaranteed(pid, buffer, cycle):
            chosen = inner(pid, buffer, cycle)
            if pid not in victims:
                return chosen
            return [env for env in chosen if env.guaranteed]

        return drop_non_guaranteed
    return None


def adversary_sweep_supported(adversary) -> bool:
    """Whether the adversary itself is on the sweep whitelist.

    Requires a *fresh* stock :class:`CycleAdversary` (no overridden
    decision machinery, no consumed state, no simulation attach hook)
    carrying a whitelisted delivery policy.  Structural checks run
    first, so non-:class:`CycleAdversary` objects (timing-model wraps,
    scripted adversaries) are rejected before any attribute access.
    """
    cls = type(adversary)
    if (
        cls.decide is not CycleAdversary.decide
        or cls._due_crash is not CycleAdversary._due_crash
        or cls._context is not CycleAdversary._context
        or cls._note_event is not CycleAdversary._note_event
    ):
        return False
    if getattr(adversary, "attach", None) is not None:
        return False
    if adversary._cycle != 0 or adversary._queue or adversary._event_cycles:
        return False
    return _fast_selector(adversary.delivery, adversary.rng) is not None


def sweep_eligible(adversary) -> bool:
    """Whether the fused sweep driver can replicate this run.

    The adversary must pass :func:`adversary_sweep_supported` and no
    observer may be active (telemetry registry or span recorder) —
    observers see scheduler internals the sweep does not materialise.
    """
    if active_registry() is not None:
        return False
    if trace_spans.active_recorder() is not None:
        return False
    return adversary_sweep_supported(adversary)


def _sweep_run(programs, adversary, K, t, seed, max_steps):
    """Execute one trial on the fused driver; returns flat run state.

    This is ``CycleAdversary.decide`` + ``Simulation.apply`` fused into
    one loop over flat structures.  Every branch mirrors a line of the
    reference pair; RNG draws go through the adversary's own generator
    in the reference order.
    """
    n = len(programs)
    if n == 0:
        raise ConfigurationError("a simulation needs at least one processor")
    for pid, program in enumerate(programs):
        if program.pid != pid:
            raise ConfigurationError(
                f"programs must be ordered by pid: slot {pid} holds "
                f"pid {program.pid}"
            )
    if K < 1:
        raise ConfigurationError(f"K must be at least 1, got {K}")
    if not 0 <= t < n:
        raise ConfigurationError(f"t must satisfy 0 <= t < n, got t={t}, n={n}")
    if max_steps <= 0:
        raise ConfigurationError(f"max_steps must be positive, got {max_steps}")

    tapes = TapeCollection(n, seed)
    processes = [
        SimProcess(program, tapes.tape(pid))
        for pid, program in enumerate(programs)
    ]
    key_memo: dict = {}
    for process in processes:
        process.board = _SweepBoard(key_memo)

    select = _fast_selector(adversary.delivery, adversary.rng)
    assert select is not None  # guarded by sweep_eligible
    pending_crashes = list(adversary.crash_plan)

    cycle = 0
    queue: list[int] = []
    qpos = 0  # index pointer: queue[qpos:] is the live round-robin tail
    alive = list(range(n))
    crashed: set[int] = set()
    running = n
    event_count = 0
    next_message_id = 0
    buffers: list[dict[int, _FastEnv]] = [{} for _ in range(n)]
    all_envs: list[_FastEnv] = []
    pid_steps: list[list[int]] = [[] for _ in range(n)]
    last_send_event: dict[int, int] = {}
    RUNNING = ProcessStatus.RUNNING
    memo_get = key_memo.get

    while running > 0 and event_count < max_steps:
        if qpos >= len(queue):
            cycle += 1
            queue = alive.copy()
            qpos = 0
        # Crash-plan check (CycleAdversary._due_crash, inlined).
        crash_pid = None
        while pending_crashes:
            entry = pending_crashes[0]
            if entry.cycle > cycle:
                break
            pending_crashes.pop(0)
            if entry.pid not in crashed:
                crash_pid = entry.pid
                break
        if crash_pid is not None:
            queue = [p for p in queue[qpos:] if p != crash_pid]
            qpos = 0
            crashed.add(crash_pid)
            alive.remove(crash_pid)
            process = processes[crash_pid]
            if process.status is RUNNING:
                running -= 1
            process.mark_crashed()
            last_send = last_send_event.get(crash_pid)
            if last_send is not None:
                for buffer in buffers:
                    for env in buffer.values():
                        if (
                            env.sender == crash_pid
                            and env.send_event == last_send
                        ):
                            env.guaranteed = False
            event_count += 1
            continue
        # Pick the stepping processor (round-robin with crash skip).
        while True:
            if qpos >= len(queue):
                cycle += 1
                queue = alive.copy()
                qpos = 0
            pid = queue[qpos]
            qpos += 1
            if pid not in crashed:
                break
        buffer = buffers[pid]
        process = processes[pid]
        delivered = select(pid, buffer, cycle) if buffer else ()
        status_running = process.status is RUNNING
        process.clock += 1
        clock_after = process.clock
        if delivered:
            if len(delivered) == len(buffer):
                buffer.clear()
            else:
                for env in delivered:
                    del buffer[env.message_id]
            for env in delivered:
                env.receive_event = event_count
                env.receive_clock = clock_after
        if status_running:
            process.tape.next_step_value()
            if delivered:
                # Inlined _SweepBoard.post for deliveries: one shared
                # _Entry per (payload, sender), key computed once per
                # payload object.  Self-sends still go through post().
                board = process.board
                entries_append = board._entries.append
                by_key = board._by_key
                senders_by_key = board._senders_by_key
                for env in delivered:
                    sender = env.sender
                    for payload in env.payloads:
                        memo_key = id(payload)
                        hit = memo_get(memo_key)
                        if hit is None:
                            key = getattr(payload, "board_key", None)
                            value = key() if callable(key) else _NO_KEY
                            hit = (payload, value, {})
                            key_memo[memo_key] = hit
                        by_sender = hit[2]
                        entry = by_sender.get(sender)
                        if entry is None:
                            entry = _Entry(sender, payload)
                            by_sender[sender] = entry
                        entries_append(entry)
                        value = hit[1]
                        if value is not _NO_KEY:
                            by_key[value].append(entry)
                            senders_by_key[value].add(sender)
            process._advance()
            if process.status is not RUNNING:
                running -= 1
            if process._outbox:
                for recipient, payloads in process._flush_outbox():
                    env = _FastEnv(
                        next_message_id,
                        pid,
                        recipient,
                        payloads,
                        event_count,
                        clock_after,
                        cycle,
                    )
                    next_message_id += 1
                    buffers[recipient][env.message_id] = env
                    all_envs.append(env)
                last_send_event[pid] = event_count
        # A returned processor keeps absorbing events: its clock ticks and
        # its step still counts for every other message's lateness — but
        # nothing it would post, draw, or flush is observable in metrics.
        pid_steps[pid].append(event_count)
        event_count += 1

    if running > 0:
        _log.warning(
            "step horizon %d reached with processors %s still running "
            "under %s",
            max_steps,
            [
                pid
                for pid, process in enumerate(processes)
                if process.status is RUNNING
            ],
            type(adversary).__name__,
        )
    return processes, crashed, all_envs, pid_steps, event_count, running == 0


def _sweep_metrics(programs, processes, crashed, all_envs, pid_steps, event_count, terminated, n, K):
    """Assemble the :class:`RunMetrics` bundle from flat sweep state.

    Field-for-field the computation of ``extract_metrics`` +
    ``metrics_from_run`` on the equivalent ``Run``.
    """
    from repro.analysis.metrics import RunMetrics

    faulty = set(crashed)
    nonfaulty = set(range(n)) - faulty
    decisions = [process.decision for process in processes]
    decision_clocks = [process.decision_clock for process in processes]
    final_clocks = [process.clock for process in processes]
    delivered = [env for env in all_envs if env.receive_event is not None]

    rounds: int | None = None
    if terminated:
        receipts: list[list[tuple[int, int, int]]] = [[] for _ in range(n)]
        for env in delivered:
            if env.sender in nonfaulty:
                receipts[env.recipient].append(
                    (env.sender, env.send_clock, env.receive_clock)
                )
        try:
            rounds = _flat_max_decision_round(
                n, K, faulty, receipts, decision_clocks, final_clocks
            )
        except AnalysisError:
            rounds = None

    decision_values = {d for d in decisions if d is not None}
    decision = (
        next(iter(decision_values)) if len(decision_values) == 1 else None
    )
    decided_clocks = [c for c in decision_clocks if c is not None]
    on_time = not any(
        _late_flags(
            K,
            pid_steps,
            [env.send_event for env in delivered],
            [env.receive_event for env in delivered],
        )
    )

    stage_values = []
    decision_stage_values = []
    shared_values = []
    private_values = []
    for program in programs:
        if program.pid not in nonfaulty:
            continue
        stats = getattr(program, "stats", None)
        if stats is None:
            continue
        agreement = getattr(stats, "agreement", stats)
        if agreement is None:
            continue
        stage_count = getattr(agreement, "stages_started", None)
        if stage_count is not None:
            stage_values.append(stage_count)
        decided_at = getattr(agreement, "decision_stage", None)
        if decided_at is not None:
            decision_stage_values.append(decided_at)
        shared_values.append(getattr(agreement, "shared_coin_stages", 0))
        private_values.append(getattr(agreement, "private_coin_stages", 0))

    return RunMetrics(
        terminated=terminated,
        consistent=len(decision_values) <= 1,
        decision=decision,
        rounds=rounds,
        ticks=max(decided_clocks) if decided_clocks else None,
        first_decision_ticks=min(decided_clocks) if decided_clocks else None,
        stages=max(stage_values) if stage_values else None,
        decision_stage=(
            max(decision_stage_values) if decision_stage_values else None
        ),
        shared_coin_stages=max(shared_values) if shared_values else None,
        private_coin_stages=max(private_values) if private_values else None,
        messages=len(all_envs),
        events=event_count,
        crashes=len(faulty),
        on_time=on_time,
    )


def fast_commit_trial(config, seed: int):
    """Fast-core implementation of one commit Monte-Carlo trial.

    Produces a :class:`~repro.analysis.metrics.RunMetrics` equal to
    ``run_commit_trial(config, seed)`` on the reference core — via the
    fused sweep driver when the adversary qualifies, else via
    :class:`FastSimulation` (byte-identical by construction).
    """
    from repro.core.commit import CommitProgram

    votes = config.votes_for(seed)
    n = len(votes)
    t = config.t if config.t is not None else (n - 1) // 2
    programs = [
        CommitProgram(
            pid=pid,
            n=n,
            t=t,
            initial_vote=vote,
            K=config.K,
            coin_count=config.coin_count,
            halting=config.halting,
            allow_sub_resilience=config.allow_sub_resilience,
        )
        for pid, vote in enumerate(votes)
    ]
    adversary = config.adversary_factory(seed)
    from repro.models import apply_active_model

    adversary = apply_active_model(adversary, K=config.K, seed=seed)

    if not sweep_eligible(adversary):
        from repro.analysis.metrics import (
            abort_validity_satisfied,
            commit_validity_satisfied,
            extract_metrics,
        )
        from repro.core.api import ProtocolOutcome

        if not adversary_sweep_supported(adversary):
            # The silent-but-counted fallback: off-whitelist adversaries
            # (timing-model wraps included) still run byte-identically on
            # FastSimulation, but the drop off the fused sweep is a
            # performance cliff worth surfacing.  Observer-driven
            # fallbacks are deliberate and not counted.
            from repro.telemetry import registry as telemetry

            telemetry.count(
                "sim_fastcore_fallbacks_total",
                help="fast-core trials that fell back from the fused "
                "sweep to FastSimulation because the adversary is off "
                "the sweep whitelist",
                adversary=type(adversary).__name__,
            )

        simulation = FastSimulation(
            programs=programs,
            adversary=adversary,
            K=config.K,
            t=t,
            seed=seed,
            max_steps=config.max_steps,
        )
        attach = getattr(adversary, "attach", None)
        if attach is not None:
            attach(simulation)
        outcome = ProtocolOutcome(result=simulation.run())
        metrics = extract_metrics(outcome, programs=programs)
        if not abort_validity_satisfied(outcome, votes):
            raise AssertionError(
                f"abort validity violated in commit trial seed={seed}"
            )
        if not commit_validity_satisfied(outcome, votes):
            raise AssertionError(
                f"commit validity violated in commit trial seed={seed}"
            )
        return metrics

    processes, crashed, all_envs, pid_steps, event_count, terminated = (
        _sweep_run(programs, adversary, config.K, t, seed, config.max_steps)
    )
    metrics = _sweep_metrics(
        programs,
        processes,
        crashed,
        all_envs,
        pid_steps,
        event_count,
        terminated,
        n,
        config.K,
    )
    # Validity checks, mirroring run_commit_trial's assertions on the
    # equivalent Run (abort/commit_validity_satisfied).
    faulty = set(crashed)
    nonfaulty = set(range(n)) - faulty
    decisions = [process.decision for process in processes]
    is_deciding = all(decisions[pid] is not None for pid in nonfaulty)
    all_ones = all(v == 1 for v in votes)
    abort_ok = (
        not is_deciding
        or all_ones
        or all(decisions[pid] == 0 for pid in nonfaulty)
    )
    if not abort_ok:
        raise AssertionError(
            f"abort validity violated in commit trial seed={seed}"
        )
    commit_preconditions = (
        is_deciding and all_ones and not faulty and metrics.on_time
    )
    commit_ok = not commit_preconditions or all(
        decisions[pid] == 1 for pid in nonfaulty
    )
    if not commit_ok:
        raise AssertionError(
            f"commit validity violated in commit trial seed={seed}"
        )
    return metrics
