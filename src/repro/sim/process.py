"""Processor state machines and the generator-based protocol programs.

The formal model's processor is an infinite state machine whose transition
function consumes the current state, the messages received at this event,
and one random number, and produces a new state plus at most one message
per recipient.  Writing protocols directly as transition functions is
painful, so protocols here are *programs*: Python generators that yield
:class:`~repro.sim.waits.WaitCondition` objects wherever the paper's
pseudocode says ``wait``.

:class:`SimProcess` hosts a program and exposes exactly one entry point,
:meth:`SimProcess.on_step`, which realises the application of one event
``(p, M, f)``: it ticks the clock, posts ``M`` on the bulletin board, and
advances the program through every program point whose wait is satisfied.
Everything the program does within one call is, formally, one transition.
The same ``on_step`` is driven by the deterministic simulator and by the
asyncio runtime, so the protocol under test is identical in both.
"""

from __future__ import annotations

from typing import Callable, Generator, Iterable

from repro.errors import ProtocolViolation
from repro.sim.board import BulletinBoard
from repro.sim.message import Payload, ReceivedPayload
from repro.sim.tape import RandomTape
from repro.sim.waits import Never, WaitCondition
from repro.types import ProcessStatus

#: Type of the generator a protocol program's ``run`` method returns.
Script = Generator[WaitCondition, None, object]


class Program:
    """Base class for protocol programs.

    Subclasses implement :meth:`run` as a generator and use the inherited
    helpers (``broadcast``, ``send``, ``flip``, ``decide`` ...) which proxy
    to the hosting :class:`SimProcess`.  A program must be bound to a host
    before ``run`` is iterated; the host does that automatically.

    Attributes:
        pid: this processor's identifier.
        n: total number of processors in the protocol.
    """

    def __init__(self, pid: int, n: int) -> None:
        if not 0 <= pid < n:
            raise ValueError(f"pid {pid} out of range for n={n}")
        self.pid = pid
        self.n = n
        self._host: SimProcess | None = None

    # -- lifecycle ---------------------------------------------------------

    def run(self) -> Script:
        """The protocol body.  Subclasses must override."""
        raise NotImplementedError

    def bind(self, host: "SimProcess") -> None:
        """Attach this program to its hosting process (kernel use only)."""
        self._host = host

    @property
    def host(self) -> "SimProcess":
        if self._host is None:
            raise ProtocolViolation(
                f"program for processor {self.pid} used before being hosted"
            )
        return self._host

    # -- API available to protocol code ------------------------------------

    @property
    def clock(self) -> int:
        """The processor's clock: number of steps taken so far."""
        return self.host.clock

    @property
    def board(self) -> BulletinBoard:
        """The bulletin board of everything received so far."""
        return self.host.board

    def send(self, to: int, payload: Payload) -> None:
        """Queue ``payload`` for processor ``to`` (self-sends post locally)."""
        self.host.queue_send(to, payload)

    def broadcast(self, payload: Payload) -> None:
        """Send ``payload`` to every processor, including the local board.

        "Broadcast" in the paper means send to all processors and does not
        imply atomicity; the kernel models mid-broadcast crashes by letting
        the adversary drop messages sent at a crashed sender's final step.
        """
        for q in range(self.n):
            self.host.queue_send(q, payload)

    def flip(self, count: int) -> list[int]:
        """Obtain ``count`` random bits from this step's random number."""
        return self.host.flip(count)

    def decide(self, value: int) -> None:
        """Enter the absorbing decision state for ``value``."""
        self.host.record_decision(value)

    @property
    def decision(self) -> int | None:
        """The decided value, or ``None`` if undecided."""
        return self.host.decision

    def set_piggyback(
        self, provider: Callable[[int], tuple[Payload, ...]]
    ) -> None:
        """Attach extra payloads to every future outgoing envelope.

        ``provider`` is called per (recipient, step) and returns payloads to
        append; Protocol 2 uses this to piggyback the GO message on every
        message sent, including those of the agreement subroutine.
        """
        self.host.piggyback_provider = provider


class SimProcess:
    """Hosts one :class:`Program` and applies events to it.

    Attributes:
        program: the protocol program being executed.
        tape: the processor's random tape (its column of ``F``).
        clock: steps taken so far (the model's clock variable).
        board: bulletin board of received payloads.
        status: RUNNING / RETURNED / CRASHED lifecycle.
        decision: decided value, or ``None``.
        output: the program's return value once it has returned.
    """

    def __init__(self, program: Program, tape: RandomTape) -> None:
        self.program = program
        self.tape = tape
        self.clock = 0
        self.board = BulletinBoard()
        self.status = ProcessStatus.RUNNING
        self.decision: int | None = None
        self.decision_clock: int | None = None
        self.output: object = None
        self.piggyback_provider: Callable[[int], tuple[Payload, ...]] | None = None
        self._script: Script | None = None
        self._pending_wait: WaitCondition | None = None
        self._outbox: dict[int, list[Payload]] = {}
        program.bind(self)

    @property
    def pid(self) -> int:
        return self.program.pid

    @property
    def n(self) -> int:
        return self.program.n

    @property
    def halted(self) -> bool:
        """Whether the program has returned (no further protocol activity)."""
        return self.status is ProcessStatus.RETURNED

    # -- services used by Program ------------------------------------------

    def queue_send(self, to: int, payload: Payload) -> None:
        """Queue an outgoing payload, or post it locally for self-sends."""
        if to == self.pid:
            self.board.post(
                ReceivedPayload(
                    sender=self.pid, payload=payload, receive_clock=self.clock
                )
            )
            return
        self._outbox.setdefault(to, []).append(payload)

    def flip(self, count: int) -> list[int]:
        """Expand bits from the current step's tape value."""
        return self.tape.flip(count)

    def record_decision(self, value: int) -> None:
        """Record an irrevocable decision.

        Raises:
            ProtocolViolation: if a different value was already decided —
                decision states are absorbing in the model.
        """
        if self.decision is not None and self.decision != value:
            raise ProtocolViolation(
                f"processor {self.pid} tried to change its decision from "
                f"{self.decision} to {value}"
            )
        if self.decision is None:
            self.decision = value
            self.decision_clock = self.clock

    # -- event application ---------------------------------------------------

    def on_step(
        self, delivered: Iterable[ReceivedPayload]
    ) -> list[tuple[int, tuple[Payload, ...]]]:
        """Apply one event: receive ``delivered`` and take one step.

        Returns the outgoing envelopes as ``(recipient, payloads)`` pairs;
        the caller (simulator or asyncio node) wraps them in transport
        envelopes.  Calling ``on_step`` on a crashed process is a kernel
        error; calling it on a returned process just ticks the clock and
        posts the messages (a returned processor keeps absorbing messages
        but sends nothing — its protocol activity is over).
        """
        if self.status is ProcessStatus.CRASHED:
            raise ProtocolViolation(
                f"crashed processor {self.pid} cannot take steps"
            )
        self.clock += 1
        self.tape.next_step_value()
        for entry in delivered:
            self.board.post(
                ReceivedPayload(
                    sender=entry.sender,
                    payload=entry.payload,
                    receive_clock=self.clock,
                    message_id=entry.message_id,
                )
            )
        if self.status is ProcessStatus.RUNNING:
            self._advance()
        return self._flush_outbox()

    def mark_crashed(self) -> None:
        """Fail-stop this processor (kernel use only)."""
        self.status = ProcessStatus.CRASHED

    # -- internals -----------------------------------------------------------

    def _advance(self) -> None:
        """Resume the program across at most one wait this step.

        The paper's ``wait`` construct is checked once per step: "after a
        wait is encountered in its program, each time a processor takes a
        step it posts the messages received and then checks if the
        condition following the wait has been achieved".  So one step runs
        one program segment: if the pending wait is satisfied, the program
        resumes and executes (computing, sending) up to the *next* wait,
        where it stops until the following step even if that wait is
        already satisfiable.  Besides fidelity, this bounds the work and
        randomness any single transition can consume.
        """
        if self._script is None:
            self._script = self.program.run()
            self._step_script(first=True)
            return
        wait = self._pending_wait
        assert wait is not None
        if wait.satisfied(self.board, self.clock):
            self._step_script(first=False)

    def _step_script(self, first: bool) -> None:
        """Resume the generator once and arm the next wait (or finish)."""
        assert self._script is not None
        try:
            if first:
                wait = next(self._script)
            else:
                wait = self._script.send(None)
        except StopIteration as stop:
            self.status = ProcessStatus.RETURNED
            self.output = stop.value
            self._pending_wait = Never()
            return
        wait.arm(self.clock)
        self._pending_wait = wait

    def _flush_outbox(self) -> list[tuple[int, tuple[Payload, ...]]]:
        """Pack this step's sends into per-recipient payload tuples."""
        out: list[tuple[int, tuple[Payload, ...]]] = []
        for recipient in sorted(self._outbox):
            payloads = list(self._outbox[recipient])
            if self.piggyback_provider is not None:
                payloads.extend(self.piggyback_provider(recipient))
            out.append((recipient, tuple(payloads)))
        self._outbox.clear()
        return out
