"""Replay artifacts: a violating trial pinned down to a JSONL file.

An artifact captures one :class:`~repro.faults.campaign.TrialCase`
(the fully-specified trial — plan, votes, seed, budgets, program
variant) together with the per-track results observed when the
violation was found.  Because both campaign and replay execute through
:func:`~repro.faults.campaign.execute_trial_case`, and both tracks are
deterministic in the case (the simulator by construction, the runtime
via the virtual clock and per-envelope RNG streams), re-running the
case must reproduce the recorded results *byte for byte* —
:func:`verify_replay` checks exactly that and reports any drift.

Wire format (``repro.counterexample`` v1), one JSON object per line
through :mod:`repro.telemetry.runio`:

* ``{"record": "header", "schema": "repro.counterexample", "version": 1}``
* ``{"record": "case", "case": {...TrialCase.to_dict()...}}``
* one ``{"record": "expected", "track": ..., "result": {...}}`` per track
* ``{"record": "final", "properties": [...], "within_budget": ...,
  "expect_termination": ...}``
"""

from __future__ import annotations

from functools import partial
from pathlib import Path
from typing import Any

from repro.engine.executor import run_trials
from repro.errors import AnalysisError
from repro.faults.campaign import (
    CampaignConfig,
    TrialCase,
    execute_trial_case,
    run_campaign_trial,
)
from repro.faults.plan import FaultPlan
from repro.faults.safety import SAFETY_PROPERTIES
from repro.telemetry.runio import (
    check_header,
    read_jsonl_records,
    write_jsonl_records,
)

#: Schema identifier carried in every artifact header.
ARTIFACT_SCHEMA = "repro.counterexample"

#: Format version; bump on breaking changes.
ARTIFACT_VERSION = 1

def violated_properties(tracks: dict[str, Any]) -> list[str]:
    """Sorted safety properties violated on any track (liveness excluded)."""
    properties = {
        violation["property"]
        for outcome in tracks.values()
        for violation in outcome["safety"]["violations"]
        if violation["property"] in SAFETY_PROPERTIES
    }
    return sorted(properties)


def artifact_records(
    case: TrialCase, result: dict[str, Any]
) -> list[dict[str, Any]]:
    """Serialize one case plus its observed results to artifact records."""
    records: list[dict[str, Any]] = [
        {
            "record": "header",
            "schema": ARTIFACT_SCHEMA,
            "version": ARTIFACT_VERSION,
        },
        {"record": "case", "case": case.to_dict()},
    ]
    for track in case.tracks:
        records.append(
            {
                "record": "expected",
                "track": track,
                "result": result["tracks"][track],
            }
        )
    records.append(
        {
            "record": "final",
            "properties": violated_properties(result["tracks"]),
            "within_budget": result["within_budget"],
            "expect_termination": result["expect_termination"],
        }
    )
    return records


def write_artifact(
    case: TrialCase, result: dict[str, Any], path: str | Path
) -> Path:
    """Write one replay artifact; returns the path written."""
    return write_jsonl_records(artifact_records(case, result), path)


def read_artifact(
    path: str | Path,
) -> tuple[TrialCase, dict[str, dict[str, Any]]]:
    """Read an artifact back as ``(case, expected results per track)``.

    Raises:
        AnalysisError: on missing/mismatched header, missing case
            record, or tracks recorded that the case does not declare.
    """
    records = read_jsonl_records(path)
    check_header(records, ARTIFACT_SCHEMA, ARTIFACT_VERSION)
    case: TrialCase | None = None
    expected: dict[str, dict[str, Any]] = {}
    for record in records[1:]:
        kind = record.get("record")
        if kind == "case":
            case = TrialCase.from_dict(record["case"])
        elif kind == "expected":
            expected[record["track"]] = record["result"]
        elif kind == "final":
            pass
        else:
            raise AnalysisError(f"unknown artifact record type {kind!r}")
    if case is None:
        raise AnalysisError(f"artifact {path} has no case record")
    extra = set(expected) - set(case.tracks)
    if extra:
        raise AnalysisError(
            f"artifact {path} records tracks {sorted(extra)} the case "
            f"does not declare"
        )
    return case, expected


def verify_replay(path: str | Path) -> dict[str, Any]:
    """Re-execute an artifact's case and diff against its recorded results.

    Returns a report dict: ``match`` (all tracks byte-identical),
    per-track ``tracks[track]["match"]``, and for any drifting track the
    sorted keys whose values differ — the signal that determinism broke
    somewhere between recording and replay.
    """
    case, expected = read_artifact(path)
    result = execute_trial_case(case)
    tracks: dict[str, Any] = {}
    for track in case.tracks:
        want = expected.get(track)
        got = result["tracks"][track]
        if want is None:
            tracks[track] = {"match": False, "missing_expected": True}
            continue
        diverging = sorted(
            key
            for key in set(want) | set(got)
            if want.get(key) != got.get(key)
        )
        tracks[track] = {"match": not diverging, "diverging_keys": diverging}
    return {
        "artifact": str(path),
        "match": all(data["match"] for data in tracks.values()),
        "properties": violated_properties(result["tracks"]),
        "case": case.to_dict(),
        "tracks": tracks,
    }


def artifacts_from_report(
    report: dict[str, Any], out_dir: str | Path
) -> list[Path]:
    """Write one replay artifact per safety-violating trial of a campaign.

    Rebuilds each violating trial's :class:`TrialCase` from the report's
    embedded config and trial record, so artifacts can be cut from any
    stored campaign report without re-running the campaign.
    """
    config = report["config"]
    out = Path(out_dir)
    written: list[Path] = []
    for trial in report["trials"]:
        properties = violated_properties(trial["tracks"])
        if not properties:
            continue
        case = _case_from_report_trial(config, trial)
        result = {
            "within_budget": trial["within_budget"],
            "expect_termination": trial["expect_termination"],
            "tracks": trial["tracks"],
        }
        path = out / f"counterexample-seed{trial['seed']}.jsonl"
        written.append(write_artifact(case, result, path))
    return written


def _case_from_report_trial(
    config: dict[str, Any], trial: dict[str, Any]
) -> TrialCase:
    return TrialCase(
        n=config["n"],
        t=config["t"],
        K=config["K"],
        votes=tuple(trial["votes"]),
        plan=FaultPlan.from_dict(trial["plan"]),
        seed=trial["seed"],
        tracks=tuple(config["tracks"]),
        max_steps=config["max_steps"],
        deadline=config["deadline"],
        tick_interval=config["tick_interval"],
        program=config.get("program", "commit"),
    )


def first_violating_case(
    config: CampaignConfig, workers: int | None = None
) -> tuple[TrialCase, dict[str, Any]] | None:
    """Scan a campaign's seed range for its earliest safety violation.

    This is the trial-count/seed half of shrinking: a whole campaign
    collapses to the single lowest-seed ``(case, result)`` pair that
    violates safety, which the plan shrinker then minimizes further.
    Returns ``None`` when every trial is safe.
    """
    records = run_trials(
        partial(run_campaign_trial, config),
        trials=config.plans,
        base_seed=config.base_seed,
        workers=workers,
    )
    for record in records:
        if violated_properties(record["tracks"]):
            case = _case_from_report_trial(config.to_dict(), record)
            result = {
                "within_budget": record["within_budget"],
                "expect_termination": record["expect_termination"],
                "tracks": record["tracks"],
            }
            return case, result
    return None
