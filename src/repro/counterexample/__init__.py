"""Counterexample pipeline: deterministic replay, shrinking, differential oracle.

When a fault campaign finds a safety violation, this package turns the
raw finding into something a human can act on:

* :mod:`repro.counterexample.replay` — schema-versioned replay artifacts
  (``repro.counterexample`` v1, JSONL): one file pins the violating
  :class:`~repro.faults.campaign.TrialCase` plus each track's expected
  result, and re-executing it must reproduce those results byte for
  byte;
* :mod:`repro.counterexample.shrink` — a delta-debugging minimizer that
  greedily reduces the FaultPlan (drop crashes, drop/narrow partition
  windows, clear loss, drop per-link overrides, shrink ``n``/``t``)
  while the safety violation persists, probing candidates in parallel
  through :mod:`repro.engine`;
* :mod:`repro.counterexample.oracle` — a cross-track differential oracle
  that runs every plan on both the deterministic simulator and the
  virtual-clock runtime and reports semantic divergence (mismatched
  violated-property sets, or termination disagreement where termination
  is guaranteed) as first-class findings.
"""

from repro.counterexample.oracle import (
    CORE_DIFFERENTIAL_SCHEMA,
    DIFFERENTIAL_SCHEMA,
    classify_trial,
    render_core_differential_summary,
    render_differential_summary,
    run_core_differential,
    run_differential,
)
from repro.counterexample.replay import (
    ARTIFACT_SCHEMA,
    ARTIFACT_VERSION,
    artifacts_from_report,
    first_violating_case,
    read_artifact,
    verify_replay,
    violated_properties,
    write_artifact,
)
from repro.counterexample.shrink import (
    ShrinkResult,
    case_fails,
    case_size,
    render_shrink_summary,
    shrink_case,
)

__all__ = [
    "ARTIFACT_SCHEMA",
    "ARTIFACT_VERSION",
    "CORE_DIFFERENTIAL_SCHEMA",
    "DIFFERENTIAL_SCHEMA",
    "ShrinkResult",
    "artifacts_from_report",
    "case_fails",
    "case_size",
    "classify_trial",
    "first_violating_case",
    "read_artifact",
    "render_core_differential_summary",
    "render_differential_summary",
    "render_shrink_summary",
    "run_core_differential",
    "run_differential",
    "shrink_case",
    "verify_replay",
    "violated_properties",
    "write_artifact",
]
