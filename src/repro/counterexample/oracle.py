"""Cross-track differential oracle: simulator vs runtime, plan by plan.

The repo executes every FaultPlan on two independent stacks — the
deterministic cycle simulator and the asyncio runtime on a virtual
clock.  They share *no* scheduling code, so semantic disagreement
between them is a first-class finding: either one compiler mistranslates
the plan, one track's protocol implementation is wrong, or the safety
monitor is inconsistent.

What counts as divergence is deliberately narrow.  The tracks schedule
messages differently, and Protocol 2's commit/abort decision is
legitimately schedule-dependent (a vote-phase timeout on one track but
not the other flips the agreement input — both outcomes are *safe*).
Measured over seeded campaigns, roughly one plan in ten decides
commit on one track and abort on the other; flagging that would drown
real signal in noise.  A **finding** is therefore only:

* ``safety-mismatch`` — the tracks violate *different sets of safety
  properties* (one track sees an agreement violation the other does
  not, etc.); on a correct protocol both sets are empty, so any
  violation anywhere is automatically also a mismatch or a shared bug;
* ``termination-mismatch`` — the plan guarantees termination
  (within budget, coordinator survives its fan-out) yet exactly one
  track terminates.

Benign schedule-dependent drift (decision differs, or termination
differs on plans with no termination guarantee) is counted separately
in the summary — visible, but not a finding.
"""

from __future__ import annotations

import dataclasses
import json
from functools import partial
from typing import Any

from repro.faults.campaign import (
    CampaignConfig,
    run_campaign,
)
from repro.faults.safety import SAFETY_PROPERTIES
from repro.runtime.cluster import TERMINATED

#: Schema tag of the differential report document.
DIFFERENTIAL_SCHEMA = "repro.fault-differential v1"

#: Schema tag of the cross-core differential report document.
CORE_DIFFERENTIAL_SCHEMA = "repro.core-differential v1"


def _safety_set(outcome: dict[str, Any]) -> list[str]:
    return sorted(
        {
            violation["property"]
            for violation in outcome["safety"]["violations"]
            if violation["property"] in SAFETY_PROPERTIES
        }
    )


def _decision_class(outcome: dict[str, Any]) -> str:
    bits = {bit for bit in outcome["decisions"] if bit is not None}
    if bits == {1}:
        return "commit"
    if bits == {0}:
        return "abort"
    if not bits:
        return "undecided"
    return "mixed"


def classify_trial(record: dict[str, Any]) -> dict[str, Any]:
    """Classify one two-track trial record into findings and drift.

    Returns ``{"findings": [...], "decision_drift": bool,
    "termination_drift": bool}``; the input must carry both tracks.
    """
    sim = record["tracks"]["sim"]
    runtime = record["tracks"]["runtime"]
    findings: list[dict[str, Any]] = []
    sim_safety = _safety_set(sim)
    runtime_safety = _safety_set(runtime)
    if sim_safety != runtime_safety:
        findings.append(
            {
                "kind": "safety-mismatch",
                "seed": record["seed"],
                "sim": sim_safety,
                "runtime": runtime_safety,
            }
        )
    sim_terminated = sim["outcome"] == TERMINATED
    runtime_terminated = runtime["outcome"] == TERMINATED
    termination_differs = sim_terminated != runtime_terminated
    if termination_differs and record["expect_termination"]:
        findings.append(
            {
                "kind": "termination-mismatch",
                "seed": record["seed"],
                "sim": sim["outcome"],
                "runtime": runtime["outcome"],
            }
        )
    return {
        "findings": findings,
        "decision_drift": _decision_class(sim) != _decision_class(runtime),
        "termination_drift": termination_differs
        and not record["expect_termination"],
    }


def run_differential(
    config: CampaignConfig, workers: int | None = None
) -> dict[str, Any]:
    """Sweep a campaign on both tracks and report semantic divergence.

    The campaign's ``tracks`` setting is overridden to run both tracks;
    everything else (plans, seeds, program variant) is honoured, so the
    oracle can be pointed at broken variants too.  The report embeds the
    violating plans, making every finding replayable.
    """
    config = dataclasses.replace(config, tracks=("sim", "runtime"))
    campaign = run_campaign(config, workers=workers)
    findings: list[dict[str, Any]] = []
    decision_drift = 0
    termination_drift = 0
    for record in campaign["trials"]:
        verdict = classify_trial(record)
        for finding in verdict["findings"]:
            finding["plan"] = record["plan"]
            findings.append(finding)
        decision_drift += verdict["decision_drift"]
        termination_drift += verdict["termination_drift"]
    by_kind: dict[str, int] = {}
    for finding in findings:
        by_kind[finding["kind"]] = by_kind.get(finding["kind"], 0) + 1
    return {
        "schema": DIFFERENTIAL_SCHEMA,
        "config": config.to_dict(),
        "summary": {
            "plans": config.plans,
            "findings": len(findings),
            "findings_by_kind": by_kind,
            "benign_decision_drift": decision_drift,
            "benign_termination_drift": termination_drift,
            "campaign_safety_violations": campaign["summary"][
                "safety_violations"
            ],
        },
        "findings": findings,
    }


def run_core_case(config: CampaignConfig, seed: int) -> dict[str, Any]:
    """Execute trial ``seed``'s sim-track case on both execution cores.

    The two runs are serialized through the run-trace schema
    (:func:`repro.telemetry.runio.run_to_records`) and compared
    byte-for-byte — events, envelopes, decisions, pattern histories,
    everything the trace format captures.  This is the enforcement
    point of the fast core's byte-identical-``Run`` contract.
    """
    from repro.faults.campaign import case_from_config
    from repro.faults.sim_compile import compile_to_adversary
    from repro.faults.variants import make_programs
    from repro.sim.coreselect import simulation_class
    from repro.telemetry.runio import run_to_records

    case = case_from_config(config, seed)
    serialized: dict[str, str] = {}
    outcomes: dict[str, Any] = {}
    for core in ("reference", "fast"):
        simulation = simulation_class(core)(
            programs=make_programs(
                case.program, case.n, case.t, case.votes, case.K
            ),
            adversary=compile_to_adversary(case.plan, K=case.K),
            K=case.K,
            t=case.t,
            seed=case.seed,
            max_steps=case.max_steps,
        )
        result = simulation.run()
        serialized[core] = json.dumps(
            run_to_records(result.run), sort_keys=True
        )
        outcomes[core] = {
            "terminated": result.terminated,
            "decisions": [
                result.run.decisions[pid] for pid in range(case.n)
            ],
            "events": result.run.event_count,
        }
    record: dict[str, Any] = {
        "seed": seed,
        "match": serialized["reference"] == serialized["fast"],
        "events": outcomes["reference"]["events"],
    }
    if not record["match"]:
        record["plan"] = case.plan.to_dict()
        record["reference"] = outcomes["reference"]
        record["fast"] = outcomes["fast"]
    return record


def run_core_differential(
    config: CampaignConfig, workers: int | None = None
) -> dict[str, Any]:
    """Sweep a campaign's sim-track cases across both execution cores.

    Same plan/vote drawing as the campaign (so findings are replayable
    with the campaign tooling), but the comparison axis is the
    *execution core* rather than the track: every case must produce a
    byte-identical serialized ``Run`` under ``reference`` and ``fast``.
    Any divergence is a finding — there is no benign drift here.
    """
    from repro.engine.executor import run_trials

    records = run_trials(
        partial(run_core_case, config),
        trials=config.plans,
        base_seed=config.base_seed,
        workers=workers,
    )
    mismatches = [record for record in records if not record["match"]]
    return {
        "schema": CORE_DIFFERENTIAL_SCHEMA,
        "config": config.to_dict(),
        "summary": {
            "plans": config.plans,
            "findings": len(mismatches),
            "events_compared": sum(record["events"] for record in records),
        },
        "findings": mismatches,
    }


def render_core_differential_summary(report: dict[str, Any]) -> str:
    """A short human-readable digest of a cross-core report."""
    summary = report["summary"]
    verdict = "BYTE-IDENTICAL" if summary["findings"] == 0 else "DIVERGED"
    return "\n".join(
        [
            f"core differential: {summary['plans']} plans on both cores",
            f"  events compared: {summary['events_compared']}",
            f"  diverging plans: {summary['findings']}",
            f"  verdict: {verdict}",
        ]
    )


def render_differential_summary(report: dict[str, Any]) -> str:
    """A short human-readable digest of a differential report."""
    summary = report["summary"]
    lines = [
        f"differential oracle: {summary['plans']} plans on both tracks",
        f"  findings: {summary['findings']}"
        + (
            f" ({', '.join(f'{k}={v}' for k, v in sorted(summary['findings_by_kind'].items()))})"
            if summary["findings_by_kind"]
            else ""
        ),
        f"  benign drift: {summary['benign_decision_drift']} decision, "
        f"{summary['benign_termination_drift']} termination "
        f"(schedule-dependent, not findings)",
    ]
    verdict = "CONSISTENT" if summary["findings"] == 0 else "DIVERGED"
    lines.append(f"  verdict: {verdict}")
    return "\n".join(lines)
