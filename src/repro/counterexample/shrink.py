"""Delta-debugging minimizer over violating TrialCases.

A campaign-found counterexample is usually noisy: the randomized
FaultPlan that first triggered a violation carries crashes, a partition
window, background loss, and link overrides, most of which are
irrelevant to the bug.  :func:`shrink_case` strips the noise: it
repeatedly generates strictly-smaller candidate cases via reduction
operators —

* drop one crash entry,
* drop one partition window, or narrow one window (halve its span),
* clear the global loss behaviour,
* drop one per-link loss or delay override,
* remove one non-coordinator processor (shrinking ``n``, remapping the
  surviving pids in the plan and vote vector),
* lower the fault budget ``t``

Model-checker counterexamples (cases carrying a scripted ``schedule``,
see :mod:`repro.mc`) get schedule operators instead of plan operators:

* drop one scripted decision,
* drop the tail half of the schedule,
* clear one step's delivery set

— a candidate whose mutilated script is no longer applicable (it
references a message that is never sent, or steps a crashed processor)
simply counts as non-violating and is discarded.

Candidates are probed in parallel through :mod:`repro.engine`
(byte-identical to serial probing at any worker count), and greedily
recurses into the smallest candidate that still violates safety.  Every
accepted step strictly decreases the size measure :func:`case_size`, so
the loop terminates; the result is a *locally* minimal case — no single
remaining reduction preserves the violation — which for the planted
``broken-commit`` bug lands on one- or two-entry plans.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from functools import partial
from typing import Any, Iterator

from repro.engine.executor import run_trials
from repro.errors import ConfigurationError, SchedulingError
from repro.faults.campaign import TrialCase, execute_trial_case
from repro.counterexample.replay import violated_properties
from repro.faults.plan import FaultPlan
from repro.sim.decisions import StepDecision


def case_fails(case: TrialCase) -> bool:
    """Whether executing the case violates any safety property.

    A case whose scripted schedule is not applicable (shrink operators
    can cut a send that a later scripted delivery references, or leave
    a step of a processor that an earlier entry crashes) counts as
    non-violating: it is not a counterexample to anything.
    """
    try:
        result = execute_trial_case(case)
    except (SchedulingError, ConfigurationError):
        return False
    return bool(violated_properties(result["tracks"]))


def case_size(case: TrialCase) -> tuple[int, int, int, int, int, int]:
    """Lexicographic size measure the shrinker strictly decreases.

    ``(plan entries, schedule length, scheduled deliveries, n, t,
    total partition span)`` — every reduction operator lowers this
    tuple, so greedy descent terminates.  Unscheduled cases contribute
    ``(0, 0)`` for the schedule components, preserving the plan-first
    ordering the plan operators decrease.
    """
    span = sum(
        window.heal_cycle - window.start_cycle
        for window in case.plan.partitions
    )
    schedule = case.schedule or ()
    deliveries = sum(
        len(d.deliver) for d in schedule if isinstance(d, StepDecision)
    )
    return (
        case.plan.entry_count,
        len(schedule),
        deliveries,
        case.n,
        case.t,
        span,
    )


# -- reduction operators -----------------------------------------------------


def _without_index(items: tuple, index: int) -> tuple:
    return items[:index] + items[index + 1 :]


def _plan_candidates(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Strictly-smaller single-step reductions of one plan."""
    base = plan.to_dict()

    def rebuild(**changes: Any) -> FaultPlan:
        doc = dict(base)
        doc.update(changes)
        return FaultPlan.from_dict(doc)

    for index in range(len(plan.crashes)):
        yield rebuild(
            crashes=_without_index(tuple(base["crashes"]), index)
        )
    for index in range(len(plan.partitions)):
        yield rebuild(
            partitions=_without_index(tuple(base["partitions"]), index)
        )
    for index, window in enumerate(plan.partitions):
        span = window.heal_cycle - window.start_cycle
        if span > 1:
            narrowed = dict(base["partitions"][index])
            narrowed["heal_cycle"] = window.start_cycle + span // 2
            partitions = list(base["partitions"])
            partitions[index] = narrowed
            yield rebuild(partitions=partitions)
    if not plan.loss.clean:
        yield rebuild(loss={"drop": 0.0, "duplicate": 0.0, "reorder": 0.0})
    for index in range(len(plan.link_loss)):
        yield rebuild(
            link_loss=_without_index(tuple(base["link_loss"]), index)
        )
    for index in range(len(plan.link_delays)):
        yield rebuild(
            link_delays=_without_index(tuple(base["link_delays"]), index)
        )


def _remap_pid(pid: int, removed: int) -> int:
    return pid - 1 if pid > removed else pid


def _plan_without_pid(plan: FaultPlan, removed: int) -> FaultPlan:
    """The plan with processor ``removed`` gone and higher pids shifted."""
    return FaultPlan(
        n=plan.n - 1,
        seed=plan.seed,
        crashes=tuple(
            type(c)(pid=_remap_pid(c.pid, removed), cycle=c.cycle)
            for c in plan.crashes
            if c.pid != removed
        ),
        partitions=tuple(
            type(w)(
                groups=tuple(
                    tuple(
                        sorted(_remap_pid(p, removed) for p in g if p != removed)
                    )
                    for g in w.groups
                ),
                start_cycle=w.start_cycle,
                heal_cycle=w.heal_cycle,
            )
            for w in plan.partitions
        ),
        loss=plan.loss,
        link_loss=tuple(
            (_remap_pid(s, removed), _remap_pid(r, removed), loss)
            for s, r, loss in plan.link_loss
            if s != removed and r != removed
        ),
        link_delays=tuple(
            type(d)(
                sender=_remap_pid(d.sender, removed),
                recipient=_remap_pid(d.recipient, removed),
                min_cycles=d.min_cycles,
                max_cycles=d.max_cycles,
            )
            for d in plan.link_delays
            if d.sender != removed and d.recipient != removed
        ),
    )


def _schedule_candidates(
    schedule: tuple, case: TrialCase
) -> Iterator[TrialCase]:
    """Strictly-smaller single-step reductions of a scripted schedule."""
    for index in range(len(schedule)):
        yield case.replace(schedule=_without_index(schedule, index))
    if len(schedule) >= 2:
        yield case.replace(schedule=schedule[: len(schedule) // 2])
    for index, decision in enumerate(schedule):
        if isinstance(decision, StepDecision) and decision.deliver:
            cleared = StepDecision(pid=decision.pid, deliver=())
            yield case.replace(
                schedule=schedule[:index] + (cleared,) + schedule[index + 1 :]
            )


def _case_candidates(case: TrialCase) -> list[TrialCase]:
    """All valid strictly-smaller single-step reductions of one case."""
    candidates: list[TrialCase] = []

    def offer(make) -> None:
        try:
            candidate = make()
        except ConfigurationError:
            return
        if case_size(candidate) < case_size(case):
            candidates.append(candidate)

    if case.schedule is not None:
        # A scheduled case's plan is already empty and its meaning lives
        # entirely in the script; only schedule operators apply.
        for candidate in _schedule_candidates(case.schedule, case):
            offer(lambda candidate=candidate: candidate)
        return candidates

    for plan in _plan_candidates(case.plan):
        offer(lambda plan=plan: case.replace(plan=plan))
    if case.n > 2:
        for removed in range(1, case.n):  # never the coordinator
            offer(
                lambda removed=removed: case.replace(
                    n=case.n - 1,
                    t=min(case.t, case.n - 2),
                    votes=tuple(
                        vote
                        for pid, vote in enumerate(case.votes)
                        if pid != removed
                    ),
                    plan=_plan_without_pid(case.plan, removed),
                )
            )
    if case.t > 0:
        offer(lambda: case.replace(t=case.t - 1))
    return candidates


# -- parallel probing --------------------------------------------------------


def _probe_candidate(payloads: tuple[str, ...], index: int) -> dict[str, Any]:
    """Engine payload: does candidate ``index`` still violate safety?

    Candidates travel as JSON strings so the partial-bound argument is
    a small picklable tuple; ``index`` rides the engine's seed slot.
    """
    case = TrialCase.from_dict(json.loads(payloads[index]))
    return {"fails": case_fails(case)}


@dataclass
class ShrinkResult:
    """Outcome of one shrink run.

    Attributes:
        original: the case the shrinker started from.
        minimal: the locally-minimal case still violating safety.
        rounds: greedy descent steps accepted.
        probes: candidate executions performed in total.
        history: per-round records (candidates probed, size chosen).
    """

    original: TrialCase
    minimal: TrialCase
    rounds: int = 0
    probes: int = 0
    history: list[dict[str, Any]] = field(default_factory=list)

    def to_dict(self) -> dict[str, Any]:
        return {
            "original": self.original.to_dict(),
            "minimal": self.minimal.to_dict(),
            "original_size": list(case_size(self.original)),
            "minimal_size": list(case_size(self.minimal)),
            "original_entries": self.original.plan.entry_count,
            "minimal_entries": self.minimal.plan.entry_count,
            "rounds": self.rounds,
            "probes": self.probes,
            "history": self.history,
        }


def shrink_case(
    case: TrialCase,
    workers: int | None = None,
    max_rounds: int = 64,
) -> ShrinkResult:
    """Greedily minimize a violating case; see the module docstring.

    Raises:
        ConfigurationError: when the starting case does not violate
            safety (there is nothing to preserve while shrinking).
    """
    if not case_fails(case):
        raise ConfigurationError(
            "shrink_case needs a violating case; this one satisfies "
            "every safety property"
        )
    result = ShrinkResult(original=case, minimal=case)
    current = case
    for _ in range(max_rounds):
        candidates = _case_candidates(current)
        if not candidates:
            break
        payloads = tuple(
            json.dumps(c.to_dict(), sort_keys=True) for c in candidates
        )
        verdicts = run_trials(
            partial(_probe_candidate, payloads),
            trials=len(candidates),
            base_seed=0,
            workers=workers,
        )
        result.probes += len(candidates)
        failing = [
            candidate
            for candidate, verdict in zip(candidates, verdicts)
            if verdict["fails"]
        ]
        if not failing:
            break
        current = min(failing, key=case_size)
        result.rounds += 1
        result.history.append(
            {
                "candidates": len(candidates),
                "still_failing": len(failing),
                "chosen_size": list(case_size(current)),
            }
        )
    result.minimal = current
    return result


def render_shrink_summary(result: ShrinkResult) -> str:
    """A short human-readable digest of one shrink run."""
    if result.original.schedule is not None:
        minimal_schedule = result.minimal.schedule or ()
        return "\n".join(
            [
                f"shrink: {len(result.original.schedule)}-decision "
                f"schedule -> {len(minimal_schedule)}-decision schedule "
                f"in {result.rounds} rounds / {result.probes} probes",
                f"  schedule: "
                f"{[(type(d).__name__, d.pid) for d in minimal_schedule]}",
            ]
        )
    original = result.original.plan
    minimal = result.minimal.plan
    lines = [
        f"shrink: {original.entry_count}-entry plan (n={result.original.n}, "
        f"t={result.original.t}) -> {minimal.entry_count}-entry plan "
        f"(n={result.minimal.n}, t={result.minimal.t}) "
        f"in {result.rounds} rounds / {result.probes} probes",
        f"  crashes: {[(c.pid, c.cycle) for c in minimal.crashes]}",
        f"  partitions: "
        f"{[(list(map(list, w.groups)), w.start_cycle, w.heal_cycle) for w in minimal.partitions]}",
    ]
    if not minimal.loss.clean:
        lines.append(
            f"  loss: drop={minimal.loss.drop:.3f} "
            f"duplicate={minimal.loss.duplicate:.3f} "
            f"reorder={minimal.loss.reorder:.3f}"
        )
    if minimal.link_loss:
        lines.append(f"  link_loss overrides: {len(minimal.link_loss)}")
    if minimal.link_delays:
        lines.append(f"  link_delay overrides: {len(minimal.link_delays)}")
    return "\n".join(lines)
