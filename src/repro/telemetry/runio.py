"""Structured JSONL export/import of recorded :class:`~repro.sim.trace.Run`s.

Where :mod:`repro.lowerbound.serialize` persists the *schedule* (enough to
re-execute a run given the same programs and tapes), this module persists
the *run itself* — every trace event and every envelope with its typed
payloads — so a run can be archived, shipped to another process, diffed,
and analyzed without re-executing the protocol.

Format: one JSON object per line.

* line 1 — header: ``{"record": "header", "schema": "repro.run-trace",
  "version": 1, "n": ..., "t": ..., "K": ...}``;
* one ``{"record": "event", ...}`` line per trace event, in order;
* one ``{"record": "envelope", ...}`` line per envelope, in send order,
  payloads encoded by kind through the payload codec below;
* last line — footer: ``{"record": "final", ...}`` with statuses,
  decisions, decision clocks, and program outputs.

The schema is versioned; the importer rejects unknown versions rather
than guessing.  Round-trip fidelity is pinned by
``tests/telemetry/test_runio.py``: metrics extracted from an imported run
are identical to those of the original under every CLI adversary.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Any, Iterable, Iterator, Sequence

from repro.errors import AnalysisError
from repro.sim.message import Envelope, MessageId, Payload, RawPayload
from repro.sim.trace import Run, TraceEvent
from repro.types import Decision, ProcessStatus, Vote

#: Schema identifier carried in every header record.
TRACE_SCHEMA = "repro.run-trace"

#: Format version; bump on breaking changes.
TRACE_VERSION = 1


# -- generic JSONL documents -------------------------------------------------
#
# Every schema-versioned artifact in the repo (run traces here, replay
# artifacts in :mod:`repro.counterexample`) shares one wire shape: a
# JSONL file whose first record is a ``{"record": "header", "schema":
# ..., "version": ...}`` line.  These helpers centralise the
# deterministic writer (sorted keys, one record per line) and the
# strict reader (line-numbered errors, header/schema/version checks).


def write_jsonl_records(
    records: Iterable[dict[str, Any]], path: str | Path
) -> Path:
    """Write records as deterministic JSON Lines (sorted keys)."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("w", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
    return target


def read_jsonl_records(path: str | Path) -> list[dict[str, Any]]:
    """Read a JSONL file back into its records.

    Raises:
        AnalysisError: on unreadable files or invalid JSON, with the
            offending line number.
    """
    source = Path(path)
    records: list[dict[str, Any]] = []
    try:
        handle = source.open("r", encoding="utf-8")
    except OSError as exc:
        raise AnalysisError(f"cannot read {source}: {exc}") from exc
    with handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise AnalysisError(
                    f"{source}:{line_number}: invalid JSON: {exc}"
                ) from exc
    return records


def check_header(
    records: Sequence[dict[str, Any]], schema: str, version: int
) -> dict[str, Any]:
    """Validate and return the header record of a JSONL document.

    Raises:
        AnalysisError: when the document is empty, the first record is
            not a header of ``schema``, or the version differs.
    """
    if not records:
        raise AnalysisError(f"empty document: no {schema} header record")
    header = records[0]
    if header.get("record") != "header" or header.get("schema") != schema:
        raise AnalysisError(f"not a {schema} header: {header!r}")
    if header.get("version") != version:
        raise AnalysisError(
            f"unsupported {schema} version {header.get('version')!r} "
            f"(expected {version})"
        )
    return header

# -- payload codec -----------------------------------------------------------

_PAYLOAD_TYPES: dict[str, type[Payload]] = {}


def register_payload_type(cls: type[Payload]) -> type[Payload]:
    """Register a payload dataclass for (de)serialization by class name."""
    _PAYLOAD_TYPES[cls.__name__] = cls
    return cls


def _ensure_builtin_payloads() -> None:
    """Register every payload type shipped with the library.

    Imported lazily so this module stays importable without dragging the
    protocol layers in at interpreter start.
    """
    if _PAYLOAD_TYPES:
        return
    import repro.core.coin_providers  # noqa: F401  (defines CoinShare)
    import repro.core.messages  # noqa: F401
    import repro.protocols.messages  # noqa: F401

    pending = list(Payload.__subclasses__())
    while pending:
        cls = pending.pop()
        pending.extend(cls.__subclasses__())
        if dataclasses.is_dataclass(cls):
            _PAYLOAD_TYPES.setdefault(cls.__name__, cls)
    _PAYLOAD_TYPES.setdefault(RawPayload.__name__, RawPayload)


def payload_to_dict(payload: Payload) -> dict[str, Any]:
    """Encode one payload as ``{"kind": <class name>, ...fields}``."""
    if not dataclasses.is_dataclass(payload):
        raise AnalysisError(
            f"cannot serialize non-dataclass payload {payload!r}"
        )
    doc: dict[str, Any] = {"kind": type(payload).__name__}
    for field in dataclasses.fields(payload):
        value = getattr(payload, field.name)
        doc[field.name] = list(value) if isinstance(value, tuple) else value
    return doc


def payload_from_dict(doc: dict[str, Any]) -> Payload:
    """Decode one payload; inverse of :func:`payload_to_dict`.

    Raises:
        AnalysisError: for unknown payload kinds.
    """
    _ensure_builtin_payloads()
    kind = doc.get("kind")
    cls = _PAYLOAD_TYPES.get(kind)
    if cls is None:
        raise AnalysisError(
            f"unknown payload kind {kind!r}; register it with "
            f"repro.telemetry.runio.register_payload_type"
        )
    kwargs = {
        key: tuple(value) if isinstance(value, list) else value
        for key, value in doc.items()
        if key != "kind"
    }
    return cls(**kwargs)


# -- output / enum codec -----------------------------------------------------

_ENUM_TYPES = {"Decision": Decision, "Vote": Vote}


def _encode_output(value: object) -> Any:
    if isinstance(value, (Decision, Vote)):
        return {"__enum__": type(value).__name__, "value": int(value)}
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return {"__repr__": repr(value)}


def _decode_output(value: Any) -> object:
    if isinstance(value, dict):
        if "__enum__" in value:
            return _ENUM_TYPES[value["__enum__"]](value["value"])
        if "__repr__" in value:
            return value["__repr__"]
    return value


# -- export ------------------------------------------------------------------


def run_to_records(run: Run) -> list[dict[str, Any]]:
    """Serialize a run to its list of JSONL records."""
    records: list[dict[str, Any]] = [
        {
            "record": "header",
            "schema": TRACE_SCHEMA,
            "version": TRACE_VERSION,
            "n": run.n,
            "t": run.t,
            "K": run.K,
        }
    ]
    for event in run.events:
        records.append(
            {
                "record": "event",
                "index": event.index,
                "kind": event.kind,
                "actor": event.actor,
                "clock_after": event.clock_after,
                "delivered": list(event.delivered),
                "sent": list(event.sent),
                "decision_after": event.decision_after,
                "halted_after": event.halted_after,
            }
        )
    for envelope in sorted(run.envelopes.values(), key=lambda e: e.message_id):
        records.append(
            {
                "record": "envelope",
                "id": int(envelope.message_id),
                "sender": envelope.sender,
                "recipient": envelope.recipient,
                "send_event": envelope.send_event,
                "send_clock": envelope.send_clock,
                "receive_event": envelope.receive_event,
                "guaranteed": envelope.guaranteed,
                "payloads": [payload_to_dict(p) for p in envelope.payloads],
            }
        )
    records.append(
        {
            "record": "final",
            "statuses": {
                str(pid): status.name for pid, status in run.statuses.items()
            },
            "decisions": {
                str(pid): value for pid, value in run.decisions.items()
            },
            "decision_clocks": {
                str(pid): value for pid, value in run.decision_clocks.items()
            },
            "outputs": {
                str(pid): _encode_output(value)
                for pid, value in run.outputs.items()
            },
        }
    )
    return records


def export_run_jsonl(run: Run, path: str | Path) -> Path:
    """Write a run as JSON Lines; returns the path written."""
    return write_jsonl_records(run_to_records(run), path)


# -- import ------------------------------------------------------------------


def run_from_records(records: Iterable[dict[str, Any]]) -> Run:
    """Rebuild a :class:`Run` from its records; inverse of
    :func:`run_to_records`.

    Raises:
        AnalysisError: on a missing/invalid header, unknown schema
            version, or malformed records.
    """
    iterator: Iterator[dict[str, Any]] = iter(records)
    try:
        header = next(iterator)
    except StopIteration:
        raise AnalysisError("empty trace: no header record") from None
    if header.get("record") != "header" or header.get("schema") != TRACE_SCHEMA:
        raise AnalysisError(f"not a {TRACE_SCHEMA} header: {header!r}")
    if header.get("version") != TRACE_VERSION:
        raise AnalysisError(
            f"unsupported trace version {header.get('version')!r} "
            f"(expected {TRACE_VERSION})"
        )
    run = Run(n=header["n"], t=header["t"], K=header["K"])
    saw_final = False
    for number, record in enumerate(iterator, start=2):
        kind = record.get("record")
        try:
            if kind == "event":
                run.events.append(
                    TraceEvent(
                        index=record["index"],
                        kind=record["kind"],
                        actor=record["actor"],
                        clock_after=record["clock_after"],
                        delivered=tuple(
                            MessageId(m) for m in record["delivered"]
                        ),
                        sent=tuple(MessageId(m) for m in record["sent"]),
                        decision_after=record["decision_after"],
                        halted_after=record["halted_after"],
                    )
                )
            elif kind == "envelope":
                message_id = MessageId(record["id"])
                run.envelopes[message_id] = Envelope(
                    message_id=message_id,
                    sender=record["sender"],
                    recipient=record["recipient"],
                    payloads=tuple(
                        payload_from_dict(p) for p in record["payloads"]
                    ),
                    send_event=record["send_event"],
                    send_clock=record["send_clock"],
                    receive_event=record["receive_event"],
                    guaranteed=record["guaranteed"],
                )
            elif kind == "final":
                saw_final = True
                run.statuses = {
                    int(pid): ProcessStatus[name]
                    for pid, name in record["statuses"].items()
                }
                run.decisions = {
                    int(pid): value
                    for pid, value in record["decisions"].items()
                }
                run.decision_clocks = {
                    int(pid): value
                    for pid, value in record["decision_clocks"].items()
                }
                run.outputs = {
                    int(pid): _decode_output(value)
                    for pid, value in record["outputs"].items()
                }
            else:
                raise AnalysisError(f"unknown record type {kind!r}")
        except (KeyError, TypeError, ValueError) as exc:
            raise AnalysisError(
                f"malformed trace record #{number}: {record!r}"
            ) from exc
    if not saw_final:
        raise AnalysisError("truncated trace: no final record")
    return run


def import_run_jsonl(path: str | Path) -> Run:
    """Read a run back from a JSONL file written by
    :func:`export_run_jsonl`."""
    return run_from_records(read_jsonl_records(path))
