"""The metrics registry: counters, gauges, and histograms with labels.

The registry is deliberately tiny and dependency-free (the container has
no prometheus_client); it implements the same data model — named metric
families, each holding one sample per label set — plus a text exposition
renderer compatible with the Prometheus format, so snapshots can be
scraped, diffed, or piped into standard tooling.

Telemetry is **off by default** and the hot path is guarded at the call
sites: instrumented code checks :func:`enabled` (one attribute read)
before touching any instrument, so a run with telemetry disabled performs
no registry lookups, allocates nothing, and mutates nothing.  The
overhead guarantee is pinned by ``tests/telemetry/test_overhead.py``.
"""

from __future__ import annotations

import bisect
import contextlib
import math
import threading
import time
from typing import Any, Iterator, Mapping, Sequence

from repro.errors import ConfigurationError

#: Default histogram buckets, in seconds (timings) — generic enough for
#: counts too; pass explicit ``buckets`` for count-shaped histograms.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.001,
    0.005,
    0.01,
    0.05,
    0.1,
    0.5,
    1.0,
    5.0,
    10.0,
)

#: Buckets suited to small integer quantities (stages, rounds, crashes).
COUNT_BUCKETS: tuple[float, ...] = (1, 2, 4, 8, 14, 20, 32, 64, 128)

LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: Mapping[str, Any]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Metric:
    """Base class for one named metric family."""

    kind = "untyped"

    def __init__(self, name: str, help: str, registry: "MetricsRegistry") -> None:
        self.name = name
        self.help = help
        self._registry = registry

    def samples(self) -> dict[LabelKey, Any]:  # pragma: no cover - abstract
        raise NotImplementedError


class Counter(Metric):
    """A monotonically increasing sum, one cell per label set."""

    kind = "counter"

    def __init__(self, name: str, help: str, registry: "MetricsRegistry") -> None:
        super().__init__(name, help, registry)
        self._values: dict[LabelKey, float] = {}

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        if not self._registry.enabled:
            return
        if amount < 0:
            raise ConfigurationError(
                f"counter {self.name} cannot decrease (inc by {amount})"
            )
        key = _label_key(labels)
        with self._registry._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: Any) -> float:
        """Current value for one label set (0 if never incremented)."""
        return self._values.get(_label_key(labels), 0.0)

    def samples(self) -> dict[LabelKey, float]:
        return dict(self._values)


class Gauge(Metric):
    """A value that can go up and down, one cell per label set."""

    kind = "gauge"

    def __init__(self, name: str, help: str, registry: "MetricsRegistry") -> None:
        super().__init__(name, help, registry)
        self._values: dict[LabelKey, float] = {}

    def set(self, value: float, **labels: Any) -> None:
        if not self._registry.enabled:
            return
        with self._registry._lock:
            self._values[_label_key(labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        if not self._registry.enabled:
            return
        key = _label_key(labels)
        with self._registry._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: Any) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: Any) -> float:
        return self._values.get(_label_key(labels), 0.0)

    def samples(self) -> dict[LabelKey, float]:
        return dict(self._values)


class _HistogramCell:
    """Count/sum/bucket-counts for one label set of a histogram."""

    __slots__ = ("count", "total", "bucket_counts")

    def __init__(self, bucket_count: int) -> None:
        self.count = 0
        self.total = 0.0
        self.bucket_counts = [0] * bucket_count  # non-cumulative, no +Inf

    def observe(self, value: float, bounds: Sequence[float]) -> None:
        self.count += 1
        self.total += value
        index = bisect.bisect_left(bounds, value)
        if index < len(self.bucket_counts):
            self.bucket_counts[index] += 1


class Histogram(Metric):
    """A distribution: observation count, sum, and bucketed counts."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        registry: "MetricsRegistry",
        buckets: Sequence[float] | None = None,
    ) -> None:
        super().__init__(name, help, registry)
        bounds = tuple(sorted(buckets if buckets is not None else DEFAULT_BUCKETS))
        if not bounds:
            raise ConfigurationError(f"histogram {name} needs at least one bucket")
        self.bounds = bounds
        self._cells: dict[LabelKey, _HistogramCell] = {}

    def observe(self, value: float, **labels: Any) -> None:
        if not self._registry.enabled:
            return
        key = _label_key(labels)
        with self._registry._lock:
            cell = self._cells.get(key)
            if cell is None:
                cell = self._cells[key] = _HistogramCell(len(self.bounds))
            cell.observe(float(value), self.bounds)

    @contextlib.contextmanager
    def time(self, **labels: Any) -> Iterator[None]:
        """Observe the wall-clock duration of the ``with`` body."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.observe(time.perf_counter() - start, **labels)

    def cell(self, **labels: Any) -> _HistogramCell | None:
        return self._cells.get(_label_key(labels))

    def samples(self) -> dict[LabelKey, _HistogramCell]:
        return dict(self._cells)

    def merge_sample(
        self,
        labels: Mapping[str, Any],
        count: int,
        total: float,
        bucket_counts: Sequence[int],
    ) -> None:
        """Fold one exported cell into this histogram (worker merge)."""
        if not self._registry.enabled:
            return
        if len(bucket_counts) != len(self.bounds):
            raise ConfigurationError(
                f"histogram {self.name}: cannot merge {len(bucket_counts)} "
                f"buckets into {len(self.bounds)}"
            )
        key = _label_key(labels)
        with self._registry._lock:
            cell = self._cells.get(key)
            if cell is None:
                cell = self._cells[key] = _HistogramCell(len(self.bounds))
            cell.count += count
            cell.total += total
            for index, value in enumerate(bucket_counts):
                cell.bucket_counts[index] += value


class MetricsRegistry:
    """A collection of named metric families.

    Args:
        enabled: whether instruments attached to this registry record
            anything.  Disabled instruments are no-ops.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._metrics: dict[str, Metric] = {}
        self._lock = threading.Lock()

    # -- instrument accessors (create-or-get) ------------------------------

    def _get(self, name: str, cls: type, help: str, **kwargs: Any) -> Any:
        metric = self._metrics.get(name)
        if metric is None:
            with self._lock:
                metric = self._metrics.get(name)
                if metric is None:
                    metric = cls(name, help, self, **kwargs)
                    self._metrics[name] = metric
        if not isinstance(metric, cls):
            raise ConfigurationError(
                f"metric {name!r} already registered as {metric.kind}, "
                f"requested {cls.kind}"
            )
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get(name, Counter, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get(name, Gauge, help)

    def histogram(
        self, name: str, help: str = "", buckets: Sequence[float] | None = None
    ) -> Histogram:
        return self._get(name, Histogram, help, buckets=buckets)

    def metrics(self) -> dict[str, Metric]:
        return dict(self._metrics)

    def reset(self) -> None:
        """Drop every metric family (used between runs and in tests)."""
        with self._lock:
            self._metrics.clear()

    # -- merge -------------------------------------------------------------

    def merge_snapshot(self, snapshot: Mapping[str, Any]) -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        Used by the batch engine to combine per-worker registries into
        the parent's: counters and histogram cells add; gauges take the
        incoming value (last write wins, matching serial semantics where
        the most recent ``set`` survives).  No-op when disabled.
        """
        if not self.enabled:
            return
        for name, data in snapshot.items():
            kind = data.get("type")
            help_text = data.get("help", "")
            samples = data.get("samples", ())
            if kind == "counter":
                counter = self.counter(name, help_text)
                for sample in samples:
                    if sample["value"]:
                        counter.inc(sample["value"], **sample["labels"])
            elif kind == "gauge":
                gauge = self.gauge(name, help_text)
                for sample in samples:
                    gauge.set(sample["value"], **sample["labels"])
            elif kind == "histogram":
                # Bounds travel at family level so registered-but-empty
                # families survive the merge; older snapshots only carry
                # them per sample.
                bounds_raw = data.get("buckets")
                if bounds_raw is None and samples:
                    bounds_raw = list(samples[0]["buckets"])
                if bounds_raw is None:
                    continue
                bounds = tuple(
                    math.inf if raw == "+Inf" else float(raw)
                    for raw in bounds_raw
                )
                histogram = self.histogram(name, help_text, buckets=bounds)
                if histogram.bounds != tuple(sorted(bounds)):
                    # ``histogram()`` returns the already-registered family
                    # and ignores the requested buckets, so a snapshot
                    # recorded against different bounds must be rejected —
                    # folding its bucket counts into foreign bounds would
                    # silently corrupt the distribution.
                    raise ConfigurationError(
                        f"histogram {name!r}: snapshot buckets "
                        f"{[_format_bound(b) for b in sorted(bounds)]} do not "
                        f"match registered buckets "
                        f"{[_format_bound(b) for b in histogram.bounds]}"
                    )
                for sample in samples:
                    histogram.merge_sample(
                        sample["labels"],
                        count=sample["count"],
                        total=sample["sum"],
                        bucket_counts=list(sample["buckets"].values()),
                    )
            else:
                raise ConfigurationError(
                    f"cannot merge metric {name!r} of unknown kind {kind!r}"
                )

    # -- export ------------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """A plain-data view of every metric, suitable for JSON."""
        out: dict[str, Any] = {}
        for name, metric in sorted(self._metrics.items()):
            if isinstance(metric, Histogram):
                samples = [
                    {
                        "labels": dict(key),
                        "count": cell.count,
                        "sum": cell.total,
                        "buckets": {
                            _format_bound(bound): count
                            for bound, count in zip(
                                metric.bounds, cell.bucket_counts
                            )
                        },
                    }
                    for key, cell in sorted(metric.samples().items())
                ]
            else:
                samples = [
                    {"labels": dict(key), "value": value}
                    for key, value in sorted(metric.samples().items())
                ]
            out[name] = {
                "type": metric.kind,
                "help": metric.help,
                "samples": samples,
            }
            if isinstance(metric, Histogram):
                out[name]["buckets"] = [
                    _format_bound(bound) for bound in metric.bounds
                ]
        return out

    def render_prometheus(self) -> str:
        """Prometheus text exposition of the whole registry."""
        lines: list[str] = []
        for name, metric in sorted(self._metrics.items()):
            if metric.help:
                lines.append(f"# HELP {name} {metric.help}")
            lines.append(f"# TYPE {name} {metric.kind}")
            if isinstance(metric, Histogram):
                for key, cell in sorted(metric.samples().items()):
                    cumulative = 0
                    for bound, count in zip(metric.bounds, cell.bucket_counts):
                        cumulative += count
                        lines.append(
                            f"{name}_bucket"
                            f"{_render_labels(key, le=_format_bound(bound))} "
                            f"{cumulative}"
                        )
                    lines.append(
                        f"{name}_bucket{_render_labels(key, le='+Inf')} "
                        f"{cell.count}"
                    )
                    lines.append(
                        f"{name}_sum{_render_labels(key)} "
                        f"{_format_value(cell.total)}"
                    )
                    lines.append(
                        f"{name}_count{_render_labels(key)} {cell.count}"
                    )
            else:
                for key, value in sorted(metric.samples().items()):
                    lines.append(
                        f"{name}{_render_labels(key)} {_format_value(value)}"
                    )
        return "\n".join(lines) + ("\n" if lines else "")


def _format_bound(bound: float) -> str:
    if bound == math.inf:
        return "+Inf"
    if float(bound).is_integer():
        return str(int(bound))
    return repr(float(bound))


def _format_value(value: float) -> str:
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _render_labels(key: LabelKey, **extra: str) -> str:
    pairs = list(key) + sorted(extra.items())
    if not pairs:
        return ""
    body = ",".join(f'{name}="{value}"' for name, value in pairs)
    return "{" + body + "}"


# -- the default registry ---------------------------------------------------

_default = MetricsRegistry(enabled=False)


def get_registry() -> MetricsRegistry:
    """The process-wide default registry (disabled until enabled)."""
    return _default


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the default registry; returns the previous one."""
    global _default
    previous = _default
    _default = registry
    return previous


@contextlib.contextmanager
def use_registry(registry: MetricsRegistry) -> Iterator[MetricsRegistry]:
    """Temporarily install ``registry`` as the default."""
    previous = set_registry(registry)
    try:
        yield registry
    finally:
        set_registry(previous)


def enable_telemetry() -> MetricsRegistry:
    """Switch the default registry on; returns it."""
    _default.enabled = True
    return _default


def disable_telemetry() -> MetricsRegistry:
    """Switch the default registry off; returns it."""
    _default.enabled = False
    return _default


def enabled() -> bool:
    """Whether the default registry is recording.

    This is the hot-path guard: instrumented code calls it (or caches the
    registry reference) before constructing labels or fetching
    instruments, so disabled telemetry costs one attribute read.
    """
    return _default.enabled


def active_registry() -> MetricsRegistry | None:
    """The default registry if enabled, else ``None``.

    Components that hold a per-run telemetry reference (the scheduler, the
    cluster) resolve it once through this accessor.
    """
    return _default if _default.enabled else None


# -- convenience emitters (no-ops when disabled) -----------------------------


def count(name: str, amount: float = 1.0, help: str = "", **labels: Any) -> None:
    """Increment a counter on the default registry (no-op when disabled)."""
    if not _default.enabled:
        return
    _default.counter(name, help).inc(amount, **labels)


def observe(
    name: str,
    value: float,
    help: str = "",
    buckets: Sequence[float] | None = None,
    **labels: Any,
) -> None:
    """Observe into a histogram on the default registry."""
    if not _default.enabled:
        return
    _default.histogram(name, help, buckets=buckets).observe(value, **labels)


def set_gauge(name: str, value: float, help: str = "", **labels: Any) -> None:
    """Set a gauge on the default registry."""
    if not _default.enabled:
        return
    _default.gauge(name, help).set(value, **labels)
