"""Per-phase counters and machine-readable run documents.

Bridges the raw trace (:class:`~repro.sim.trace.Run`) and the metrics
registry: :func:`run_counters` derives the per-phase counter bundle the
paper's claims are stated over (messages by payload kind, stage
transitions, round boundaries, late messages, coin-source usage);
:func:`record_run` replays those counters into a registry (used by
``repro stats`` on archived traces); and the ``*_document`` builders
assemble the schema-versioned JSON the CLI emits with ``--json``.
"""

from __future__ import annotations

from collections import Counter as TallyCounter
from dataclasses import asdict
from typing import Any, Sequence

from repro.errors import AnalysisError
from repro.sim.rounds import RoundAnalyzer
from repro.sim.trace import Run
from repro.telemetry.registry import COUNT_BUCKETS, MetricsRegistry
from repro.telemetry.runio import TRACE_SCHEMA, TRACE_VERSION, run_to_records

#: Schema identifier of the ``run-commit --json`` document.
RUN_DOCUMENT_SCHEMA = "repro.run-commit"
RUN_DOCUMENT_VERSION = 1

#: Schema identifier of the ``experiment --json`` document.
EXPERIMENT_DOCUMENT_SCHEMA = "repro.experiment"
EXPERIMENT_DOCUMENT_VERSION = 1


def _agreement_counters(programs: Sequence[Any] | None) -> dict[str, Any]:
    """Stage/coin counters from program stats (None when unavailable)."""
    if not programs:
        return {}
    stages: list[int] = []
    decision_stages: list[int] = []
    shared = 0
    private = 0
    for program in programs:
        stats = getattr(program, "stats", None)
        agreement = getattr(stats, "agreement", stats)
        if agreement is None:
            continue
        started = getattr(agreement, "stages_started", None)
        if started is not None:
            stages.append(started)
        decided_at = getattr(agreement, "decision_stage", None)
        if decided_at is not None:
            decision_stages.append(decided_at)
        shared += getattr(agreement, "shared_coin_stages", 0)
        private += getattr(agreement, "private_coin_stages", 0)
    if not stages and not decision_stages and not shared and not private:
        return {}
    return {
        "stages": max(stages) if stages else None,
        "decision_stage": max(decision_stages) if decision_stages else None,
        "coin_usage": {"shared": shared, "private": private},
    }


def decision_rounds(run: Run) -> dict[int, int | None] | None:
    """Per-processor decision rounds, or ``None`` if analysis diverges."""
    try:
        return RoundAnalyzer(run).decision_rounds()
    except AnalysisError:
        return None


def run_counters(
    run: Run, programs: Sequence[Any] | None = None
) -> dict[str, Any]:
    """The per-phase counter bundle for one completed run.

    Everything here is derived from the trace (plus program stats when
    supplied), so the same numbers are available for live runs and for
    archived traces re-imported through :mod:`repro.telemetry.runio`.
    """
    events_by_kind: TallyCounter[str] = TallyCounter(
        event.kind for event in run.events
    )
    rounds = decision_rounds(run)
    counters: dict[str, Any] = {
        "events": {
            "total": run.event_count,
            "by_kind": dict(sorted(events_by_kind.items())),
        },
        "messages": {
            "envelopes_sent": run.messages_sent(),
            "envelopes_delivered": sum(
                1 for e in run.envelopes.values() if e.delivered
            ),
            "sent_by_kind": run.payload_kind_counts(),
            "delivered_by_kind": run.payload_kind_counts(delivered_only=True),
            "late": run.late_count(),
        },
        "rounds": {
            "decision_rounds": (
                {str(pid): r for pid, r in sorted(rounds.items())}
                if rounds is not None
                else None
            ),
            "max_decision_round": (
                max(
                    (r for r in rounds.values() if r is not None),
                    default=None,
                )
                if rounds is not None
                else None
            ),
        },
        "crashes": len(run.faulty()),
    }
    agreement = _agreement_counters(programs)
    if agreement:
        counters["agreement"] = agreement
    return counters


def record_run(
    run: Run,
    registry: MetricsRegistry,
    programs: Sequence[Any] | None = None,
) -> None:
    """Replay a completed run's counters into ``registry``.

    Used by ``repro stats`` on imported traces and by tests; live runs
    get the same numbers incrementally from the scheduler hooks.
    """
    if not registry.enabled:
        return
    counters = run_counters(run, programs=programs)
    events = registry.counter("run_events_total", "trace events by kind")
    for kind, count in counters["events"]["by_kind"].items():
        events.inc(count, kind=kind)
    sent = registry.counter(
        "run_messages_sent_total", "payloads sent, by payload kind"
    )
    for kind, count in counters["messages"]["sent_by_kind"].items():
        sent.inc(count, kind=kind)
    delivered = registry.counter(
        "run_messages_delivered_total", "payloads delivered, by payload kind"
    )
    for kind, count in counters["messages"]["delivered_by_kind"].items():
        delivered.inc(count, kind=kind)
    registry.counter("run_late_messages_total", "late envelopes").inc(
        counters["messages"]["late"]
    )
    registry.counter("run_crashes_total", "crashed processors").inc(
        counters["crashes"]
    )
    registry.counter("runs_recorded_total", "runs recorded").inc()
    max_round = counters["rounds"]["max_decision_round"]
    if max_round is not None:
        registry.histogram(
            "run_decision_rounds",
            "rounds to the last decision",
            buckets=COUNT_BUCKETS,
        ).observe(max_round)
    ticks = run.max_decision_clock()
    if ticks is not None:
        registry.histogram(
            "run_decision_ticks",
            "clock ticks to the last decision",
            buckets=(8, 16, 32, 64, 128, 256, 512, 1024),
        ).observe(ticks)


def run_commit_document(
    run: Run,
    params: dict[str, Any],
    programs: Sequence[Any] | None = None,
    metrics: Any | None = None,
    registry: MetricsRegistry | None = None,
) -> dict[str, Any]:
    """The schema-versioned JSON document for ``run-commit --json``.

    The embedded ``trace`` section is the full JSONL record list, so the
    document round-trips through :func:`repro.telemetry.runio.run_from_records`
    with identical :class:`~repro.analysis.metrics.RunMetrics`.
    """
    from repro.analysis.metrics import metrics_from_run

    if metrics is None:
        metrics = metrics_from_run(run)
    document: dict[str, Any] = {
        "schema": RUN_DOCUMENT_SCHEMA,
        "version": RUN_DOCUMENT_VERSION,
        "params": params,
        "metrics": asdict(metrics),
        "counters": run_counters(run, programs=programs),
        "trace": {
            "schema": TRACE_SCHEMA,
            "version": TRACE_VERSION,
            "records": run_to_records(run),
        },
    }
    if registry is not None:
        document["telemetry"] = registry.snapshot()
    return document


def experiment_document(
    experiment_id: str,
    table: Any,
    seconds: float,
    registry: MetricsRegistry | None = None,
) -> dict[str, Any]:
    """The schema-versioned JSON document for ``experiment --json``."""
    document: dict[str, Any] = {
        "schema": EXPERIMENT_DOCUMENT_SCHEMA,
        "version": EXPERIMENT_DOCUMENT_VERSION,
        "id": experiment_id,
        "table": table.to_dict(),
        "seconds": seconds,
    }
    if registry is not None:
        document["telemetry"] = registry.snapshot()
    return document
