"""A stdlib-only live metrics endpoint: ``/metrics`` and ``/healthz``.

Long-running commands (``faults campaign``, ``mc explore``, soak loops)
were previously dark while executing — telemetry existed only as an
end-of-run snapshot.  :class:`MetricsServer` runs a
:class:`~http.server.ThreadingHTTPServer` on a daemon thread and
renders the process-wide default registry on every scrape, so a
``curl localhost:PORT/metrics`` (or a Prometheus scraper) observes
campaign/exploration progress counters *while* the run is in flight.

No third-party dependencies: the exposition text comes from
:meth:`~repro.telemetry.registry.MetricsRegistry.render_prometheus`,
which is already format-compatible.  Port 0 binds an ephemeral port
(the bound port is available as :attr:`MetricsServer.port`), which is
what the tests use.
"""

from __future__ import annotations

import contextlib
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Iterator

from repro.telemetry import registry as telemetry

#: Content type mandated by the Prometheus text exposition format.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class _MetricsHandler(BaseHTTPRequestHandler):
    """Serves ``/metrics``, ``/healthz``, and 404 for everything else."""

    server_version = "repro-metrics/1"

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        path = self.path.split("?", 1)[0]
        if path == "/metrics":
            registry = self.server.registry or telemetry.get_registry()
            body = registry.render_prometheus().encode("utf-8")
            self._reply(200, PROMETHEUS_CONTENT_TYPE, body)
        elif path == "/healthz":
            self._reply(200, "text/plain; charset=utf-8", b"ok\n")
        else:
            self._reply(
                404, "text/plain; charset=utf-8", b"not found\n"
            )

    def _reply(self, status: int, content_type: str, body: bytes) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args: object) -> None:
        """Silence per-request stderr logging (scrapers are chatty)."""


class _Server(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True
    registry: telemetry.MetricsRegistry | None = None


class MetricsServer:
    """A background HTTP server exposing the default metrics registry.

    Usage::

        server = MetricsServer(port=9464)
        server.start()
        try:
            ...  # long-running work; scrape http://localhost:9464/metrics
        finally:
            server.stop()

    or as a context manager.  ``registry`` overrides the scraped
    registry (tests); by default every request renders the process-wide
    default at scrape time, so metrics recorded after :meth:`start` are
    visible.
    """

    def __init__(
        self,
        port: int = 0,
        host: str = "127.0.0.1",
        registry: telemetry.MetricsRegistry | None = None,
    ) -> None:
        self._host = host
        self._requested_port = port
        self._registry = registry
        self._server: _Server | None = None
        self._thread: threading.Thread | None = None

    @property
    def port(self) -> int:
        """The bound port (resolves port 0 to the ephemeral choice)."""
        if self._server is None:
            return self._requested_port
        return self._server.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self._host}:{self.port}"

    def start(self) -> "MetricsServer":
        """Bind and serve on a daemon thread; returns ``self``."""
        if self._server is not None:
            return self
        server = _Server((self._host, self._requested_port), _MetricsHandler)
        server.registry = self._registry
        thread = threading.Thread(
            target=server.serve_forever,
            name=f"repro-metrics:{server.server_address[1]}",
            daemon=True,
        )
        thread.start()
        self._server = server
        self._thread = thread
        return self

    def stop(self) -> None:
        """Shut the server down and join its thread."""
        if self._server is None:
            return
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
        self._server = None
        self._thread = None

    def __enter__(self) -> "MetricsServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()


@contextlib.contextmanager
def serving_metrics(
    port: int = 0, host: str = "127.0.0.1"
) -> Iterator[MetricsServer]:
    """Context manager form used by the CLI's ``--serve-metrics``."""
    server = MetricsServer(port=port, host=host)
    server.start()
    try:
        yield server
    finally:
        server.stop()
