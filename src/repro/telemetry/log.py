"""The ``repro`` debug-logging channel.

The simulator's failure modes (a non-applicable replay event, an
adversary schedule that stalls until the step horizon, a cluster node
missing its deadline) used to be silent or surfaced only as bare
exceptions.  Every subsystem now logs through a child of the ``repro``
logger; :func:`configure_logging` wires a stderr handler, and the CLI
exposes it as ``--log-level``.

Library rule: the package never configures handlers on import (standard
library-logging etiquette) — without :func:`configure_logging` records
propagate to the root logger and vanish unless the host application set
logging up itself.
"""

from __future__ import annotations

import logging
import sys
from typing import IO

#: Root of the package's logger hierarchy.
LOGGER_NAME = "repro"

#: Marker attribute so repeated configuration replaces our handler
#: instead of stacking duplicates.
_HANDLER_FLAG = "_repro_telemetry_handler"

#: Accepted ``--log-level`` values, mapped to stdlib levels.
LOG_LEVELS: dict[str, int] = {
    "debug": logging.DEBUG,
    "info": logging.INFO,
    "warning": logging.WARNING,
    "error": logging.ERROR,
    "critical": logging.CRITICAL,
}


def get_logger(name: str | None = None) -> logging.Logger:
    """The package logger, or the ``repro.<name>`` child for a subsystem."""
    if name is None:
        return logging.getLogger(LOGGER_NAME)
    if name.startswith(f"{LOGGER_NAME}."):
        return logging.getLogger(name)
    return logging.getLogger(f"{LOGGER_NAME}.{name}")


def configure_logging(
    level: int | str = "warning", stream: IO[str] | None = None
) -> logging.Logger:
    """Attach a stream handler to the ``repro`` logger at ``level``.

    Idempotent: calling again replaces the previously attached handler
    (so tests and long-lived sessions can re-aim or re-level it).

    Args:
        level: stdlib level number or one of :data:`LOG_LEVELS`.
        stream: destination, default ``sys.stderr``.

    Returns:
        The configured ``repro`` logger.
    """
    if isinstance(level, str):
        try:
            level = LOG_LEVELS[level.lower()]
        except KeyError:
            raise ValueError(
                f"unknown log level {level!r}; "
                f"expected one of {', '.join(LOG_LEVELS)}"
            ) from None
    logger = get_logger()
    for handler in list(logger.handlers):
        if getattr(handler, _HANDLER_FLAG, False):
            logger.removeHandler(handler)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(
        logging.Formatter("%(asctime)s %(levelname)s %(name)s: %(message)s")
    )
    setattr(handler, _HANDLER_FLAG, True)
    logger.addHandler(handler)
    logger.setLevel(level)
    return logger
