"""Telemetry: metrics registry, debug logging, and run archival.

Three layers, all optional and all off by default:

* :mod:`repro.telemetry.registry` — counters, gauges, and histograms
  with labels, a process-wide default registry, and Prometheus-style
  text exposition.  Instrumentation threaded through the scheduler, the
  protocol programs, and the asyncio runtime records per-phase counters
  (messages by payload kind, stage transitions, coin-source usage,
  timeouts, wall-clock per scheduler step batch) whenever the default
  registry is enabled, at near-zero cost when it is not;
* :mod:`repro.telemetry.log` — the ``repro`` :mod:`logging` channel
  (``--log-level`` on the CLI);
* :mod:`repro.telemetry.server` — a stdlib background HTTP server
  exposing the default registry at ``/metrics`` (Prometheus text) and
  ``/healthz``, wired to ``--serve-metrics PORT`` on long-running CLI
  commands;
* :mod:`repro.telemetry.runio` / :mod:`repro.telemetry.summary` —
  schema-versioned JSONL export/import of full runs and the per-phase
  counter bundles and ``--json`` documents derived from them.

See ``docs/OBSERVABILITY.md`` for the event schema and CLI examples.
"""

from repro.telemetry.log import LOG_LEVELS, configure_logging, get_logger
from repro.telemetry.registry import (
    COUNT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    active_registry,
    count,
    disable_telemetry,
    enable_telemetry,
    enabled,
    get_registry,
    observe,
    set_gauge,
    set_registry,
    use_registry,
)
from repro.telemetry.server import MetricsServer, serving_metrics

__all__ = [
    "COUNT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "LOG_LEVELS",
    "MetricsRegistry",
    "MetricsServer",
    "active_registry",
    "configure_logging",
    "count",
    "disable_telemetry",
    "enable_telemetry",
    "enabled",
    "get_logger",
    "get_registry",
    "observe",
    "set_gauge",
    "set_registry",
    "serving_metrics",
    "use_registry",
]
