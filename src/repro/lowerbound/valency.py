"""Valency, executably: the initial configuration is bivalent (Lemma 15).

Section 5 classifies configurations by the decision values reachable from
them under x-slow, F-compatible runs; Lemma 15 shows that on the
failure-free on-time path from the all-commit initial configuration there
is a configuration from which *both* decisions are reachable.  The
bivalence of the initial configuration itself has a crisp executable
witness: fix the processors, their votes (all commit), and the entire
random-tape collection ``F`` — then exhibit two admissible schedules, one
on-time (the decision must be commit, by commit validity) and one slow
(the GO/vote collection times out and the decision is abort).  Same
protocol, same coins, same initial state; only the message timing
differs, and so does the outcome.

This is the engine of Theorem 17: because timing alone separates the two
decisions, an adversary can hold the protocol at the fork arbitrarily
long, so no bound on expected clock ticks can exist.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.adversary.base import CycleAdversary, DelayCycles
from repro.adversary.standard import SynchronousAdversary
from repro.core.api import ProtocolOutcome
from repro.core.commit import CommitProgram
from repro.sim.scheduler import Simulation
from repro.sim.tape import TapeCollection
from repro.types import Decision, Vote


@dataclass(frozen=True)
class ValencyWitness:
    """Two runs from identical initial configurations and tapes.

    Attributes:
        fast: the on-time run (must decide COMMIT by commit validity).
        slow: the delayed run (decides ABORT via the 2K timeouts).
        tape_seed: the shared seed of the tape collection ``F``.
    """

    fast: ProtocolOutcome
    slow: ProtocolOutcome
    tape_seed: int

    @property
    def is_bivalent(self) -> bool:
        """Whether the witness demonstrates both reachable decisions."""
        return (
            self.fast.unanimous_decision is Decision.COMMIT
            and self.slow.unanimous_decision is Decision.ABORT
        )


def _run_with(
    n: int, t: int, K: int, adversary, tape_seed: int, max_steps: int
) -> ProtocolOutcome:
    programs = [
        CommitProgram(pid=pid, n=n, t=t, initial_vote=Vote.COMMIT, K=K)
        for pid in range(n)
    ]
    simulation = Simulation(
        programs=programs,
        adversary=adversary,
        K=K,
        t=t,
        tapes=TapeCollection(n, master_seed=tape_seed),
        max_steps=max_steps,
    )
    return ProtocolOutcome(result=simulation.run())


def bivalence_witness(
    n: int = 5,
    K: int = 4,
    tape_seed: int = 0,
    slow_factor: int = 4,
    max_steps: int = 200_000,
) -> ValencyWitness:
    """Build the bivalence witness for the all-commit initial configuration.

    Args:
        n: number of processors (``t`` is the optimum).
        K: the on-time bound.
        tape_seed: seed of the shared tape collection ``F`` — both runs
            use the *same* tapes, so the coins are identical.
        slow_factor: the slow run delays every delivery by
            ``slow_factor * K`` cycles (late by construction).
    """
    t = (n - 1) // 2
    fast = _run_with(
        n=n,
        t=t,
        K=K,
        adversary=SynchronousAdversary(seed=tape_seed),
        tape_seed=tape_seed,
        max_steps=max_steps,
    )
    slow = _run_with(
        n=n,
        t=t,
        K=K,
        adversary=CycleAdversary(
            seed=tape_seed,
            delivery=DelayCycles(
                min_cycles=slow_factor * K, max_cycles=slow_factor * K
            ),
        ),
        tape_seed=tape_seed,
        max_steps=max_steps,
    )
    return ValencyWitness(fast=fast, slow=slow, tape_seed=tape_seed)
