"""Executable lower-bound machinery (Sections 4 and 5 of the paper).

* :mod:`repro.lowerbound.schedules` — abstract schedules, the lockstep
  structure (cycles/semicycles), and the proof operators ``σ|S``,
  ``kill(S, σ)``, ``deafen(S, σ)``.
* :mod:`repro.lowerbound.replay` — applying abstract schedules to fresh
  processors, the executable form of "the schedule is applicable to
  configuration D" used by Lemmas 12 and 13.
* :mod:`repro.lowerbound.theorem14` — the kill-half adversary and the
  sharp resilience threshold (blocks at ``n = 2t``, decides at
  ``n = 2t + 1``).
* :mod:`repro.lowerbound.theorem17` — the delay-scaling adversary showing
  unbounded expected clock ticks alongside constant asynchronous rounds.
"""

from repro.lowerbound.replay import (
    ObservableState,
    ScheduleReplayer,
    observable_state,
)
from repro.lowerbound.schedules import (
    AbstractEvent,
    AbstractSchedule,
    EventKind,
    Provenance,
    round_robin_skeleton,
    schedule_from_run,
)
from repro.lowerbound.theorem14 import (
    BoundaryResult,
    demonstrate_boundary,
    kill_half_adversary,
    run_boundary_case,
)
from repro.lowerbound.serialize import (
    export_run,
    load_schedule,
    save_run,
    schedule_from_dict,
    schedule_to_dict,
)
from repro.lowerbound.theorem17 import (
    DelayScalingPoint,
    measure_delay_scaling,
    run_delay_point,
    uniform_delay_adversary,
)

from repro.lowerbound.valency import ValencyWitness, bivalence_witness

__all__ = [
    "AbstractEvent",
    "ValencyWitness",
    "bivalence_witness",
    "export_run",
    "load_schedule",
    "save_run",
    "schedule_from_dict",
    "schedule_to_dict",
    "AbstractSchedule",
    "BoundaryResult",
    "DelayScalingPoint",
    "EventKind",
    "ObservableState",
    "Provenance",
    "ScheduleReplayer",
    "demonstrate_boundary",
    "kill_half_adversary",
    "measure_delay_scaling",
    "observable_state",
    "round_robin_skeleton",
    "run_boundary_case",
    "run_delay_point",
    "schedule_from_run",
    "uniform_delay_adversary",
]
