"""Theorem 17, executably: expected clock ticks to decision are unbounded.

The theorem says that for any constant ``B`` there is an adversary making
the expected decision time exceed ``B`` clock ticks — no protocol in this
model terminates in bounded expected time, which is why the paper defines
asynchronous rounds instead.  The constructed adversary simply *slows the
messages down*: the processors keep ticking while deliveries take ``D``
cycles, so decision ticks grow without bound in ``D``.

The companion fact that justifies the round measure is that the very same
runs decide in a (small) constant number of *asynchronous rounds*: a
round stretches to absorb the delay, because its end is defined relative
to the receipt of the previous round's messages.  Experiment E8 sweeps
``D`` and reports both series side by side.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.adversary.base import CycleAdversary, DelayCycles
from repro.core.api import ProtocolOutcome
from repro.core.commit import CommitProgram
from repro.sim.scheduler import Simulation
from repro.types import Vote


@dataclass(frozen=True)
class DelayScalingPoint:
    """Metrics of one run under a uniform delivery delay of ``D`` cycles.

    Attributes:
        delay_cycles: the delay ``D`` every message experiences.
        terminated: whether the run decided (it always should).
        decision_ticks: max clock at a decide step.
        decision_rounds: asynchronous rounds to the last decision.
        on_time: whether the run was on time (false once ``D > K``).
    """

    delay_cycles: int
    terminated: bool
    decision_ticks: int | None
    decision_rounds: int | None
    on_time: bool


def uniform_delay_adversary(delay_cycles: int, seed: int = 0) -> CycleAdversary:
    """Fair round-robin stepping with every delivery held ``D`` cycles."""
    if delay_cycles < 1:
        raise ValueError(f"delay must be at least one cycle, got {delay_cycles}")
    return CycleAdversary(
        seed=seed,
        delivery=DelayCycles(min_cycles=delay_cycles, max_cycles=delay_cycles),
    )


def run_delay_point(
    n: int,
    delay_cycles: int,
    K: int = 4,
    t: int | None = None,
    seed: int = 0,
    max_steps: int = 400_000,
) -> DelayScalingPoint:
    """Run Protocol 2 (all-commit votes) under a uniform delay of ``D``."""
    if t is None:
        t = (n - 1) // 2
    programs = [
        CommitProgram(pid=pid, n=n, t=t, initial_vote=Vote.COMMIT, K=K)
        for pid in range(n)
    ]
    simulation = Simulation(
        programs=programs,
        adversary=uniform_delay_adversary(delay_cycles, seed=seed),
        K=K,
        t=t,
        seed=seed,
        max_steps=max_steps,
    )
    outcome = ProtocolOutcome(result=simulation.run())
    return DelayScalingPoint(
        delay_cycles=delay_cycles,
        terminated=outcome.terminated,
        decision_ticks=outcome.decision_ticks,
        decision_rounds=outcome.decision_round if outcome.terminated else None,
        on_time=outcome.on_time,
    )


def measure_delay_scaling(
    n: int,
    delays: tuple[int, ...] = (1, 2, 4, 8, 16, 32),
    K: int = 4,
    seed: int = 0,
) -> list[DelayScalingPoint]:
    """Sweep the delay ``D`` and collect tick/round series."""
    return [
        run_delay_point(n=n, delay_cycles=d, K=K, seed=seed) for d in delays
    ]
