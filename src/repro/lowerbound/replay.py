"""Replaying abstract schedules against fresh processors.

The proofs of Lemmas 12 and 13 argue about applying a transformed
schedule to a (possibly different) configuration.  :func:`replay_schedule`
makes that executable: it applies an
:class:`~repro.lowerbound.schedules.AbstractSchedule` to a fresh set of
programs, resolving each provenance-named delivery to the concrete
envelope the *new* run's sender produced in the same position.  An event
whose deliveries cannot be resolved is *not applicable*, exactly the
model's notion, and raises
:class:`~repro.errors.SchedulingError`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import SchedulingError
from repro.lowerbound.schedules import (
    AbstractSchedule,
    EventKind,
    Provenance,
)
from repro.sim.decisions import CrashDecision, StepDecision
from repro.sim.message import MessageId
from repro.sim.process import Program
from repro.sim.scheduler import Simulation
from repro.sim.tape import TapeCollection
from repro.types import ProcessStatus


@dataclass(frozen=True)
class ObservableState:
    """The comparable state of one processor after a (partial) replay.

    Lemma 12's "state(p, C)" is the full local state; observationally we
    compare everything the protocol can act on: clock, lifecycle status,
    decision, program output, and the multiset of received payloads.
    """

    clock: int
    status: ProcessStatus
    decision: int | None
    output: object
    board: tuple[tuple[int, str], ...]


def observable_state(simulation: Simulation, pid: int) -> ObservableState:
    """Snapshot the observable state of ``pid`` in a simulation."""
    process = simulation.processes[pid]
    board = tuple(
        sorted(
            (entry.sender, repr(entry.payload))
            for entry in process.board.entries()
        )
    )
    return ObservableState(
        clock=process.clock,
        status=process.status,
        decision=process.decision,
        output=process.output,
        board=board,
    )


class ScheduleReplayer:
    """Applies an abstract schedule event by event to fresh programs."""

    def __init__(
        self,
        programs: Sequence[Program],
        K: int,
        t: int,
        seed: int = 0,
        tapes: TapeCollection | None = None,
        max_steps: int = 1_000_000,
    ) -> None:
        # The replayer drives the simulation directly; the adversary slot
        # is never consulted, but the Simulation constructor requires one.
        class _Unused:
            def decide(self, view):  # pragma: no cover - never called
                raise SchedulingError("replayer drives events directly")

        self.simulation = Simulation(
            programs=list(programs),
            adversary=_Unused(),
            K=K,
            t=t,
            seed=seed,
            tapes=tapes,
            max_steps=max_steps,
        )

    def _resolve(self, pid: int, provenance: Provenance) -> MessageId:
        """Find the pending envelope matching a provenance descriptor."""
        ordinal = -1
        for envelope in sorted(
            self.simulation._envelopes.values(), key=lambda e: e.send_event
        ):
            if envelope.sender != provenance.sender or envelope.recipient != pid:
                continue
            ordinal += 1
            if ordinal == provenance.ordinal:
                if envelope.delivered:
                    raise SchedulingError(
                        f"event not applicable: envelope "
                        f"{envelope.message_id} already delivered"
                    )
                return envelope.message_id
        raise SchedulingError(
            f"event not applicable: sender {provenance.sender} has not "
            f"addressed envelope #{provenance.ordinal} to {pid} in this run"
        )

    def apply(self, schedule: AbstractSchedule) -> "ScheduleReplayer":
        """Apply every event of ``schedule`` in order.

        Raises:
            SchedulingError: at the first non-applicable event.
        """
        for event in schedule:
            if event.kind is EventKind.FAIL:
                process = self.simulation.processes[event.pid]
                if process.status is not ProcessStatus.CRASHED:
                    self.simulation.apply(CrashDecision(pid=event.pid))
                else:
                    # Repeated failure steps are no-ops in the lockstep
                    # model (a failed processor keeps taking failure
                    # steps); the kernel records the crash only once.
                    pass
                continue
            deliver = tuple(
                self._resolve(event.pid, provenance)
                for provenance in sorted(
                    event.receives, key=lambda p: (p.sender, p.ordinal)
                )
            )
            self.simulation.apply(StepDecision(pid=event.pid, deliver=deliver))
        return self

    def state(self, pid: int) -> ObservableState:
        """Observable state of ``pid`` after the events applied so far."""
        return observable_state(self.simulation, pid)

    def states(self, group: Sequence[int]) -> dict[int, ObservableState]:
        """Observable states for a whole group."""
        return {pid: self.state(pid) for pid in group}
