"""Theorem 14, executably: no transaction commit protocol for ``n <= 2t``.

The theorem quantifies over *all* protocols, which no simulation can do;
what we make executable is (a) the proof's schedule machinery (Lemmas 12
and 13 are property-tested in the test suite via
:mod:`repro.lowerbound.replay`) and (b) the proof's adversary — kill half
the processors — instantiated against our own protocol at the boundary:

* at ``n = 2t + 1`` (one above the bound) killing ``t`` processors leaves
  ``n - t`` alive; the survivors' waits are satisfiable, the "more than
  n/2" majority threshold is reachable among them, and the protocol
  decides;
* at ``n = 2t`` (on the bound) killing ``t`` leaves exactly ``t = n - t``
  alive: every ``n - t`` wait is still (barely) satisfiable, but a group
  of ``t`` can never produce "more than n/2 = t" matching first-phase
  messages, so no S-message is ever sent, no processor ever decides, and
  the run blocks forever.  Our protocol *fails to terminate* rather than
  producing a wrong answer — graceful degradation (Theorem 11) exactly
  where Theorem 14 says success is impossible.

The surviving group cannot tell this run from one where the dead half is
merely slow — the indistinguishability at the heart of the proof.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.adversary.base import CrashAt
from repro.adversary.crash import ScheduledCrashAdversary
from repro.core.api import ProtocolOutcome
from repro.core.commit import CommitProgram
from repro.sim.scheduler import Simulation
from repro.types import Vote


@dataclass(frozen=True)
class BoundaryResult:
    """One run at the resilience boundary.

    Attributes:
        n: processors.
        t: fault budget (= number of processors actually killed).
        terminated: whether every nonfaulty program returned.
        consistent: whether at most one decision value appeared.
        decided_values: the set of decided values.
    """

    n: int
    t: int
    terminated: bool
    consistent: bool
    decided_values: frozenset[int]


def kill_half_adversary(
    n: int, t: int, crash_cycle: int = 1, seed: int = 0
) -> ScheduledCrashAdversary:
    """The Theorem 14 adversary: fail-stop ``t`` processors early.

    Kills processors ``1 .. t`` (sparing the coordinator so the protocol
    is actually started — the admissibility definition requires some
    nonfaulty processor to receive a message).  Everything else is fair
    round-robin with prompt delivery, so the adversary is
    ``t``-admissible.
    """
    if t >= n:
        raise ValueError(f"cannot kill {t} of {n} processors")
    victims = [CrashAt(pid=pid, cycle=crash_cycle) for pid in range(1, t + 1)]
    return ScheduledCrashAdversary(crash_plan=victims, seed=seed)


def run_boundary_case(
    n: int,
    t: int,
    K: int = 4,
    seed: int = 0,
    max_steps: int = 40_000,
) -> BoundaryResult:
    """Run Protocol 2 (all-commit votes) with ``t`` processors killed."""
    programs = [
        CommitProgram(
            pid=pid,
            n=n,
            t=t,
            initial_vote=Vote.COMMIT,
            K=K,
            allow_sub_resilience=True,
        )
        for pid in range(n)
    ]
    simulation = Simulation(
        programs=programs,
        adversary=kill_half_adversary(n, t, seed=seed),
        K=K,
        t=t,
        seed=seed,
        max_steps=max_steps,
    )
    outcome = ProtocolOutcome(result=simulation.run())
    return BoundaryResult(
        n=n,
        t=t,
        terminated=outcome.terminated,
        consistent=outcome.consistent,
        decided_values=frozenset(outcome.decision_values),
    )


def demonstrate_boundary(
    t: int, K: int = 4, seed: int = 0, max_steps: int = 40_000
) -> tuple[BoundaryResult, BoundaryResult]:
    """The sharp threshold: ``n = 2t`` blocks, ``n = 2t + 1`` decides.

    Returns the pair of results (at the bound, above the bound).
    """
    at_bound = run_boundary_case(
        n=2 * t, t=t, K=K, seed=seed, max_steps=max_steps
    )
    above_bound = run_boundary_case(
        n=2 * t + 1, t=t, K=K, seed=seed, max_steps=max_steps
    )
    return at_bound, above_bound
