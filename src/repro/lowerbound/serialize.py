"""Schedule (de)serialization: record a run, replay it anywhere.

Since a run is a pure function of ``(adversary, initial configuration,
tapes)``, persisting the *schedule* (with deliveries named by provenance)
plus the tape seed is enough to reproduce it exactly — across processes,
machines, or library versions that preserve protocol semantics.  The
format is plain JSON, stable and diff-friendly, so interesting runs
(counterexamples, regressions, proof constructions) can be checked into a
repository and replayed in tests.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.errors import AnalysisError
from repro.lowerbound.schedules import (
    AbstractEvent,
    AbstractSchedule,
    EventKind,
    Provenance,
    schedule_from_run,
)
from repro.sim.trace import Run

#: Format version; bump on breaking changes.
FORMAT_VERSION = 1


def schedule_to_dict(
    schedule: AbstractSchedule,
    n: int,
    t: int,
    K: int,
    tape_seed: int = 0,
    note: str = "",
) -> dict[str, Any]:
    """Serialise a schedule plus the context needed to replay it."""
    return {
        "version": FORMAT_VERSION,
        "n": n,
        "t": t,
        "K": K,
        "tape_seed": tape_seed,
        "note": note,
        "events": [
            {
                "pid": event.pid,
                "kind": event.kind.name.lower(),
                "receives": sorted(
                    [p.sender, p.ordinal] for p in event.receives
                ),
            }
            for event in schedule
        ],
    }


def schedule_from_dict(data: dict[str, Any]) -> AbstractSchedule:
    """Deserialise a schedule.

    Raises:
        AnalysisError: on version mismatch or malformed events.
    """
    version = data.get("version")
    if version != FORMAT_VERSION:
        raise AnalysisError(
            f"unsupported schedule format version {version!r} "
            f"(expected {FORMAT_VERSION})"
        )
    events = []
    for index, raw in enumerate(data.get("events", [])):
        try:
            kind = EventKind[raw["kind"].upper()]
            receives = frozenset(
                Provenance(sender=sender, ordinal=ordinal)
                for sender, ordinal in raw.get("receives", [])
            )
            events.append(
                AbstractEvent(pid=raw["pid"], kind=kind, receives=receives)
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise AnalysisError(
                f"malformed schedule event #{index}: {raw!r}"
            ) from exc
    return AbstractSchedule(events=tuple(events))


def export_run(run: Run, tape_seed: int = 0, note: str = "") -> dict[str, Any]:
    """Serialise a recorded run's schedule and replay context."""
    return schedule_to_dict(
        schedule_from_run(run),
        n=run.n,
        t=run.t,
        K=run.K,
        tape_seed=tape_seed,
        note=note,
    )


def save_run(
    run: Run, path: str | Path, tape_seed: int = 0, note: str = ""
) -> Path:
    """Write a run's replayable schedule to a JSON file."""
    target = Path(path)
    target.write_text(
        json.dumps(export_run(run, tape_seed=tape_seed, note=note), indent=2)
        + "\n",
        encoding="utf-8",
    )
    return target


def load_schedule(path: str | Path) -> tuple[AbstractSchedule, dict[str, Any]]:
    """Read a schedule file; returns (schedule, context metadata)."""
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    schedule = schedule_from_dict(data)
    context = {
        key: data[key]
        for key in ("n", "t", "K", "tape_seed", "note")
        if key in data
    }
    return schedule, context
