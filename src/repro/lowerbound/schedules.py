"""Abstract schedules and the lockstep model of Sections 4 and 5.

The lower-bound proofs work in a *stronger* model than the protocol does:
processors step in round-robin cycles (``p1`` through ``pn``), failures
are explicit steps ``(p, ⊥, f)``, atomic broadcast is available, and all
message delays are at least one cycle.  Proof manipulations act on
*schedules* — sequences of events — via the operators ``σ|S`` (restrict),
``kill(S, σ)``, and ``deafen(S, σ)``.

This module gives those objects an executable form.  An
:class:`AbstractEvent` names its deliveries by *provenance* —
``(sender, k)`` meaning "the k-th envelope this run's sender ``q``
addressed to the stepping processor" — rather than by concrete message id.
Provenance survives the proofs' schedule surgery: when a transformed
schedule is replayed against fresh processors, each delivery resolves to
whatever envelope the new run's sender produced in the same position,
exactly the correspondence Lemmas 12 and 13 trade on.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Iterable, Sequence

from repro.sim.trace import Run


class EventKind(enum.Enum):
    """The two event shapes of the lockstep model."""

    STEP = enum.auto()
    FAIL = enum.auto()


@dataclass(frozen=True)
class Provenance:
    """Names one delivered envelope by its origin: sender and ordinal.

    ``ordinal`` counts, within one run, the envelopes ``sender`` addressed
    to the receiving processor (0-based, in send order).
    """

    sender: int
    ordinal: int


@dataclass(frozen=True)
class AbstractEvent:
    """One event ``(p, M, f)`` with deliveries named by provenance.

    A ``FAIL`` event is the explicit failure step ``(p, ⊥, f)``; its
    ``receives`` are empty.
    """

    pid: int
    kind: EventKind = EventKind.STEP
    receives: frozenset[Provenance] = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        if self.kind is EventKind.FAIL and self.receives:
            raise ValueError("a failure step delivers no messages")


@dataclass(frozen=True)
class AbstractSchedule:
    """A finite sequence of abstract events."""

    events: tuple[AbstractEvent, ...]

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def __add__(self, other: "AbstractSchedule") -> "AbstractSchedule":
        return AbstractSchedule(events=self.events + other.events)

    def pids(self) -> set[int]:
        """Processors appearing in the schedule."""
        return {e.pid for e in self.events}

    # -- the paper's schedule operators ------------------------------------

    def restrict(self, group: Iterable[int]) -> "AbstractSchedule":
        """``σ|S``: the subsequence of events involving processors in S."""
        members = set(group)
        return AbstractSchedule(
            events=tuple(e for e in self.events if e.pid in members)
        )

    def kill(self, group: Iterable[int]) -> "AbstractSchedule":
        """``kill(S, σ)``: replace S-events with explicit failure steps."""
        members = set(group)
        return AbstractSchedule(
            events=tuple(
                replace(e, kind=EventKind.FAIL, receives=frozenset())
                if e.pid in members
                else e
                for e in self.events
            )
        )

    def deafen(self, group: Iterable[int]) -> "AbstractSchedule":
        """``deafen(S, σ)``: S-processors keep stepping but receive ∅."""
        members = set(group)
        return AbstractSchedule(
            events=tuple(
                replace(e, receives=frozenset()) if e.pid in members else e
                for e in self.events
            )
        )

    # -- lockstep structure --------------------------------------------------

    def is_round_robin(self, n: int) -> bool:
        """Whether events cycle ``p1 .. pn`` (the lockstep turn rule)."""
        return all(
            event.pid == index % n for index, event in enumerate(self.events)
        )

    def cycles(self, n: int) -> list["AbstractSchedule"]:
        """Split a round-robin schedule into cycles of ``n`` events."""
        if not self.is_round_robin(n):
            raise ValueError("schedule is not round-robin; cannot cycle-split")
        return [
            AbstractSchedule(events=self.events[i : i + n])
            for i in range(0, len(self.events), n)
        ]

    def semicycles(self, first_group: Sequence[int]) -> list["AbstractSchedule"]:
        """Split into maximal runs of events inside/outside ``first_group``.

        With ``first_group = A = {p1..pt}`` and a round-robin schedule this
        yields the alternating A-semicycles and B-semicycles of the
        Theorem 14 proof.
        """
        members = set(first_group)
        chunks: list[list[AbstractEvent]] = []
        current_side: bool | None = None
        for event in self.events:
            side = event.pid in members
            if side != current_side:
                chunks.append([])
                current_side = side
            chunks[-1].append(event)
        return [AbstractSchedule(events=tuple(chunk)) for chunk in chunks]


def round_robin_skeleton(n: int, cycles: int) -> AbstractSchedule:
    """A round-robin schedule of empty-delivery steps (no receipts)."""
    events = [
        AbstractEvent(pid=pid)
        for _ in range(cycles)
        for pid in range(n)
    ]
    return AbstractSchedule(events=tuple(events))


def schedule_from_run(run: Run) -> AbstractSchedule:
    """Recover the abstract schedule of a concrete recorded run.

    Deliveries are re-expressed as provenance: the k-th envelope the
    sender addressed to this recipient.
    """
    # envelope id -> ordinal among (sender -> recipient) envelopes
    ordinals: dict[int, int] = {}
    counters: dict[tuple[int, int], int] = {}
    for envelope in sorted(run.envelopes.values(), key=lambda e: e.send_event):
        key = (envelope.sender, envelope.recipient)
        ordinals[envelope.message_id] = counters.get(key, 0)
        counters[key] = counters.get(key, 0) + 1
    events = []
    for event in run.events:
        if event.kind == "crash":
            events.append(
                AbstractEvent(pid=event.actor, kind=EventKind.FAIL)
            )
            continue
        receives = frozenset(
            Provenance(
                sender=run.envelopes[mid].sender, ordinal=ordinals[mid]
            )
            for mid in event.delivered
        )
        events.append(AbstractEvent(pid=event.actor, receives=receives))
    return AbstractSchedule(events=tuple(events))
