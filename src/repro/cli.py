"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``run-commit`` — run Protocol 2 once under a chosen adversary and
  print the outcome (optionally a full timeline / lane view / round
  chart), with ``--save`` to persist a replayable schedule,
  ``--trace-out`` to archive the full run as JSONL, and ``--json`` for a
  schema-versioned machine-readable document;
* ``replay`` — re-execute a saved schedule and print the outcome;
* ``experiments`` — list the registered experiments;
* ``experiment`` — run one experiment and print its table (``--json``
  for machine-readable output);
* ``stats`` — print a telemetry registry snapshot (JSON or
  Prometheus-style text) for one or more archived JSONL traces;
* ``faults campaign`` — sweep seeded randomized FaultPlans across the
  simulator and asyncio tracks, check the paper's invariants on every
  trial, and write a machine-readable campaign report; exits 1 on any
  safety violation, 2 (with ``--fail-on-liveness``) on liveness-only
  violations, and cuts per-violation replay artifacts with
  ``--artifact-dir``;
* ``faults replay`` — re-execute a replay artifact
  (``repro.counterexample`` v1) and verify the recorded per-track
  results reproduce byte-identically;
* ``faults shrink`` — minimize a violating trial (from an artifact or
  by scanning a campaign) to a locally-minimal FaultPlan that still
  violates safety;
* ``faults diff`` — run the cross-track differential oracle and report
  semantic divergence between the simulator and the runtime; with
  ``--cores``, compare the reference and fast *execution cores* on
  byte-identical serialized runs instead;
* ``mc explore`` — bounded exhaustive model checking of one protocol
  variant with sleep-set partial-order reduction; exits 1 on any safety
  violation and cuts per-class counterexample artifacts with
  ``--artifact-dir``;
* ``mc certify`` — run a canned certification preset (exhaustive
  safety sweep plus planted-bug detection with replay cross-check) and
  exit 1 unless every phase passes;
* ``trace export`` — convert a span trace recorded with
  ``--trace-spans`` to Chrome trace-event JSON (loadable in Perfetto /
  ``chrome://tracing``) or re-validated span-trace JSONL;
* ``trace summarize`` — print record counts, span kinds, and event
  totals of a span trace;
* ``trace critical-path`` — extract the longest causal message chain
  ending at each decision and attribute the decision round to it.

``run-commit``, ``faults campaign``, and ``mc explore`` accept
``--trace-spans PATH`` (record a causal span trace of the run),
``--serve-metrics PORT`` (serve live ``/metrics`` + ``/healthz`` on a
background thread for the duration of the command), and ``--sim-core
{reference,fast}`` (select the simulation execution core; see
``docs/PERFORMANCE.md``).

The global ``--log-level`` flag configures the ``repro`` logging channel
(see :mod:`repro.telemetry.log`); it must precede the subcommand.
``--version`` prints the package version.

Every command reports through one exit-code scheme, shown in
:data:`EXIT_CODES` (also printed by ``repro --help`` and documented in
``docs/FAULTS.md``).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from repro import __version__
from repro.adversary.base import Adversary, CrashAt
from repro.adversary.crash import ScheduledCrashAdversary
from repro.adversary.random_walk import RandomAdversary
from repro.adversary.standard import (
    LateMessageAdversary,
    OnTimeAdversary,
    SynchronousAdversary,
)
from repro.core.api import ProtocolOutcome, run_commit
from repro.core.commit import CommitProgram
from repro.sim.coreselect import CORE_NAMES
from repro.inspect import (
    render_lanes,
    render_round_chart,
    render_timeline,
    summarize_run,
)
from repro.types import Decision

#: Adversaries constructible from the command line, by name.
ADVERSARY_CHOICES = ("synchronous", "ontime", "late", "random", "crash")

#: The one exit-code scheme every subcommand reports through.  Shown in
#: ``repro --help`` and mirrored in ``docs/FAULTS.md``.
EXIT_CODES = """\
exit codes (all commands):
  0  success — clean run, verified replay, zero findings, certified
  1  findings — safety violation (faults campaign, mc explore),
     replay mismatch (faults replay), semantic divergence (faults
     diff), minimal plan over --max-entries (faults shrink),
     inconsistent decisions (run-commit), failed phase (mc certify)
  2  usage or input error — bad arguments, unknown experiment or
     preset, unreadable trace/schedule/artifact, liveness-only
     failure under faults campaign --fail-on-liveness
  3  nothing to shrink — faults shrink scanned its plans without
     finding any safety violation
  4  no spans recorded — trace export/summarize/critical-path read a
     valid span-trace file that contains no spans or events (the
     traced command recorded nothing)

repro models commands map onto the same codes:
  0  success — registry listed (models list), atlas swept with the
     reference protocol (protocol2) safe in every model (models atlas)
  1  findings — models atlas observed a safety violation for the
     reference protocol under some timing model
  2  usage or input error — unknown timing model, a model selected on
     a track it has no analogue for, --model with a non-cycle
     adversary (run-commit --adversary random), mc --model without
     --no-por

repro service commands map onto the same codes:
  0  success — node served and halted cleanly (start), request
     acknowledged (submit/kill), status gathered (status)
  1  findings — service status --check found an unreachable node, an
     undecided node, or inconsistent decisions
  2  usage or input error — node index out of range, unreachable
     coordinator (submit), unreadable pidfile or dead process (kill)
"""


def build_adversary(
    name: str, K: int, seed: int, crashes: Sequence[int]
) -> Adversary:
    """Construct a CLI-selected adversary."""
    if name == "synchronous":
        return SynchronousAdversary(seed=seed)
    if name == "ontime":
        return OnTimeAdversary(K=K, seed=seed)
    if name == "late":
        return LateMessageAdversary(K=K, seed=seed, late_probability=0.3)
    if name == "random":
        return RandomAdversary(seed=seed)
    if name == "crash":
        plan = [
            CrashAt(pid=pid, cycle=2 + index)
            for index, pid in enumerate(crashes)
        ]
        return ScheduledCrashAdversary(crash_plan=plan, seed=seed)
    raise ValueError(f"unknown adversary {name!r}")


def _parse_votes(text: str) -> list[int]:
    try:
        votes = [int(v) for v in text.split(",")]
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"votes must be comma-separated bits, got {text!r}"
        ) from None
    if not votes or any(v not in (0, 1) for v in votes):
        raise argparse.ArgumentTypeError(
            f"votes must be comma-separated bits, got {text!r}"
        )
    return votes


def _parse_pids(text: str) -> list[int]:
    if not text:
        return []
    return [int(v) for v in text.split(",")]


# -- observability plumbing (--trace-spans / --serve-metrics) ----------------


def _start_metrics_server(args):
    """Start the background /metrics endpoint when requested."""
    port = getattr(args, "serve_metrics", None)
    if port is None:
        return None
    from repro.telemetry.registry import enable_telemetry
    from repro.telemetry.server import MetricsServer

    enable_telemetry()
    server = MetricsServer(port=port).start()
    print(
        f"serving metrics on {server.url}/metrics "
        f"(health: {server.url}/healthz)",
        file=sys.stderr,
    )
    return server


def _start_tracing(args):
    """Install a span recorder when --trace-spans was requested."""
    if not getattr(args, "trace_spans", None):
        return None
    from repro.trace.spans import enable_tracing

    return enable_tracing()


def _finish_tracing(recorder, args) -> None:
    """Uninstall the recorder and write the span-trace file."""
    if recorder is None:
        return
    from repro.trace.export import write_span_trace
    from repro.trace.spans import disable_tracing

    disable_tracing()
    path = write_span_trace(recorder, args.trace_spans)
    if not getattr(args, "json", False):
        counts = recorder.counts()
        print(
            f"span trace written to {path} "
            f"({counts['spans']} spans, {counts['events']} events, "
            f"{counts['edges']} edges)"
        )


def _with_observability(args, body) -> int:
    """Run a command body under the requested tracing/metrics plumbing.

    The span trace is written (and the metrics server stopped) even when
    the body raises, so partial traces of failed runs survive.
    """
    server = _start_metrics_server(args)
    recorder = _start_tracing(args)
    try:
        return body()
    finally:
        _finish_tracing(recorder, args)
        if server is not None:
            server.stop()


def _add_observability_args(parser) -> None:
    parser.add_argument(
        "--trace-spans",
        default=None,
        metavar="PATH",
        help=(
            "record a causal span trace (repro.span-trace JSONL) of "
            "this run; analyze with the trace subcommands"
        ),
    )
    parser.add_argument(
        "--serve-metrics",
        type=int,
        default=None,
        metavar="PORT",
        help=(
            "serve live /metrics (Prometheus text) and /healthz on "
            "this port for the duration of the command (0 picks a "
            "free port; implies telemetry)"
        ),
    )


def _print_outcome(outcome: ProtocolOutcome, args) -> None:
    run = outcome.run
    print(summarize_run(run))
    decision = outcome.unanimous_decision
    print(f"decision: {decision.name if decision is not None else 'none'}")
    if outcome.terminated:
        print(f"asynchronous rounds: {outcome.decision_round}")
        print(f"decision clock ticks: {outcome.decision_ticks}")
    if args.timeline:
        print()
        print(render_timeline(run, limit=args.limit))
    if args.lanes:
        print()
        print(render_lanes(run, limit=args.limit))
    if args.rounds:
        print()
        print(render_round_chart(run))


def _install_sim_core(core: str | None) -> None:
    """Install ``--sim-core`` process-wide, and export it to workers.

    Engine worker processes re-resolve the core from the environment
    they inherit, so the override must land in both places.
    """
    if core is None:
        return
    import os

    from repro.sim.coreselect import set_default_sim_core

    set_default_sim_core(core)
    os.environ["REPRO_SIM_CORE"] = core


def _add_sim_core_arg(parser) -> None:
    parser.add_argument(
        "--sim-core",
        choices=CORE_NAMES,
        default=None,
        dest="sim_core",
        help=(
            "simulation execution core: reference (default) or fast "
            "(byte-identical results, slimmed hot path; exported as "
            "REPRO_SIM_CORE so engine workers inherit it)"
        ),
    )


def _install_timing_model(name: str | None) -> None:
    """Install ``--model`` process-wide, and export it to workers.

    Mirrors :func:`_install_sim_core`: engine worker processes
    re-resolve the ambient model from the environment they inherit.
    """
    if name is None:
        return
    import os

    from repro.models import set_default_timing_model

    set_default_timing_model(name)
    os.environ["REPRO_TIMING_MODEL"] = name


def _add_model_arg(parser) -> None:
    parser.add_argument(
        "--model",
        default=None,
        metavar="NAME",
        help=(
            "timing model from the zoo (see: repro models list); "
            "default realistic, the paper's model"
        ),
    )


def cmd_run_commit(args) -> int:
    return _with_observability(args, lambda: _cmd_run_commit(args))


def _cmd_run_commit(args) -> int:
    from repro.engine.executor import set_default_workers

    _install_sim_core(args.sim_core)

    registry = None
    if args.json:
        from repro.telemetry.registry import enable_telemetry

        registry = enable_telemetry()
        registry.reset()
    # A single run-commit invocation is one trial and executes in-process
    # regardless; the flag installs the default for any engine-routed
    # batch this invocation triggers (e.g. via future batch options).
    set_default_workers(args.workers)
    _install_timing_model(args.model)
    adversary = build_adversary(
        args.adversary, K=args.K, seed=args.seed, crashes=args.crashes
    )
    if args.model is not None:
        from repro.models import apply_active_model

        adversary = apply_active_model(adversary, K=args.K, seed=args.seed)
    outcome = run_commit(
        args.votes,
        K=args.K,
        adversary=adversary,
        seed=args.seed,
        max_steps=args.max_steps,
    )
    if args.json:
        from repro.telemetry.summary import run_commit_document

        document = run_commit_document(
            outcome.run,
            params={
                "votes": list(args.votes),
                "K": args.K,
                "adversary": args.adversary,
                "crashes": list(args.crashes),
                "seed": args.seed,
                "max_steps": args.max_steps,
            },
            programs=outcome.programs,
            registry=registry,
        )
        print(json.dumps(document, sort_keys=True))
    else:
        _print_outcome(outcome, args)
    if args.trace_out:
        from repro.telemetry.runio import export_run_jsonl

        trace_path = export_run_jsonl(outcome.run, args.trace_out)
        if not args.json:
            print(f"trace written to {trace_path}")
    if args.save:
        from repro.lowerbound.serialize import save_run

        path = save_run(
            outcome.run,
            args.save,
            tape_seed=args.seed,
            note=f"run-commit votes={args.votes} adversary={args.adversary}",
        )
        if not args.json:
            print(f"schedule saved to {path}")
    return 0 if outcome.consistent else 1


def cmd_replay(args) -> int:
    from repro.lowerbound.replay import ScheduleReplayer
    from repro.lowerbound.serialize import load_schedule

    schedule, context = load_schedule(args.path)
    n = context["n"]
    t = context["t"]
    votes = args.votes if args.votes is not None else [1] * n
    if len(votes) != n:
        print(
            f"error: schedule was recorded with n={n}, got {len(votes)} votes",
            file=sys.stderr,
        )
        return 2
    programs = [
        CommitProgram(
            pid=pid,
            n=n,
            t=t,
            initial_vote=vote,
            K=context["K"],
            allow_sub_resilience=True,
        )
        for pid, vote in enumerate(votes)
    ]
    replayer = ScheduleReplayer(
        programs,
        K=context["K"],
        t=t,
        seed=context.get("tape_seed", 0),
    )
    replayer.apply(schedule)
    run = replayer.simulation.build_run()
    print(summarize_run(run))
    for pid in range(n):
        decision = run.decisions[pid]
        label = Decision(decision).name if decision is not None else "undecided"
        print(f"  p{pid}: {label}")
    return 0


def cmd_experiments(args) -> int:
    from repro.experiments.registry import EXPERIMENTS

    for experiment_id, info in EXPERIMENTS.items():
        print(f"{experiment_id:>4}  {info.title}")
        print(f"      claim: {info.claim}")
        print(f"      expect: {info.expectation}")
    return 0


def cmd_experiment(args) -> int:
    import time

    from repro.experiments.registry import EXPERIMENTS, run_experiment

    if args.id not in EXPERIMENTS:
        print(
            f"error: unknown experiment {args.id!r}; "
            f"try: {', '.join(EXPERIMENTS)}",
            file=sys.stderr,
        )
        return 2
    registry = None
    if args.json:
        from repro.telemetry.registry import enable_telemetry

        registry = enable_telemetry()
        registry.reset()
    workers = args.workers
    if workers is None:
        from repro.engine.executor import default_workers

        workers = default_workers()
    _install_timing_model(args.model)
    start = time.perf_counter()
    table = run_experiment(
        args.id, trials=args.trials, quick=args.quick, workers=workers
    )
    elapsed = time.perf_counter() - start
    if args.json:
        from repro.telemetry.summary import experiment_document

        document = experiment_document(
            args.id, table, seconds=elapsed, registry=registry
        )
        print(json.dumps(document, sort_keys=True))
    else:
        print(table.render())
    return 0


def cmd_models_list(args) -> int:
    from repro.models import model_names, resolve_model

    if args.json:
        print(
            json.dumps(
                [resolve_model(name).describe() for name in model_names()],
                sort_keys=True,
            )
        )
        return 0
    for name in model_names():
        model = resolve_model(name)
        default = " (default)" if name == "realistic" else ""
        fast = (
            "fast-core sweep"
            if model.fastcore_whitelisted
            else "fast-core fallback (counted)"
        )
        print(f"{name}{default} — {model.summary}")
        print(f"    source: {model.source}")
        print(
            f"    tracks: {', '.join(model.tracks)}; "
            f"mc: {'yes' if model.mc_supported else 'no'}; {fast}"
        )
        if not model.preserves_eventual_delivery:
            print(
                "    drops messages permanently: termination is "
                "degradation data, not a liveness obligation"
            )
        for knob in model.knobs:
            print(f"    knob {knob.name} = {knob.default}: {knob.help}")
    return 0


def cmd_models_atlas(args) -> int:
    return _with_observability(args, lambda: _cmd_models_atlas(args))


def _cmd_models_atlas(args) -> int:
    from repro.models.atlas import (
        AtlasConfig,
        reference_protocol_safe,
        render_atlas,
        run_atlas,
        write_atlas_report,
    )

    _install_sim_core(args.sim_core)
    config = AtlasConfig(
        protocols=tuple(args.protocols.split(",")),
        models=tuple(args.models.split(",")) if args.models else (),
        n=args.n,
        t=args.t,
        K=args.K,
        trials=args.trials,
        base_seed=args.seed,
        max_steps=args.max_steps,
        over_budget_fraction=args.over_budget_fraction,
        all_commit_fraction=args.all_commit_fraction,
    )
    report = run_atlas(config, workers=args.workers)
    if args.json:
        print(json.dumps(report, sort_keys=True))
    else:
        print(render_atlas(report))
    if args.out:
        path = write_atlas_report(report, args.out)
        if not args.json:
            print(f"atlas report written to {path}")
    return 0 if reference_protocol_safe(report) else 1


def cmd_stats(args) -> int:
    from repro.telemetry.registry import MetricsRegistry, get_registry
    from repro.telemetry.runio import import_run_jsonl
    from repro.telemetry.summary import record_run

    if args.traces:
        registry = MetricsRegistry(enabled=True)
        for path in args.traces:
            try:
                run = import_run_jsonl(path)
            except Exception as exc:  # noqa: BLE001 - CLI boundary
                print(f"error: cannot read trace {path}: {exc}", file=sys.stderr)
                return 2
            record_run(run, registry)
    else:
        # No traces: expose whatever the in-process default registry
        # holds (usually empty unless the host process enabled telemetry).
        registry = get_registry()
    if args.format == "prom":
        sys.stdout.write(registry.render_prometheus())
    else:
        print(json.dumps(registry.snapshot(), indent=2, sort_keys=True))
    return 0


def cmd_faults_campaign(args) -> int:
    return _with_observability(args, lambda: _cmd_faults_campaign(args))


def _cmd_faults_campaign(args) -> int:
    from repro.faults.campaign import (
        CampaignConfig,
        render_campaign_summary,
        run_campaign,
        write_campaign_report,
    )

    _install_sim_core(args.sim_core)
    registry = None
    if args.stats:
        from repro.telemetry.registry import enable_telemetry

        registry = enable_telemetry()
        registry.reset()
    config = CampaignConfig(
        n=args.n,
        t=args.t,
        plans=args.plans,
        base_seed=args.seed,
        tracks=tuple(args.tracks.split(",")),
        K=args.K,
        max_steps=args.max_steps,
        deadline=args.deadline,
        over_budget_fraction=args.over_budget_fraction,
        all_commit_fraction=args.all_commit_fraction,
        recovery_probability=args.recovery_probability,
        program=args.variant,
        txns=args.txns,
        shards=args.shards,
        commit_bias=args.commit_bias,
        model=args.model if args.model is not None else "realistic",
    )
    report = run_campaign(config, workers=args.workers)
    if registry is not None:
        report["telemetry"] = registry.snapshot()
    if args.json:
        print(json.dumps(report, sort_keys=True))
    else:
        print(render_campaign_summary(report))
    if args.out:
        path = write_campaign_report(report, args.out)
        if not args.json:
            print(f"report written to {path}")
    if args.artifact_dir:
        from repro.counterexample import artifacts_from_report

        written = artifacts_from_report(report, args.artifact_dir)
        if not args.json:
            print(
                f"{len(written)} replay artifact(s) written to "
                f"{args.artifact_dir}"
            )
    if report["summary"]["safety_violations"] > 0:
        return 1
    if args.fail_on_liveness and report["summary"]["liveness_violations"] > 0:
        return 2
    return 0


def cmd_faults_replay(args) -> int:
    from repro.counterexample import verify_replay

    report = verify_replay(args.artifact)
    if args.json:
        print(json.dumps(report, sort_keys=True))
    else:
        state = "byte-identical" if report["match"] else "DIVERGED"
        print(f"replay of {args.artifact}: {state}")
        print(f"  violated safety properties: {report['properties']}")
        for track, data in report["tracks"].items():
            if data["match"]:
                print(f"  {track}: match")
            else:
                print(
                    f"  {track}: MISMATCH "
                    f"(keys: {data.get('diverging_keys', '?')})"
                )
    return 0 if report["match"] else 1


def cmd_faults_shrink(args) -> int:
    from repro.counterexample import (
        first_violating_case,
        read_artifact,
        render_shrink_summary,
        shrink_case,
        write_artifact,
    )
    from repro.faults.campaign import CampaignConfig, execute_trial_case

    if args.artifact:
        case, _expected = read_artifact(args.artifact)
    else:
        config = CampaignConfig(
            n=args.n,
            t=args.t,
            plans=args.plans,
            base_seed=args.seed,
            K=args.K,
            all_commit_fraction=args.all_commit_fraction,
            program=args.variant,
        )
        found = first_violating_case(config, workers=args.workers)
        if found is None:
            print(
                f"no safety violation in {config.plans} plans; "
                f"nothing to shrink",
                file=sys.stderr,
            )
            return 3
        case, _result = found
    result = shrink_case(case, workers=args.workers)
    if args.json:
        print(json.dumps(result.to_dict(), sort_keys=True))
    else:
        print(render_shrink_summary(result))
    if args.out:
        minimal_result = execute_trial_case(result.minimal)
        path = write_artifact(result.minimal, minimal_result, args.out)
        if not args.json:
            print(f"minimal replay artifact written to {path}")
    if args.max_entries is not None:
        entries = result.minimal.plan.entry_count
        if entries > args.max_entries:
            print(
                f"minimal plan has {entries} entries "
                f"(> --max-entries {args.max_entries})",
                file=sys.stderr,
            )
            return 1
    return 0


def cmd_faults_diff(args) -> int:
    from repro.counterexample import (
        render_core_differential_summary,
        render_differential_summary,
        run_core_differential,
        run_differential,
    )
    from repro.faults.campaign import CampaignConfig

    config = CampaignConfig(
        n=args.n,
        t=args.t,
        plans=args.plans,
        base_seed=args.seed,
        K=args.K,
        max_steps=args.max_steps,
        deadline=args.deadline,
        over_budget_fraction=args.over_budget_fraction,
        all_commit_fraction=args.all_commit_fraction,
        program=args.variant,
    )
    if args.cores:
        report = run_core_differential(config, workers=args.workers)
        summary = render_core_differential_summary(report)
    else:
        report = run_differential(config, workers=args.workers)
        summary = render_differential_summary(report)
    if args.json:
        print(json.dumps(report, sort_keys=True))
    else:
        print(summary)
    if args.out:
        from pathlib import Path

        target = Path(args.out)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(json.dumps(report, sort_keys=True) + "\n")
        if not args.json:
            print(f"differential report written to {target}")
    return 0 if report["summary"]["findings"] == 0 else 1


def cmd_mc_explore(args) -> int:
    return _with_observability(args, lambda: _cmd_mc_explore(args))


def _cmd_mc_explore(args) -> int:
    from repro.errors import ConfigurationError
    from repro.mc import (
        MCConfig,
        explore,
        render_explore_summary,
        write_violation_artifacts,
    )

    _install_sim_core(args.sim_core)
    registry = None
    if args.stats:
        from repro.telemetry.registry import enable_telemetry

        registry = enable_telemetry()
        registry.reset()
    t = args.t if args.t is not None else (args.n - 1) // 2
    try:
        config = MCConfig(
            n=args.n,
            t=t,
            K=args.K,
            program=args.variant,
            votes=tuple(args.votes) if args.votes is not None else None,
            seed=args.seed,
            max_cycles=args.max_cycles,
            crash_budget=args.crash_budget,
            delay_budget=args.delay_budget,
            max_late=args.max_late,
            max_skew=args.max_skew,
            order=args.order,
            por=not args.no_por,
            split_depth=args.split_depth,
            max_states=args.max_states,
            stop_on_first=args.first,
            model=args.model if args.model is not None else "realistic",
        )
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    report = explore(config, workers=args.workers)
    document = report.to_dict()
    if registry is not None:
        document["telemetry"] = registry.snapshot()
    written = []
    if args.artifact_dir and report.violations:
        written = write_violation_artifacts(
            config, report.violations, args.artifact_dir
        )
        document["artifacts"] = [str(path) for path in written]
    if args.json:
        print(json.dumps(document, sort_keys=True))
    else:
        print(render_explore_summary(report))
        if written:
            print(
                f"{len(written)} counterexample artifact(s) written to "
                f"{args.artifact_dir}"
            )
    if args.out:
        from pathlib import Path

        target = Path(args.out)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(json.dumps(document, sort_keys=True) + "\n")
        if not args.json:
            print(f"exploration report written to {target}")
    return 1 if report.violations else 0


def cmd_mc_certify(args) -> int:
    from repro.errors import ConfigurationError
    from repro.mc import render_certify_summary, run_certify

    try:
        report = run_certify(args.preset, workers=args.workers)
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(report, sort_keys=True))
    else:
        print(render_certify_summary(report))
    if args.out:
        from pathlib import Path

        target = Path(args.out)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(json.dumps(report, sort_keys=True) + "\n")
        if not args.json:
            print(f"certify report written to {target}")
    return 0 if report["passed"] else 1


def _load_span_trace(path: str):
    """Read a span trace for the trace subcommands.

    Returns ``(trace, records, exit_code)``; ``trace`` is ``None`` when
    the file is unreadable/invalid (exit 2) or empty (exit 4).
    """
    from repro.errors import AnalysisError
    from repro.telemetry.runio import read_jsonl_records
    from repro.trace.export import trace_from_records

    try:
        records = read_jsonl_records(path)
        trace = trace_from_records(records)
    except AnalysisError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return None, None, 2
    if trace.empty:
        print(
            f"no spans recorded in {path}: the traced command produced "
            f"no spans or events",
            file=sys.stderr,
        )
        return None, None, 4
    return trace, records, 0


def cmd_trace_export(args) -> int:
    trace, records, code = _load_span_trace(args.trace)
    if trace is None:
        return code
    if args.format == "chrome":
        from repro.trace.export import write_chrome_trace

        path = write_chrome_trace(trace, args.out)
    else:
        from repro.telemetry.runio import write_jsonl_records

        path = write_jsonl_records(records, args.out)
    print(f"{args.format} trace written to {path}")
    return 0


def cmd_trace_summarize(args) -> int:
    trace, _records, code = _load_span_trace(args.trace)
    if trace is None:
        return code
    from repro.trace.export import summarize_trace

    summary = summarize_trace(trace)
    if args.json:
        print(json.dumps(summary, sort_keys=True))
        return 0
    print(
        f"span trace {args.trace}: {summary['spans']} spans, "
        f"{summary['events']} events, {summary['edges']} causal edges"
    )
    print(f"  tracks: {', '.join(summary['tracks'])}")
    for kind, count in summary["spans_by_kind"].items():
        print(f"  spans {kind}: {count}")
    for name, count in summary["events_by_name"].items():
        print(f"  events {name}: {count}")
    if summary["max_decision_round"] is not None:
        print(
            f"  trials: {summary['trials']} "
            f"(max decision round {summary['max_decision_round']})"
        )
    else:
        print(f"  trials: {summary['trials']}")
    return 0


def cmd_trace_critical_path(args) -> int:
    trace, records, code = _load_span_trace(args.trace)
    if trace is None:
        return code
    from repro.trace.critical_path import critical_paths_from_records

    paths = critical_paths_from_records(records)
    if args.json:
        print(
            json.dumps([path.to_dict() for path in paths], sort_keys=True)
        )
        return 0
    if not paths:
        print(
            "no decide events in the trace; nothing to attribute "
            "(was the traced run undecided?)"
        )
        return 0
    for path in paths:
        trial = f"trial {path.trial} " if path.trial is not None else ""
        gap = (
            f", timer gap {path.timer_gap}"
            if path.timer_gap is not None
            else ""
        )
        decision_round = (
            path.decision_round
            if path.decision_round is not None
            else "?"
        )
        print(
            f"{trial}[{path.track}] p{path.pid} decided "
            f"{path.decision!r}: chain of {path.length} hops, "
            f"round span {path.round_span}, "
            f"decision round {decision_round}{gap}"
        )
        if args.hops:
            for hop in path.hops:
                label = (
                    f"r{hop.round}" if hop.round is not None else "r?"
                )
                print(
                    f"    {label} m{hop.message} "
                    f"p{hop.sender} -> p{hop.recipient} "
                    f"(sent {hop.send_time}, delivered "
                    f"{hop.receive_time})"
                )
    round_spans = [p.round_span for p in paths]
    decision_rounds = [
        p.decision_round for p in paths if p.decision_round is not None
    ]
    if decision_rounds:
        print(
            f"run: max chain round span {max(round_spans)}, "
            f"max decision round {max(decision_rounds)}"
        )
    return 0


def cmd_service_start(args) -> int:
    return _with_observability(args, lambda: _cmd_service_start(args))


def _cmd_service_start(args) -> int:
    import asyncio
    import os
    import signal
    from pathlib import Path

    from repro.engine.seeds import SERVICE_NODE_STREAM, derive_keyed
    from repro.service.recovery import NodeConfig
    from repro.service.server import ServiceServer, peer_address
    from repro.service.wal import FileWalStore

    votes = [int(v) for v in args.votes.split(",")]
    n = len(votes)
    if not 0 <= args.node < n:
        print(
            f"error: --node {args.node} out of range for {n} votes",
            file=sys.stderr,
        )
        return 2
    t = args.t if args.t is not None else (n - 1) // 2
    config = NodeConfig(
        pid=args.node,
        n=n,
        t=t,
        K=args.K,
        vote=votes[args.node],
        tape_seed=derive_keyed(args.seed, SERVICE_NODE_STREAM, args.node),
        variant=args.variant,
        multi_txn=args.multi_txn,
        commit_bias=args.commit_bias,
    )
    node_dir = Path(args.data_dir) / f"node{args.node}"
    store = FileWalStore(node_dir)
    peers = [
        peer_address(args.base_port, pid, args.host) for pid in range(n)
    ]
    server = ServiceServer(
        config,
        store,
        peers,
        tick_interval=args.tick_interval,
        fsync=not args.no_fsync,
        hold_for_submit=(args.node == 0 and not args.no_hold),
        snapshot_every=args.snapshot_every,
        seed=args.seed,
    )
    (node_dir / "pid").write_text(f"{os.getpid()}\n")

    async def serve() -> None:
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(signum, server.halt)
        await server.serve()

    asyncio.run(serve())
    return 0


def cmd_service_submit(args) -> int:
    from repro.errors import ServiceError
    from repro.service.client import submit

    try:
        status = submit(
            args.host, args.port, timeout=args.timeout, txn=args.txn
        )
    except (ServiceError, OSError, TimeoutError) as exc:
        print(
            f"error: submit to {args.host}:{args.port} failed: {exc}",
            file=sys.stderr,
        )
        return 2
    print(json.dumps(status, sort_keys=True))
    return 0


def cmd_service_status(args) -> int:
    from repro.errors import ServiceError
    from repro.service.client import status as node_status

    nodes: list[dict] = []
    for pid in range(args.n):
        port = args.base_port + pid
        try:
            doc = node_status(args.host, port, timeout=args.timeout)
        except (ServiceError, OSError, TimeoutError) as exc:
            doc = {"pid": pid, "unreachable": str(exc)}
        nodes.append(doc)
    print(json.dumps({"nodes": nodes}, sort_keys=True))
    if args.check:
        decisions = {
            doc.get("decision")
            for doc in nodes
            if "unreachable" not in doc
        }
        reachable = sum(1 for doc in nodes if "unreachable" not in doc)
        if (
            reachable < args.n
            or None in decisions
            or len(decisions) != 1
        ):
            return 1
    return 0


def cmd_service_kill(args) -> int:
    import os
    import signal
    from pathlib import Path

    pid_path = Path(args.data_dir) / f"node{args.node}" / "pid"
    try:
        pid = int(pid_path.read_text().strip())
    except FileNotFoundError:
        print(f"node {args.node}: no pidfile at {pid_path}; nothing to kill")
        return 0
    except (OSError, ValueError) as exc:
        print(f"error: cannot read {pid_path}: {exc}", file=sys.stderr)
        return 2
    signum = signal.SIGKILL if args.signal == "KILL" else signal.SIGTERM
    try:
        os.kill(pid, signum)
    except ProcessLookupError:
        # A crashed/killed node leaves its pidfile behind; treat the
        # stale entry as already-dead rather than an error so kill is
        # idempotent in restart scripts.
        pid_path.unlink(missing_ok=True)
        print(
            f"node {args.node}: pid {pid} is not running "
            f"(stale pidfile removed)"
        )
        return 0
    except OSError as exc:
        print(f"error: kill {pid} failed: {exc}", file=sys.stderr)
        return 2
    print(f"sent SIG{args.signal} to node {args.node} (pid {pid})")
    return 0


def cmd_service_load(args) -> int:
    return _with_observability(args, lambda: _cmd_service_load(args))


def _cmd_service_load(args) -> int:
    from repro.errors import ReproError
    from repro.runtime.cluster import TERMINATED
    from repro.service.load import run_load

    if args.txns is not None:
        txns = args.txns
    else:
        txns = max(1, int(args.rate * args.duration))
    try:
        report = run_load(
            txns=txns,
            rate=args.rate,
            shards=args.shards,
            group_size=args.group_size,
            K=args.K,
            seed=args.seed,
            tick_interval=args.tick_interval,
            kills=args.kills,
            commit_bias=args.commit_bias,
            snapshot_every=args.snapshot_every,
            deadline=args.deadline,
        )
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    doc = report.to_dict()
    print(json.dumps(doc, indent=2, sort_keys=True))
    if args.out:
        from pathlib import Path

        out = Path(args.out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
        print(f"wrote {out}", file=sys.stderr)
    if report.safety_violations or report.outcome != TERMINATED:
        return 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    from repro.telemetry.log import LOG_LEVELS

    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Transaction Commit in a Realistic Fault Model (PODC 1986) — "
            "reproduction toolkit"
        ),
        epilog=EXIT_CODES,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "--version",
        action="version",
        version=f"%(prog)s {__version__}",
    )
    parser.add_argument(
        "--log-level",
        choices=sorted(LOG_LEVELS),
        default=None,
        help="configure the repro logging channel (stderr)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_parser = sub.add_parser(
        "run-commit", help="run Protocol 2 once and inspect the run"
    )
    run_parser.add_argument(
        "--votes",
        type=_parse_votes,
        default=[1, 1, 1, 1, 1],
        help="comma-separated initial votes, e.g. 1,1,0,1,1",
    )
    run_parser.add_argument("--K", type=int, default=4, help="on-time bound")
    run_parser.add_argument(
        "--adversary",
        choices=ADVERSARY_CHOICES,
        default="synchronous",
        help="scheduler to run under",
    )
    run_parser.add_argument(
        "--crashes",
        type=_parse_pids,
        default=[],
        help="pids to crash (with --adversary crash), e.g. 3,4",
    )
    run_parser.add_argument("--seed", type=int, default=0)
    run_parser.add_argument("--max-steps", type=int, default=50_000)
    run_parser.add_argument(
        "--timeline", action="store_true", help="print the event timeline"
    )
    run_parser.add_argument(
        "--lanes", action="store_true", help="print the per-processor lanes"
    )
    run_parser.add_argument(
        "--rounds", action="store_true", help="print the round chart"
    )
    run_parser.add_argument(
        "--limit", type=int, default=None, help="cap rendered events"
    )
    run_parser.add_argument(
        "--save", default=None, help="save a replayable schedule (JSON path)"
    )
    run_parser.add_argument(
        "--json",
        action="store_true",
        help=(
            "emit a schema-versioned JSON document (metrics, per-phase "
            "counters, telemetry snapshot, full trace) instead of text"
        ),
    )
    run_parser.add_argument(
        "--trace-out",
        default=None,
        help="archive the full run as JSONL (repro.run-trace schema)",
    )
    run_parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help=(
            "worker processes for engine-routed trial batches "
            "(default: cpu count via REPRO_WORKERS/os.cpu_count)"
        ),
    )
    _add_sim_core_arg(run_parser)
    _add_model_arg(run_parser)
    _add_observability_args(run_parser)
    run_parser.set_defaults(fn=cmd_run_commit)

    replay_parser = sub.add_parser(
        "replay", help="replay a saved schedule against fresh processors"
    )
    replay_parser.add_argument("path", help="schedule JSON written by --save")
    replay_parser.add_argument(
        "--votes",
        type=_parse_votes,
        default=None,
        help="override the initial votes (defaults to all-commit)",
    )
    replay_parser.set_defaults(fn=cmd_replay)

    list_parser = sub.add_parser(
        "experiments", help="list the registered experiments"
    )
    list_parser.set_defaults(fn=cmd_experiments)

    experiment_parser = sub.add_parser(
        "experiment", help="run one experiment and print its table"
    )
    experiment_parser.add_argument("id", help="experiment id, e.g. E2")
    experiment_parser.add_argument(
        "--trials", type=int, default=None, help="override the trial count"
    )
    experiment_parser.add_argument(
        "--quick", action="store_true", help="benchmark-sized workload"
    )
    experiment_parser.add_argument(
        "--json",
        action="store_true",
        help="emit the table and telemetry snapshot as JSON",
    )
    experiment_parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help=(
            "worker processes for the trial batches (default: cpu count "
            "via REPRO_WORKERS/os.cpu_count; 1 forces serial)"
        ),
    )
    _add_model_arg(experiment_parser)
    experiment_parser.set_defaults(fn=cmd_experiment)

    stats_parser = sub.add_parser(
        "stats",
        help=(
            "print a telemetry registry snapshot, optionally rebuilt "
            "from archived JSONL traces"
        ),
    )
    stats_parser.add_argument(
        "traces",
        nargs="*",
        help="JSONL traces written by run-commit --trace-out",
    )
    stats_parser.add_argument(
        "--format",
        choices=("json", "prom"),
        default="json",
        help="snapshot format: JSON (default) or Prometheus text",
    )
    stats_parser.set_defaults(fn=cmd_stats)

    faults_parser = sub.add_parser(
        "faults", help="fault-injection tooling (see: faults campaign)"
    )
    faults_sub = faults_parser.add_subparsers(dest="faults_command", required=True)
    campaign_parser = faults_sub.add_parser(
        "campaign",
        help=(
            "sweep seeded randomized FaultPlans across both tracks and "
            "machine-check safety on every trial"
        ),
    )
    campaign_parser.add_argument(
        "--plans", type=int, default=100, help="number of randomized plans"
    )
    campaign_parser.add_argument(
        "--n", type=int, default=5, help="processors per trial"
    )
    campaign_parser.add_argument(
        "--t", type=int, default=None, help="fault budget (default (n-1)//2)"
    )
    campaign_parser.add_argument("--K", type=int, default=4, help="on-time bound")
    campaign_parser.add_argument(
        "--seed", type=int, default=0, help="base seed; plan i uses seed+i"
    )
    campaign_parser.add_argument(
        "--tracks",
        default="sim,runtime",
        help=(
            "comma-separated tracks to run: sim, runtime, service "
            "(service is the crash-recovery track and runs alone)"
        ),
    )
    campaign_parser.add_argument(
        "--max-steps",
        type=int,
        default=20_000,
        help="simulator step horizon per trial",
    )
    campaign_parser.add_argument(
        "--deadline",
        type=float,
        default=8.0,
        help="runtime-track budget per trial, in virtual seconds",
    )
    campaign_parser.add_argument(
        "--over-budget-fraction",
        type=float,
        default=0.25,
        help="fraction of plans drawing more than t crashes",
    )
    campaign_parser.add_argument(
        "--all-commit-fraction",
        type=float,
        default=0.6,
        help="fraction of trials voting all-commit (rest draw random votes)",
    )
    campaign_parser.add_argument(
        "--recovery-probability",
        type=float,
        default=0.0,
        help=(
            "chance that a drawn crash recovers later (crash-recovery "
            "model; requires --tracks service)"
        ),
    )
    campaign_parser.add_argument(
        "--variant",
        default="commit",
        help=(
            "protocol variant to sweep: commit (the paper's Protocol 2) "
            "or broken-commit (the planted-bug fixture)"
        ),
    )
    campaign_parser.add_argument(
        "--txns",
        type=int,
        default=1,
        help=(
            "transactions per trial (multi-transaction workload; "
            "requires --tracks service)"
        ),
    )
    campaign_parser.add_argument(
        "--shards",
        type=int,
        default=1,
        help=(
            "commit groups per trial, n processors each (requires "
            "--tracks service)"
        ),
    )
    campaign_parser.add_argument(
        "--commit-bias",
        type=float,
        default=1.0,
        help=(
            "Bernoulli parameter of derived per-transaction votes "
            "(multi-transaction trials only)"
        ),
    )
    campaign_parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help=(
            "worker processes for the plan sweep (default: cpu count via "
            "REPRO_WORKERS/os.cpu_count; 1 forces serial)"
        ),
    )
    campaign_parser.add_argument(
        "--out", default=None, help="write the campaign report JSON here"
    )
    campaign_parser.add_argument(
        "--artifact-dir",
        default=None,
        help="write one replay artifact per safety-violating trial here",
    )
    campaign_parser.add_argument(
        "--fail-on-liveness",
        action="store_true",
        help=(
            "exit 2 when liveness (nonblocking) violations occur without "
            "any safety violation (safety still exits 1)"
        ),
    )
    campaign_parser.add_argument(
        "--json",
        action="store_true",
        help="print the full report document instead of the summary",
    )
    campaign_parser.add_argument(
        "--stats",
        action="store_true",
        help="embed a telemetry snapshot in the report",
    )
    _add_sim_core_arg(campaign_parser)
    _add_model_arg(campaign_parser)
    _add_observability_args(campaign_parser)
    campaign_parser.set_defaults(fn=cmd_faults_campaign)

    replay_artifact_parser = faults_sub.add_parser(
        "replay",
        help=(
            "re-execute a replay artifact and verify byte-identical "
            "reproduction of the recorded per-track results"
        ),
    )
    replay_artifact_parser.add_argument(
        "artifact", help="path to a repro.counterexample JSONL artifact"
    )
    replay_artifact_parser.add_argument(
        "--json",
        action="store_true",
        help="print the verification report as JSON",
    )
    replay_artifact_parser.set_defaults(fn=cmd_faults_replay)

    shrink_parser = faults_sub.add_parser(
        "shrink",
        help=(
            "minimize a violating trial to a locally-minimal FaultPlan "
            "that still violates safety"
        ),
    )
    shrink_parser.add_argument(
        "--artifact",
        default=None,
        help="shrink the case pinned in this replay artifact",
    )
    shrink_parser.add_argument(
        "--plans",
        type=int,
        default=50,
        help="without --artifact: scan this many plans for a violation",
    )
    shrink_parser.add_argument(
        "--n", type=int, default=5, help="processors per trial"
    )
    shrink_parser.add_argument(
        "--t", type=int, default=None, help="fault budget (default (n-1)//2)"
    )
    shrink_parser.add_argument("--K", type=int, default=4, help="on-time bound")
    shrink_parser.add_argument(
        "--seed", type=int, default=0, help="base seed; plan i uses seed+i"
    )
    shrink_parser.add_argument(
        "--all-commit-fraction",
        type=float,
        default=0.6,
        help="fraction of trials voting all-commit (rest draw random votes)",
    )
    shrink_parser.add_argument(
        "--variant",
        default="broken-commit",
        help="protocol variant to scan (default: the planted-bug fixture)",
    )
    shrink_parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes for scanning and candidate probing",
    )
    shrink_parser.add_argument(
        "--out",
        default=None,
        help="write the minimal case as a replay artifact here",
    )
    shrink_parser.add_argument(
        "--max-entries",
        type=int,
        default=None,
        help="exit 1 unless the minimal plan has at most this many entries",
    )
    shrink_parser.add_argument(
        "--json",
        action="store_true",
        help="print the shrink result as JSON",
    )
    shrink_parser.set_defaults(fn=cmd_faults_shrink)

    diff_parser = faults_sub.add_parser(
        "diff",
        help=(
            "run the cross-track differential oracle: every plan on both "
            "the simulator and the runtime, flagging semantic divergence"
        ),
    )
    diff_parser.add_argument(
        "--plans", type=int, default=100, help="number of randomized plans"
    )
    diff_parser.add_argument(
        "--n", type=int, default=5, help="processors per trial"
    )
    diff_parser.add_argument(
        "--t", type=int, default=None, help="fault budget (default (n-1)//2)"
    )
    diff_parser.add_argument("--K", type=int, default=4, help="on-time bound")
    diff_parser.add_argument(
        "--seed", type=int, default=0, help="base seed; plan i uses seed+i"
    )
    diff_parser.add_argument(
        "--max-steps",
        type=int,
        default=20_000,
        help="simulator step horizon per trial",
    )
    diff_parser.add_argument(
        "--deadline",
        type=float,
        default=8.0,
        help="runtime-track budget per trial, in virtual seconds",
    )
    diff_parser.add_argument(
        "--over-budget-fraction",
        type=float,
        default=0.25,
        help="fraction of plans drawing more than t crashes",
    )
    diff_parser.add_argument(
        "--all-commit-fraction",
        type=float,
        default=0.6,
        help="fraction of trials voting all-commit (rest draw random votes)",
    )
    diff_parser.add_argument(
        "--variant",
        default="commit",
        help="protocol variant to sweep (broken-commit to test the oracle)",
    )
    diff_parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes for the plan sweep",
    )
    diff_parser.add_argument(
        "--cores",
        action="store_true",
        help=(
            "compare execution cores instead of tracks: run every "
            "sim-track case on both the reference and fast cores and "
            "require byte-identical serialized runs"
        ),
    )
    diff_parser.add_argument(
        "--out", default=None, help="write the differential report JSON here"
    )
    diff_parser.add_argument(
        "--json",
        action="store_true",
        help="print the full report document instead of the summary",
    )
    diff_parser.set_defaults(fn=cmd_faults_diff)

    service_parser = sub.add_parser(
        "service",
        help=(
            "deployable crash-recovery commit service over TCP "
            "(see: service start, submit, status, kill, load)"
        ),
    )
    service_sub = service_parser.add_subparsers(
        dest="service_command", required=True
    )

    start_parser = service_sub.add_parser(
        "start",
        help=(
            "run one node of the commit service: recover from its WAL "
            "(if any), listen on base-port + node, serve until decided "
            "and halted"
        ),
    )
    start_parser.add_argument(
        "--node", type=int, required=True, help="this node's pid (0 = coordinator)"
    )
    start_parser.add_argument(
        "--votes",
        default="1,1,1,1,1",
        help="comma-separated votes for the whole cluster (length = n)",
    )
    start_parser.add_argument(
        "--t", type=int, default=None, help="fault budget (default (n-1)//2)"
    )
    start_parser.add_argument("--K", type=int, default=4, help="on-time bound")
    start_parser.add_argument(
        "--seed", type=int, default=0, help="cluster seed (same on every node)"
    )
    start_parser.add_argument(
        "--variant",
        default="commit",
        help="protocol variant: commit or broken-commit",
    )
    start_parser.add_argument(
        "--host", default="127.0.0.1", help="listen/peer host"
    )
    start_parser.add_argument(
        "--base-port",
        type=int,
        default=7400,
        help="node p listens on base-port + p",
    )
    start_parser.add_argument(
        "--data-dir",
        required=True,
        help="durable root; this node's WAL lives in <data-dir>/node<p>/",
    )
    start_parser.add_argument(
        "--tick-interval",
        type=float,
        default=0.02,
        help="protocol step granularity in seconds",
    )
    start_parser.add_argument(
        "--no-fsync",
        action="store_true",
        help="skip fsync on WAL appends (testing only)",
    )
    start_parser.add_argument(
        "--no-hold",
        action="store_true",
        help=(
            "start the commit immediately instead of waiting for "
            "`repro service submit` (coordinator only; other nodes "
            "never hold)"
        ),
    )
    start_parser.add_argument(
        "--snapshot-every",
        type=int,
        default=256,
        help="compact the WAL into a snapshot every N steps (0 = never)",
    )
    start_parser.add_argument(
        "--multi-txn",
        action="store_true",
        help=(
            "host many concurrent transactions (lazily created per "
            "txn id) instead of the single default transaction"
        ),
    )
    start_parser.add_argument(
        "--commit-bias",
        type=float,
        default=1.0,
        help=(
            "Bernoulli parameter of derived per-transaction votes "
            "(multi-txn only; 1.0 = always vote yes)"
        ),
    )
    _add_observability_args(start_parser)
    start_parser.set_defaults(fn=cmd_service_start)

    submit_parser = service_sub.add_parser(
        "submit",
        help="release the coordinator's held transaction (start the commit)",
    )
    submit_parser.add_argument("--host", default="127.0.0.1")
    submit_parser.add_argument(
        "--port", type=int, default=7400, help="the coordinator's port"
    )
    submit_parser.add_argument(
        "--timeout", type=float, default=5.0, help="request timeout in seconds"
    )
    submit_parser.add_argument(
        "--txn",
        type=int,
        default=0,
        help=(
            "transaction id to submit to a multi-transaction node "
            "(0 = the node's default held transaction)"
        ),
    )
    submit_parser.set_defaults(fn=cmd_service_submit)

    status_parser = service_sub.add_parser(
        "status",
        help="query every node's decision and incarnation over TCP",
    )
    status_parser.add_argument("--host", default="127.0.0.1")
    status_parser.add_argument(
        "--base-port", type=int, default=7400, help="node p answers on base-port + p"
    )
    status_parser.add_argument(
        "--n", type=int, default=5, help="cluster size (ports probed)"
    )
    status_parser.add_argument(
        "--timeout", type=float, default=2.0, help="per-node timeout in seconds"
    )
    status_parser.add_argument(
        "--check",
        action="store_true",
        help=(
            "exit 1 unless every node is reachable, decided, and all "
            "decisions agree"
        ),
    )
    status_parser.set_defaults(fn=cmd_service_status)

    kill_parser = service_sub.add_parser(
        "kill",
        help="signal a node process via its <data-dir>/node<p>/pid file",
    )
    kill_parser.add_argument("--node", type=int, required=True)
    kill_parser.add_argument("--data-dir", required=True)
    kill_parser.add_argument(
        "--signal",
        choices=("TERM", "KILL"),
        default="KILL",
        help="TERM halts cleanly; KILL simulates a crash (default)",
    )
    kill_parser.set_defaults(fn=cmd_service_kill)

    load_parser = service_sub.add_parser(
        "load",
        help=(
            "open-loop multi-transaction load run on the virtual clock: "
            "sharded commit groups, optional kill/recover faults, "
            "txn/s + p50/p99 latency report"
        ),
    )
    load_parser.add_argument(
        "--rate",
        type=float,
        default=500.0,
        help="offered arrival rate in transactions per virtual second",
    )
    load_parser.add_argument(
        "--duration",
        type=float,
        default=1.0,
        help="submission window in virtual seconds (txns = rate * duration)",
    )
    load_parser.add_argument(
        "--txns",
        type=int,
        default=None,
        help="exact transaction count (overrides --duration)",
    )
    load_parser.add_argument(
        "--shards",
        type=int,
        default=1,
        help="independent commit groups (txn i goes to shard i %% shards)",
    )
    load_parser.add_argument(
        "--group-size", type=int, default=5, help="processors per group"
    )
    load_parser.add_argument("--K", type=int, default=4, help="on-time bound")
    load_parser.add_argument("--seed", type=int, default=0)
    load_parser.add_argument(
        "--tick-interval",
        type=float,
        default=0.002,
        help="virtual seconds per protocol step",
    )
    load_parser.add_argument(
        "--kills",
        type=int,
        default=0,
        help="seeded kill/recover faults to inject during the run",
    )
    load_parser.add_argument(
        "--commit-bias",
        type=float,
        default=1.0,
        help="Bernoulli parameter of derived per-transaction votes",
    )
    load_parser.add_argument(
        "--snapshot-every",
        type=int,
        default=32,
        help="node snapshot-compaction period in steps (0 = never)",
    )
    load_parser.add_argument(
        "--deadline",
        type=float,
        default=None,
        help="virtual-time budget (default: window + recovery tail)",
    )
    load_parser.add_argument(
        "--out",
        default=None,
        help="also write the JSON report to this path (e.g. BENCH_throughput.json)",
    )
    _add_observability_args(load_parser)
    load_parser.set_defaults(fn=cmd_service_load)

    mc_parser = sub.add_parser(
        "mc",
        help="bounded exhaustive model checking (see: mc explore, mc certify)",
    )
    mc_sub = mc_parser.add_subparsers(dest="mc_command", required=True)
    explore_parser = mc_sub.add_parser(
        "explore",
        help=(
            "exhaust every adversary choice (scheduling, crashes, "
            "withholding) within configured bounds, checking safety at "
            "every state"
        ),
    )
    explore_parser.add_argument(
        "--variant",
        default="commit",
        help=(
            "protocol variant to check: commit (the paper's Protocol 2) "
            "or broken-commit (the planted-bug fixture)"
        ),
    )
    explore_parser.add_argument(
        "--n", type=int, default=3, help="processors per run"
    )
    explore_parser.add_argument(
        "--t", type=int, default=None, help="fault budget (default (n-1)//2)"
    )
    explore_parser.add_argument(
        "--K", type=int, default=2, help="on-time bound"
    )
    explore_parser.add_argument(
        "--votes",
        type=_parse_votes,
        default=None,
        help=(
            "check one vote vector, e.g. 1,0,1 "
            "(default: sweep all 2**n vectors)"
        ),
    )
    explore_parser.add_argument(
        "--seed", type=int, default=0, help="random-tape seed of every run"
    )
    explore_parser.add_argument(
        "--max-cycles",
        type=int,
        default=10,
        help="per-processor step bound (the exploration depth driver)",
    )
    explore_parser.add_argument(
        "--crash-budget",
        type=int,
        default=1,
        help="fail-stop crashes available to the adversary",
    )
    explore_parser.add_argument(
        "--delay-budget",
        type=int,
        default=0,
        help="total withholding steps for guaranteed envelopes",
    )
    explore_parser.add_argument(
        "--max-late",
        type=int,
        default=0,
        help="distinct guaranteed envelopes that may ever be withheld",
    )
    explore_parser.add_argument(
        "--max-skew",
        type=int,
        default=None,
        help=(
            "cap on a processor's clock lead over the slowest running "
            "processor (default: unbounded; only meaningful with "
            "--order free)"
        ),
    )
    explore_parser.add_argument(
        "--order",
        choices=("rr", "free"),
        default="rr",
        help=(
            "stepping order: rr (canonical slowest-first round-robin, "
            "default) or free (adversary picks the next processor; "
            "grows ~20x per cycle — pair with --max-skew and shallow "
            "--max-cycles)"
        ),
    )
    explore_parser.add_argument(
        "--no-por",
        action="store_true",
        help="disable sleep-set partial-order reduction (baseline mode)",
    )
    explore_parser.add_argument(
        "--first",
        action="store_true",
        help="stop at the first violation instead of exhausting the space",
    )
    explore_parser.add_argument(
        "--split-depth",
        type=int,
        default=1,
        help=(
            "DFS depth at which subtrees become parallel engine jobs "
            "(fixed per config, so reports are byte-identical at any "
            "worker count)"
        ),
    )
    explore_parser.add_argument(
        "--max-states",
        type=int,
        default=2_000_000,
        help="per-job arrival valve; exploration truncates instead of hanging",
    )
    explore_parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help=(
            "worker processes for subtree jobs (default: cpu count via "
            "REPRO_WORKERS/os.cpu_count; 1 forces serial)"
        ),
    )
    explore_parser.add_argument(
        "--artifact-dir",
        default=None,
        help=(
            "write one replay artifact per violated-property class here "
            "(replayable via faults replay, shrinkable via faults shrink)"
        ),
    )
    explore_parser.add_argument(
        "--out", default=None, help="write the exploration report JSON here"
    )
    explore_parser.add_argument(
        "--json",
        action="store_true",
        help="print the full report document instead of the summary",
    )
    explore_parser.add_argument(
        "--stats",
        action="store_true",
        help="embed a telemetry snapshot in the report",
    )
    _add_sim_core_arg(explore_parser)
    _add_model_arg(explore_parser)
    _add_observability_args(explore_parser)
    explore_parser.set_defaults(fn=cmd_mc_explore)

    certify_parser = mc_sub.add_parser(
        "certify",
        help=(
            "run a canned certification preset: exhaustive safety sweep "
            "(with and without reduction) plus planted-bug detection "
            "with a campaign-path replay cross-check"
        ),
    )
    certify_parser.add_argument(
        "--preset",
        default="small-commit",
        help="preset name (default: small-commit)",
    )
    certify_parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes for the exploration phases",
    )
    certify_parser.add_argument(
        "--out", default=None, help="write the certify report JSON here"
    )
    certify_parser.add_argument(
        "--json",
        action="store_true",
        help="print the full report document instead of the summary",
    )
    certify_parser.set_defaults(fn=cmd_mc_certify)

    models_parser = sub.add_parser(
        "models",
        help=(
            "the timing-model zoo (see: models list, models atlas)"
        ),
    )
    models_sub = models_parser.add_subparsers(
        dest="models_command", required=True
    )
    models_list_parser = models_sub.add_parser(
        "list",
        help=(
            "list registered timing models: semantics, track support, "
            "fast-core whitelist status, and knobs"
        ),
    )
    models_list_parser.add_argument(
        "--json",
        action="store_true",
        help="emit the registry as a JSON array",
    )
    models_list_parser.set_defaults(fn=cmd_models_list)

    atlas_parser = models_sub.add_parser(
        "atlas",
        help=(
            "sweep a protocol battery across the timing-model zoo and "
            "tabulate termination, latency, and machine-checked safety "
            "per (protocol, model) cell"
        ),
    )
    atlas_parser.add_argument(
        "--protocols",
        default="protocol1,protocol2,twopc,threepc",
        help=(
            "comma-separated battery: protocol1, protocol2, twopc, "
            "twopc-block, threepc (default: all four classics)"
        ),
    )
    atlas_parser.add_argument(
        "--models",
        default="",
        help=(
            "comma-separated timing models (default: every registered "
            "model; see repro models list)"
        ),
    )
    atlas_parser.add_argument(
        "--n", type=int, default=5, help="processors per trial"
    )
    atlas_parser.add_argument(
        "--t", type=int, default=None, help="fault budget (default (n-1)//2)"
    )
    atlas_parser.add_argument(
        "--K", type=int, default=4, help="on-time bound"
    )
    atlas_parser.add_argument(
        "--trials",
        type=int,
        default=25,
        help="seeded trials per (protocol, model) cell",
    )
    atlas_parser.add_argument(
        "--seed", type=int, default=0, help="base seed; trial i uses seed+i"
    )
    atlas_parser.add_argument(
        "--max-steps",
        type=int,
        default=6_000,
        help="simulator step horizon per trial",
    )
    atlas_parser.add_argument(
        "--over-budget-fraction",
        type=float,
        default=0.25,
        help="fraction of plans drawing more than t crashes",
    )
    atlas_parser.add_argument(
        "--all-commit-fraction",
        type=float,
        default=0.6,
        help="fraction of trials voting all-commit",
    )
    atlas_parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help=(
            "worker processes per cell sweep (default: cpu count via "
            "REPRO_WORKERS/os.cpu_count; 1 forces serial)"
        ),
    )
    atlas_parser.add_argument(
        "--out", default=None, help="write the atlas report JSON here"
    )
    atlas_parser.add_argument(
        "--json",
        action="store_true",
        help="print the full report document instead of the table",
    )
    _add_sim_core_arg(atlas_parser)
    _add_observability_args(atlas_parser)
    atlas_parser.set_defaults(fn=cmd_models_atlas)

    trace_parser = sub.add_parser(
        "trace",
        help="inspect span traces recorded with --trace-spans",
    )
    trace_sub = trace_parser.add_subparsers(dest="trace_command", required=True)

    export_parser = trace_sub.add_parser(
        "export",
        help=(
            "convert a span trace to Chrome trace-event JSON (Perfetto / "
            "chrome://tracing) or re-validated span-trace JSONL"
        ),
    )
    export_parser.add_argument("trace", help="span-trace JSONL (--trace-spans)")
    export_parser.add_argument(
        "--format",
        choices=("chrome", "jsonl"),
        default="chrome",
        help="output format (default: chrome)",
    )
    export_parser.add_argument(
        "--out", required=True, help="output path for the converted trace"
    )
    export_parser.set_defaults(fn=cmd_trace_export)

    summarize_parser = trace_sub.add_parser(
        "summarize",
        help="print record counts, span kinds, and event totals",
    )
    summarize_parser.add_argument(
        "trace", help="span-trace JSONL (--trace-spans)"
    )
    summarize_parser.add_argument(
        "--json", action="store_true", help="emit the summary as JSON"
    )
    summarize_parser.set_defaults(fn=cmd_trace_summarize)

    critical_parser = trace_sub.add_parser(
        "critical-path",
        help=(
            "extract the longest causal message chain ending at each "
            "decision and attribute the decision round to it"
        ),
    )
    critical_parser.add_argument(
        "trace", help="span-trace JSONL (--trace-spans)"
    )
    critical_parser.add_argument(
        "--hops",
        action="store_true",
        help="list every send→deliver hop along each chain",
    )
    critical_parser.add_argument(
        "--json", action="store_true", help="emit the paths as JSON"
    )
    critical_parser.set_defaults(fn=cmd_trace_critical_path)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    from repro.errors import ConfigurationError

    parser = build_parser()
    args = parser.parse_args(argv)
    if args.log_level is not None:
        from repro.telemetry.log import configure_logging

        configure_logging(args.log_level)
    try:
        return args.fn(args)
    except ConfigurationError as exc:
        # Lazily-resolved knobs (REPRO_SIM_CORE, REPRO_SIM_NUMPY, ...)
        # surface here; follow the usage-error convention.
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
