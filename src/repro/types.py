"""Shared primitive types used across the library.

These are deliberately tiny: identifiers, the decision/vote value domain,
and a handful of aliases that make signatures self-describing.  The model
of the paper identifies *abort* with ``0`` and *commit* with ``1``; we keep
that identification explicit via :class:`Decision` and :class:`Vote` while
still allowing raw ``0``/``1`` at the simulation layer, where the agreement
subroutine is value-agnostic.
"""

from __future__ import annotations

import enum
from typing import NewType

#: A processor identifier.  The paper numbers processors with integers and
#: designates processor ``0`` as the coordinator of Protocol 2.
ProcessorId = NewType("ProcessorId", int)

#: The coordinator's identifier in Protocol 2 ("the processor with id 0").
COORDINATOR_ID = ProcessorId(0)

#: Binary value domain of the agreement subroutine.
BinaryValue = int


class Vote(enum.IntEnum):
    """A processor's initial (and current) wish for the transaction.

    The paper identifies abort with 0 and commit with 1; making the enum an
    ``IntEnum`` lets protocol code treat votes as the binary values fed to
    the agreement subroutine without conversion.
    """

    ABORT = 0
    COMMIT = 1

    @classmethod
    def from_bit(cls, bit: int) -> "Vote":
        """Return the vote corresponding to a binary value.

        Raises:
            ValueError: if ``bit`` is not 0 or 1.
        """
        if bit not in (0, 1):
            raise ValueError(f"vote bit must be 0 or 1, got {bit!r}")
        return cls(bit)


class Decision(enum.IntEnum):
    """The final, irrevocable outcome of the transaction at a processor.

    Entering a decision state is permanent in the model (the decision sets
    ``Y0``/``Y1`` are absorbing); the simulation kernel enforces this.
    """

    ABORT = 0
    COMMIT = 1

    @classmethod
    def from_bit(cls, bit: int) -> "Decision":
        """Return the decision corresponding to a binary agreement value.

        Raises:
            ValueError: if ``bit`` is not 0 or 1.
        """
        if bit not in (0, 1):
            raise ValueError(f"decision bit must be 0 or 1, got {bit!r}")
        return cls(bit)


class ProcessStatus(enum.Enum):
    """Lifecycle of a simulated processor.

    ``RUNNING``  -- taking steps, protocol program not yet finished.
    ``RETURNED`` -- the protocol program ran to completion (Protocol 1's
                    ``return`` / Protocol 2's final decide); the processor
                    may still be scheduled but its steps are no-ops apart
                    from clock ticks.
    ``CRASHED``  -- fail-stopped by the adversary; never scheduled again.
    """

    RUNNING = enum.auto()
    RETURNED = enum.auto()
    CRASHED = enum.auto()
