"""Exception hierarchy for the ``repro`` library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch the whole family with one ``except`` clause.  The
sub-hierarchy mirrors the architectural layers: simulation-kernel errors,
model/admissibility violations, protocol misuse, and analysis errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by the ``repro`` library."""


class SimulationError(ReproError):
    """Base class for errors raised by the discrete-event simulation kernel."""


class SchedulingError(SimulationError):
    """An adversary issued a decision the model does not allow.

    Examples: stepping a crashed processor, delivering a message that is not
    in the target's buffer, or delivering the same message twice.
    """


class TapeExhaustedError(SimulationError):
    """A processor requested randomness beyond the end of a finite tape."""


class AdmissibilityError(SimulationError):
    """A run violated the ``t``-admissibility conditions of the model.

    Raised by the admissibility monitor when, e.g., more than ``t``
    processors crash, or a guaranteed message to a nonfaulty processor is
    provably never delivered.
    """


class ProtocolError(ReproError):
    """Base class for protocol-level errors (misuse of a state machine)."""


class ProtocolViolation(ProtocolError):
    """A protocol invariant was broken at runtime.

    This should never fire for the shipped protocols; it exists so tests
    and fault-injection harnesses can assert on internal invariants.
    """


class ConfigurationError(ProtocolError):
    """A protocol or simulation was configured with invalid parameters.

    Examples: ``n <= 2 * t`` for Protocol 1/2 (outside the proven envelope
    unless explicitly overridden for lower-bound experiments), a
    non-positive ``K``, or duplicate processor identifiers.
    """


class RuntimeTransportError(ReproError):
    """Base class for asyncio-runtime transport failures."""


class NodeCrashedError(RuntimeTransportError):
    """An operation was attempted on a node that has been crashed."""


class ServiceError(ReproError):
    """Base class for deployable commit-service failures."""


class WalError(ServiceError):
    """A write-ahead log or snapshot is unreadable beyond repair.

    Torn *tails* (a truncated final record after a mid-write kill) are
    not errors — the reader recovers from the last valid record; this is
    raised for structural corruption recovery cannot paper over, such as
    conflicting decision records or a checksum-failing snapshot.
    """


class AnalysisError(ReproError):
    """Base class for Monte-Carlo / statistics errors."""


class InsufficientDataError(AnalysisError):
    """A statistic was requested over too few samples to be meaningful."""
