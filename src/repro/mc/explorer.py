"""The bounded exhaustive DFS explorer with sleep-set reduction.

Protocol programs are generators and cannot be copied, so a state is
represented by its *decision path* from the initial configuration and
re-materialised by replaying that prefix on a fresh
:class:`~repro.sim.scheduler.Simulation`.  The DFS hands its live
simulation to the first explored child and replays the prefix only for
later siblings, which halves the replay work.

**Counting.**  ``states_visited`` counts node *arrivals* — each arrival
is one prefix replay plus one fingerprint, i.e. the unit of real work.
With exact deduplication the set of unique states is the same with and
without reduction; what sleep sets save is arrivals (a sleeping
transition is pruned before it is executed at all), so the
POR-vs-baseline comparison the certify presets print and assert is an
arrivals comparison.

**Soundness of the visited set under sleep sets.**  A prior visit of a
state with sleep set ``S`` explored every transition outside ``S``.
Re-arriving with sleep set ``S' ⊇ S`` would explore a subset of that,
so the arrival is skipped only when some stored sleep set is a subset
of the current one; otherwise the current sleep set is stored (and
dominated supersets dropped).  Budgets are folded into the digest, so
states differing only in remaining budget never alias.

**Parallelism.**  The choice tree is cut at ``split_depth`` into
independent subtree jobs fanned out through :mod:`repro.engine`.  The
decomposition is fixed by the config — never by the worker count — and
each job owns a fresh visited set, so reports are byte-identical at
any parallelism (cross-subtree deduplication is traded away for that
determinism).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from functools import partial
from typing import Any

from repro.engine.executor import run_trials
from repro.errors import AnalysisError
from repro.faults.safety import SafetyMonitor
from repro.faults.variants import make_programs
from repro.mc.choices import (
    Choice,
    TransitionInfo,
    TransitionKey,
    enumerate_choices,
    independent,
    transition_info,
)
from repro.mc.config import MCConfig
from repro.mc.fingerprint import LateKey, state_digest
from repro.models import mcfilter
from repro.sim.decisions import (
    Decision,
    StepDecision,
    decision_from_dict,
    decision_to_dict,
)
from repro.sim.pattern import PatternView
from repro.sim.coreselect import simulation_class
from repro.sim.scheduler import Simulation
from repro.telemetry import registry as telemetry
from repro.telemetry.registry import MetricsRegistry
from repro.trace import spans as trace_spans

#: Schema tag of the exploration report document.
EXPLORE_SCHEMA = "repro.mc-explore v1"


class _InertAdversary:
    """Placeholder adversary: the explorer applies decisions directly."""

    def decide(self, view: PatternView) -> Decision:  # pragma: no cover
        raise AnalysisError(
            "the model checker drives the simulation via apply(); its "
            "adversary slot must never be consulted"
        )


_INERT = _InertAdversary()


@dataclass
class ExploreStats:
    """Search counters for one exploration (or one subtree job).

    Attributes:
        states_visited: node arrivals (replay + fingerprint each) — the
            unit of work sleep-set reduction saves.
        states_expanded: arrivals whose choice set was enumerated and
            explored.
        states_deduped: arrivals skipped because a dominating visit of
            the same fingerprint existed.
        pruned_sleep: child transitions skipped asleep.
        terminal_states: arrivals with every nonfaulty program returned.
        bounded_leaves: non-terminal arrivals with no enabled choice
            (the bounds cut the run here).
        violations: arrivals at which a safety property was violated.
        max_depth: longest decision path reached.
        truncated: the ``max_states`` valve fired somewhere.
    """

    states_visited: int = 0
    states_expanded: int = 0
    states_deduped: int = 0
    pruned_sleep: int = 0
    terminal_states: int = 0
    bounded_leaves: int = 0
    violations: int = 0
    max_depth: int = 0
    truncated: bool = False

    def merge(self, other: "ExploreStats") -> None:
        self.states_visited += other.states_visited
        self.states_expanded += other.states_expanded
        self.states_deduped += other.states_deduped
        self.pruned_sleep += other.pruned_sleep
        self.terminal_states += other.terminal_states
        self.bounded_leaves += other.bounded_leaves
        self.violations += other.violations
        self.max_depth = max(self.max_depth, other.max_depth)
        self.truncated = self.truncated or other.truncated

    def to_dict(self) -> dict[str, Any]:
        return {
            "states_visited": self.states_visited,
            "states_expanded": self.states_expanded,
            "states_deduped": self.states_deduped,
            "pruned_sleep": self.pruned_sleep,
            "terminal_states": self.terminal_states,
            "bounded_leaves": self.bounded_leaves,
            "violations": self.violations,
            "max_depth": self.max_depth,
            "truncated": self.truncated,
        }

    @classmethod
    def from_dict(cls, doc: dict[str, Any]) -> "ExploreStats":
        return cls(**doc)


@dataclass(frozen=True)
class ViolationRecord:
    """One violating path: everything needed to script it again.

    Attributes:
        votes: the initial vote vector of the violating run.
        properties: sorted safety properties violated at the state.
        schedule: the decision path from the initial configuration.
        terminal: whether the state was terminal when flagged.
        benign: whether the run was classified benign (crash-free, no
            withheld envelopes, every delivery on time).
    """

    votes: tuple[int, ...]
    properties: tuple[str, ...]
    schedule: tuple[Decision, ...]
    terminal: bool
    benign: bool

    def to_dict(self) -> dict[str, Any]:
        return {
            "votes": list(self.votes),
            "properties": list(self.properties),
            "schedule": [decision_to_dict(d) for d in self.schedule],
            "terminal": self.terminal,
            "benign": self.benign,
        }

    @classmethod
    def from_dict(cls, doc: dict[str, Any]) -> "ViolationRecord":
        return cls(
            votes=tuple(doc["votes"]),
            properties=tuple(doc["properties"]),
            schedule=tuple(decision_from_dict(d) for d in doc["schedule"]),
            terminal=doc["terminal"],
            benign=doc["benign"],
        )


@dataclass
class ExploreReport:
    """Merged outcome of one bounded exhaustive exploration."""

    config: MCConfig
    stats: ExploreStats = field(default_factory=ExploreStats)
    violations: list[ViolationRecord] = field(default_factory=list)
    per_votes: list[dict[str, Any]] = field(default_factory=list)

    @property
    def exhaustive(self) -> bool:
        """Whether the whole bounded space was covered (no truncation)."""
        return not self.stats.truncated

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema": EXPLORE_SCHEMA,
            "config": self.config.to_dict(),
            "stats": self.stats.to_dict(),
            "violations": [v.to_dict() for v in self.violations],
            "per_votes": self.per_votes,
            "exhaustive": self.exhaustive,
        }


def violation_classes(
    violations: list[ViolationRecord],
) -> set[tuple[str, ...]]:
    """Distinct violated-property combinations, as sorted tuples."""
    return {tuple(sorted(v.properties)) for v in violations}


class _SubtreeExplorer:
    """DFS over one vote vector's choice tree (or a subtree of it)."""

    def __init__(self, config: MCConfig, votes: tuple[int, ...]) -> None:
        self.config = config
        self.votes = votes
        self.monitor = SafetyMonitor(
            n=config.n, t=config.t, votes=list(votes)
        )
        self.visited: dict[bytes, list[frozenset[TransitionKey]]] = {}
        self.stats = ExploreStats()
        self.violations: list[ViolationRecord] = []
        # Pure in config, so charging here always agrees with
        # enumeration (enumerate_choices builds its own copy per call).
        self._classifier = mcfilter.classifier_for(config)

    # -- state materialisation -------------------------------------------

    def fresh_sim(self) -> Simulation:
        config = self.config
        return simulation_class()(
            programs=make_programs(
                config.program, config.n, config.t, self.votes, config.K
            ),
            adversary=_INERT,
            K=config.K,
            t=config.t,
            seed=config.seed,
            max_steps=config.max_depth_bound + 1,
            telemetry=MetricsRegistry(enabled=False),
        )

    def charge(
        self,
        sim: Simulation,
        decision: Decision,
        delay_spent: int,
        late_keys: frozenset[LateKey],
    ) -> tuple[int, frozenset[LateKey]]:
        """Budgets after ``decision``, computed from the pre-state."""
        if isinstance(decision, StepDecision):
            delivered = set(decision.deliver)
            clock = sim.processes[decision.pid].clock
            for env in sim.buffers[decision.pid]:
                if env.message_id in delivered or not env.guaranteed:
                    continue
                if self._classifier is not None:
                    # Mirror enumerate_choices' classified partition:
                    # model-withheld (DROP/DEFER) envelopes are charged
                    # nothing, FREE envelopes mark lateness only, and
                    # NORMAL/MUST_DELIVER keep the realistic charge.
                    cls = self._classifier.classify(
                        env, decision.pid, clock
                    )
                    if cls in (mcfilter.DROP, mcfilter.DEFER):
                        continue
                    if cls == mcfilter.FREE:
                        late_keys = late_keys | {
                            (env.sender, env.send_clock, decision.pid)
                        }
                        continue
                delay_spent += 1
                late_keys = late_keys | {
                    (env.sender, env.send_clock, decision.pid)
                }
        return delay_spent, late_keys

    def replay(
        self, prefix: tuple[Decision, ...]
    ) -> tuple[Simulation, int, frozenset[LateKey]]:
        """A fresh simulation advanced through ``prefix``, with budgets."""
        sim = self.fresh_sim()
        delay_spent, late_keys = 0, frozenset()
        for decision in prefix:
            delay_spent, late_keys = self.charge(
                sim, decision, delay_spent, late_keys
            )
            sim.apply(decision)
        return sim, delay_spent, late_keys

    # -- arrival processing ----------------------------------------------

    def check_state(
        self,
        sim: Simulation,
        prefix: tuple[Decision, ...],
        late_keys: frozenset[LateKey],
        depth: int,
    ) -> str:
        """Safety-check one arrival; classify it.

        Returns ``"violation"`` (recorded; prune below — agreement and
        abort validity are absorbing, so every descendant violates
        too), ``"terminal"``, or ``"open"``.
        """
        stats = self.stats
        stats.states_visited += 1
        stats.max_depth = max(stats.max_depth, depth)
        if telemetry.enabled():
            # Live progress for the /metrics endpoint (the end-of-run
            # mc_states_total counters only land after the search).
            telemetry.count(
                "mc_states_visited_total",
                help="model-checker node arrivals so far (live)",
            )
            telemetry.set_gauge(
                "mc_frontier_depth",
                depth,
                help="decision-path depth of the current arrival",
            )
        crashed = sim.crashed_pids()
        terminal = sim.all_nonfaulty_done()
        benign = (
            terminal
            and not crashed
            and not late_keys
            and sim.max_delivery_lag(delivered_only=True) <= sim.K
        )
        report = self.monitor.check(
            decisions={
                pid: proc.decision for pid, proc in enumerate(sim.processes)
            },
            crashed=crashed,
            terminated=terminal,
            expect_termination=False,
            benign=benign,
        )
        violated = sorted(
            {v.prop for v in report.violations if v.is_safety}
        )
        if violated:
            stats.violations += 1
            self.violations.append(
                ViolationRecord(
                    votes=self.votes,
                    properties=tuple(violated),
                    schedule=prefix,
                    terminal=terminal,
                    benign=benign,
                )
            )
            return "violation"
        if terminal:
            stats.terminal_states += 1
            return "terminal"
        return "open"

    # -- the DFS ----------------------------------------------------------

    def explore_from(
        self,
        sim: Simulation,
        prefix: tuple[Decision, ...],
        sleep: dict[TransitionKey, TransitionInfo],
        delay_spent: int,
        late_keys: frozenset[LateKey],
        depth: int,
    ) -> None:
        """Explore the subtree below one arrival; consumes ``sim``."""
        config, stats = self.config, self.stats
        if stats.states_visited >= config.max_states:
            stats.truncated = True
            return
        if config.stop_on_first and self.violations:
            return
        if self.check_state(sim, prefix, late_keys, depth) != "open":
            return
        digest = state_digest(sim, delay_spent, late_keys)
        sleep_keys = frozenset(sleep)
        stored = self.visited.get(digest)
        if stored is not None:
            if any(past <= sleep_keys for past in stored):
                stats.states_deduped += 1
                return
            self.visited[digest] = [
                past for past in stored if not sleep_keys <= past
            ] + [sleep_keys]
        else:
            self.visited[digest] = [sleep_keys]
        choices = enumerate_choices(sim, config, delay_spent, late_keys)
        if not choices:
            stats.bounded_leaves += 1
            return
        stats.states_expanded += 1
        self._explore_children(
            sim, prefix, sleep, delay_spent, late_keys, depth, choices
        )

    def _explore_children(
        self,
        sim: Simulation,
        prefix: tuple[Decision, ...],
        sleep: dict[TransitionKey, TransitionInfo],
        delay_spent: int,
        late_keys: frozenset[LateKey],
        depth: int,
        choices: list[Choice],
    ) -> None:
        config, stats = self.config, self.stats
        executed: list[TransitionInfo] = []
        live_sim: Simulation | None = sim
        for choice in choices:
            if config.por and choice.key in sleep:
                stats.pruned_sleep += 1
                continue
            if live_sim is not None:
                child, child_spent, child_late = (
                    live_sim,
                    delay_spent,
                    late_keys,
                )
                live_sim = None
            else:
                child, child_spent, child_late = self.replay(prefix)
            child_spent, child_late = self.charge(
                child, choice.decision, child_spent, child_late
            )
            child.apply(choice.decision)
            info = transition_info(choice, child)
            child_sleep: dict[TransitionKey, TransitionInfo] = {}
            if config.por:
                for candidate in list(sleep.values()) + executed:
                    if independent(candidate, info):
                        child_sleep[candidate.key] = candidate
            self.explore_from(
                child,
                prefix + (choice.decision,),
                child_sleep,
                child_spent,
                child_late,
                depth + 1,
            )
            executed.append(info)

    # -- job splitting -----------------------------------------------------

    def split(self) -> list[tuple[Decision, ...]]:
        """Process the shallow tree; return subtree-root prefixes.

        Arrivals at depth < ``split_depth`` are safety-checked and
        counted here (without deduplication or sleep pruning — the
        shallow tree is tiny and keeping it reduction-free makes the
        POR and baseline decompositions identical); every frontier node
        at ``split_depth`` becomes one independent job.
        """
        jobs: list[tuple[Decision, ...]] = []
        self._split_walk((), 0, jobs)
        return jobs

    def _split_walk(
        self,
        prefix: tuple[Decision, ...],
        depth: int,
        jobs: list[tuple[Decision, ...]],
    ) -> None:
        if depth >= self.config.split_depth:
            jobs.append(prefix)
            return
        sim, delay_spent, late_keys = self.replay(prefix)
        if self.check_state(sim, prefix, late_keys, depth) != "open":
            return
        choices = enumerate_choices(
            sim, self.config, delay_spent, late_keys
        )
        if not choices:
            self.stats.bounded_leaves += 1
            return
        self.stats.states_expanded += 1
        for choice in choices:
            self._split_walk(prefix + (choice.decision,), depth + 1, jobs)


def _explore_job(config_json: str, payloads: tuple[str, ...], index: int) -> str:
    """Engine payload: exhaust one subtree, return its stats and finds.

    Jobs travel as JSON strings (the partial-bound arguments stay small
    and picklable); ``index`` rides the engine's seed slot, exactly the
    shrinker's probing pattern.
    """
    config = MCConfig.from_dict(json.loads(config_json))
    spec = json.loads(payloads[index])
    votes = tuple(spec["votes"])
    prefix = tuple(decision_from_dict(d) for d in spec["prefix"])
    explorer = _SubtreeExplorer(config, votes)
    sim, delay_spent, late_keys = explorer.replay(prefix)
    explorer.explore_from(
        sim, prefix, {}, delay_spent, late_keys, depth=len(prefix)
    )
    return json.dumps(
        {
            "stats": explorer.stats.to_dict(),
            "violations": [v.to_dict() for v in explorer.violations],
        },
        sort_keys=True,
    )


def explore(config: MCConfig, workers: int | None = None) -> ExploreReport:
    """Run one bounded exhaustive exploration; see the module docstring.

    Sweeps every configured vote vector, cuts each vector's tree at
    ``config.split_depth`` into independent subtree jobs, fans the jobs
    through :mod:`repro.engine`, and merges stats and violations in
    job order — the report is identical at any worker count.
    """
    tracer = trace_spans.active_recorder()
    if tracer is not None and workers != 1:
        workers = 1  # recorders live in-process; keep subtree jobs here
    report = ExploreReport(config=config)
    config_json = json.dumps(config.to_dict(), sort_keys=True)
    for vote_index, votes in enumerate(config.vote_vectors()):
        vote_span = None
        if tracer is not None:
            vote_span = tracer.begin_span(
                f"votes-{''.join(str(v) for v in votes)}",
                kind="exploration",
                track="mc",
                start=vote_index,
                votes=list(votes),
            )
        splitter = _SubtreeExplorer(config, votes)
        jobs = splitter.split()
        vote_stats = splitter.stats
        vote_violations = list(splitter.violations)
        if jobs:
            payloads = tuple(
                json.dumps(
                    {
                        "votes": list(votes),
                        "prefix": [decision_to_dict(d) for d in prefix],
                    },
                    sort_keys=True,
                )
                for prefix in jobs
            )
            results = run_trials(
                partial(_explore_job, config_json, payloads),
                trials=len(payloads),
                base_seed=0,
                workers=workers,
            )
            for raw in results:
                data = json.loads(raw)
                vote_stats.merge(ExploreStats.from_dict(data["stats"]))
                vote_violations.extend(
                    ViolationRecord.from_dict(v) for v in data["violations"]
                )
        report.per_votes.append(
            {
                "votes": list(votes),
                "stats": vote_stats.to_dict(),
                "violations": len(vote_violations),
            }
        )
        report.stats.merge(vote_stats)
        report.violations.extend(vote_violations)
        if tracer is not None and vote_span is not None:
            for record in vote_violations:
                tracer.point(
                    "violation",
                    track="mc",
                    time=vote_index,
                    span=vote_span,
                    properties=",".join(record.properties),
                    schedule_length=len(record.schedule),
                )
            tracer.end_span(
                vote_span,
                vote_index + 1,
                states_visited=vote_stats.states_visited,
                states_expanded=vote_stats.states_expanded,
                max_depth=vote_stats.max_depth,
                violations=len(vote_violations),
            )
        if config.stop_on_first and report.violations:
            break
    if telemetry.enabled():
        for kind, value in report.stats.to_dict().items():
            if isinstance(value, bool):
                continue
            telemetry.count(
                "mc_states_total",
                value,
                help="model-checker search counters, by kind",
                kind=kind,
            )
        for record in report.violations:
            telemetry.count(
                "mc_violations_total",
                help="model-checker safety violations, by property set",
                properties=",".join(record.properties),
            )
    return report


def render_explore_summary(report: ExploreReport) -> str:
    """A short human-readable digest of one exploration."""
    stats = report.stats
    config = report.config
    lines = [
        f"mc explore: {config.program} n={config.n} t={config.t} "
        f"K={config.K} (cycles<={config.max_cycles}, "
        f"crashes<={config.crash_budget}, late<={config.max_late}, "
        f"delay<={config.delay_budget}, "
        f"por={'on' if config.por else 'off'})",
        f"  vote vectors swept: {len(report.per_votes)}",
        f"  states visited:  {stats.states_visited} "
        f"(expanded {stats.states_expanded}, "
        f"deduped {stats.states_deduped}, "
        f"sleep-pruned {stats.pruned_sleep})",
        f"  leaves: {stats.terminal_states} terminal / "
        f"{stats.bounded_leaves} bounded; max depth {stats.max_depth}",
    ]
    if stats.truncated:
        lines.append(
            f"  TRUNCATED: the max_states valve "
            f"({config.max_states}) fired — NOT exhaustive"
        )
    if report.violations:
        classes = sorted(violation_classes(report.violations))
        lines.append(
            f"  verdict: VIOLATIONS FOUND — {len(report.violations)} "
            f"violating path(s), classes: "
            f"{['+'.join(c) for c in classes]}"
        )
        first = report.violations[0]
        lines.append(
            f"  first: votes={list(first.votes)} "
            f"properties={list(first.properties)} "
            f"schedule length {len(first.schedule)}"
        )
    else:
        scope = "exhaustively" if report.exhaustive else "partially (truncated)"
        lines.append(
            f"  verdict: SAFE — bounded space covered {scope}, "
            f"0 violations"
        )
    return "\n".join(lines)
