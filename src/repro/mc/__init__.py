"""Bounded exhaustive model checking of the commit protocols.

The fault campaigns sample random schedules; this package *enumerates*
them.  Within explicit bounds (per-processor cycles, crash budget, late
messages, delay budget) the explorer drives the deterministic sim track
through every adversary choice — which processor steps next, which
buffered envelopes it receives, where crashes land — deduplicates
states by canonical fingerprint, prunes commuting interleavings with
sleep-set partial-order reduction, and checks every safety property
from :mod:`repro.faults.safety` at every state.

Violating paths are emitted as scripted-adversary
:class:`~repro.faults.campaign.TrialCase` artifacts, so the existing
``repro faults replay`` / ``repro faults shrink`` pipeline consumes
model-checker counterexamples unchanged.  See ``docs/MODELCHECK.md``.
"""

from repro.mc.artifacts import (
    case_from_violation,
    write_violation_artifact,
    write_violation_artifacts,
)
from repro.mc.config import MCConfig
from repro.mc.explorer import (
    ExploreReport,
    ExploreStats,
    ViolationRecord,
    explore,
    render_explore_summary,
    violation_classes,
)
from repro.mc.fingerprint import canonical_state, state_digest
from repro.mc.presets import CERTIFY_PRESETS, render_certify_summary, run_certify

__all__ = [
    "CERTIFY_PRESETS",
    "ExploreReport",
    "ExploreStats",
    "MCConfig",
    "ViolationRecord",
    "canonical_state",
    "case_from_violation",
    "explore",
    "render_certify_summary",
    "render_explore_summary",
    "run_certify",
    "state_digest",
    "violation_classes",
    "write_violation_artifact",
    "write_violation_artifacts",
]
