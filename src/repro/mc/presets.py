"""Certify presets: canned verification runs with a pass/fail verdict.

``repro mc certify --preset small-commit`` is the checker's one-command
self-proof.  It must demonstrate *both* directions on the smallest
interesting instance (n=3, t=1):

* **protocol-2-safe** — the paper's Protocol 2 survives a bounded
  exhaustive sweep (every vote vector, every crash/withholding schedule
  within the bounds) with zero safety violations, once with sleep-set
  reduction and once without.  Both arrival counts are recorded and the
  phase additionally fails if reduction did not visit strictly fewer
  states — the reduction claim is continuously re-proved, not assumed.
* **planted-bug-found** — the ``broken-commit`` fixture (premature
  decision on timeout) is caught deterministically within the *same*
  bounds, and the first counterexample's scheduled
  :class:`~repro.faults.campaign.TrialCase` re-violates safety when
  executed through the ordinary campaign path — the checker's word is
  checked against the pipeline it feeds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.errors import ConfigurationError
from repro.faults.campaign import execute_trial_case
from repro.mc.config import MCConfig
from repro.mc.explorer import explore, violation_classes

#: Schema tag of the certify report document.
CERTIFY_SCHEMA = "repro.mc-certify v1"


@dataclass(frozen=True)
class CertifyPreset:
    """One canned certification: a safe config and a buggy twin."""

    name: str
    description: str
    safe_config: MCConfig
    bug_config: MCConfig


_SMALL = dict(
    n=3,
    t=1,
    K=2,
    max_cycles=10,
    crash_budget=1,
    delay_budget=0,
    max_late=0,
    order="rr",
)

CERTIFY_PRESETS: dict[str, CertifyPreset] = {
    "small-commit": CertifyPreset(
        name="small-commit",
        description=(
            "n=3 t=1 K=2: Protocol 2 exhaustively safe under one crash "
            "and crash-loss withholding; broken-commit caught"
        ),
        safe_config=MCConfig(program="commit", **_SMALL),
        bug_config=MCConfig(
            program="broken-commit", stop_on_first=True, **_SMALL
        ),
    ),
}


def _phase(name: str, passed: bool, detail: dict[str, Any]) -> dict[str, Any]:
    return {"phase": name, "passed": passed, **detail}


def _certify_safe(
    preset: CertifyPreset, workers: int | None
) -> dict[str, Any]:
    config = preset.safe_config
    reduced = explore(config, workers=workers)
    baseline = explore(
        MCConfig.from_dict({**config.to_dict(), "por": False}),
        workers=workers,
    )
    por_arrivals = reduced.stats.states_visited
    base_arrivals = baseline.stats.states_visited
    passed = (
        not reduced.violations
        and not baseline.violations
        and reduced.exhaustive
        and baseline.exhaustive
        and por_arrivals < base_arrivals
    )
    return _phase(
        "protocol-2-safe",
        passed,
        {
            "violations": len(reduced.violations),
            "violations_unreduced": len(baseline.violations),
            "exhaustive": reduced.exhaustive and baseline.exhaustive,
            "states_visited_por": por_arrivals,
            "states_visited_baseline": base_arrivals,
            "sleep_pruned": reduced.stats.pruned_sleep,
            "reduction_effective": por_arrivals < base_arrivals,
        },
    )


def _certify_bug(
    preset: CertifyPreset, workers: int | None
) -> dict[str, Any]:
    report = explore(preset.bug_config, workers=workers)
    found = bool(report.violations)
    replay_violates = False
    first_properties: list[str] = []
    schedule_length = 0
    if found:
        # Local import: artifacts imports campaign which is heavier than
        # the explorer needs; only the bug phase pays for it.
        from repro.mc.artifacts import case_from_violation

        record = min(
            report.violations, key=lambda v: len(v.schedule)
        )
        first_properties = list(record.properties)
        schedule_length = len(record.schedule)
        case = case_from_violation(preset.bug_config, record)
        result = execute_trial_case(case)
        replay_violates = any(
            v["property"] != "nonblocking"
            for v in result["tracks"]["sim"]["safety"]["violations"]
        )
    return _phase(
        "planted-bug-found",
        found and replay_violates,
        {
            "violations": len(report.violations),
            "classes": sorted(
                "+".join(c) for c in violation_classes(report.violations)
            ),
            "example_properties": first_properties,
            "example_schedule_length": schedule_length,
            "replay_violates": replay_violates,
        },
    )


def run_certify(name: str, workers: int | None = None) -> dict[str, Any]:
    """Run one preset end to end; ``passed`` is the overall verdict."""
    preset = CERTIFY_PRESETS.get(name)
    if preset is None:
        raise ConfigurationError(
            f"unknown certify preset {name!r}; "
            f"choose from {sorted(CERTIFY_PRESETS)}"
        )
    phases = [
        _certify_safe(preset, workers),
        _certify_bug(preset, workers),
    ]
    return {
        "schema": CERTIFY_SCHEMA,
        "preset": preset.name,
        "description": preset.description,
        "config": preset.safe_config.to_dict(),
        "phases": phases,
        "passed": all(p["passed"] for p in phases),
    }


def render_certify_summary(report: dict[str, Any]) -> str:
    """A short human-readable digest of one certification."""
    lines = [
        f"mc certify [{report['preset']}]: {report['description']}",
    ]
    for phase in report["phases"]:
        verdict = "PASS" if phase["passed"] else "FAIL"
        lines.append(f"  {phase['phase']}: {verdict}")
        if phase["phase"] == "protocol-2-safe":
            lines.append(
                f"    violations: {phase['violations']} (reduced) / "
                f"{phase['violations_unreduced']} (unreduced); "
                f"exhaustive: {phase['exhaustive']}"
            )
            lines.append(
                f"    states visited: {phase['states_visited_por']} with "
                f"reduction vs {phase['states_visited_baseline']} without "
                f"({phase['sleep_pruned']} transitions slept)"
            )
        else:
            lines.append(
                f"    violations: {phase['violations']}; classes: "
                f"{phase['classes']}; replay re-violates: "
                f"{phase['replay_violates']}"
            )
    lines.append(
        f"  verdict: {'CERTIFIED' if report['passed'] else 'FAILED'}"
    )
    return "\n".join(lines)
