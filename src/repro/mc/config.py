"""Model-checker configuration: the bounds that make exploration finite.

The paper's claims quantify over *all* admissible runs; a bounded
checker explores the finite fragment cut out by four knobs:

* ``max_cycles`` — no processor takes more than this many steps (the
  paper's clock, bounded);
* ``crash_budget`` — at most this many fail-stop crashes are injected;
* ``delay_budget`` — total number of (step, withheld guaranteed
  envelope) pairs the adversary may buy.  With 0, every pending
  guaranteed envelope is delivered whenever its recipient steps —
  lateness then only arises from scheduling order (starvation) or from
  non-guaranteed envelopes, which a crashed sender's final-step
  messages are and which may be withheld for free (the paper's crash
  semantics);
* ``max_late`` — at most this many distinct guaranteed envelopes are
  ever withheld;
* ``max_skew`` — no running processor's clock may lead the slowest
  running processor's by this much or more (``None`` = unbounded).
  Relative-speed freedom is the dominant source of interleavings, and
  the schedules it adds beyond a small skew differ only in how far one
  processor races ahead between two observations; bounding it is what
  makes deep ``free``-order exploration tractable;
* ``order`` — ``"free"`` explores every next-processor choice (the
  semantic baseline: the adversary owns the interleaving); ``"rr"``
  pins stepping to the canonical slowest-first round-robin and leaves
  the adversary only crash points and delivery subsets.  ``"rr"`` is a
  *reduction with an assumption*: it covers schedule effects that can
  be expressed through delivery timing and crash placement, not
  relative-speed races — the trade is spelled out in
  ``docs/MODELCHECK.md``.  ``"rr"`` is the default because ``"free"``
  interleaving grows roughly twentyfold per protocol cycle and is only
  practical for shallow bounds (pair it with ``max_skew``).

Exhaustiveness claims are always relative to these bounds; the
semantics of each is documented in ``docs/MODELCHECK.md``.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Any

from repro.errors import ConfigurationError
from repro.faults.variants import resolve_variant


@dataclass(frozen=True)
class MCConfig:
    """One bounded-exhaustive exploration, fully pinned.

    Attributes:
        n: number of processors.
        t: the protocol instance's fault budget.
        K: the protocols' on-time bound.
        program: protocol variant from
            :data:`repro.faults.variants.PROGRAM_VARIANTS`.
        votes: one vote vector to check, or ``None`` to sweep all
            ``2**n`` vectors.
        seed: random-tape seed of every explored run (the protocols
            under test are deterministic given the tape, so one seed
            suffices; exploration quantifies over the adversary).
        max_cycles: per-processor step bound.
        crash_budget: fail-stop crashes available to the adversary.
        delay_budget: total withholding steps for guaranteed envelopes.
        max_late: distinct guaranteed envelopes that may ever be
            withheld.
        max_skew: cap on any running processor's clock lead over the
            slowest running processor (``None`` = unbounded).
        order: ``"free"`` (adversary picks the next processor) or
            ``"rr"`` (canonical slowest-first round-robin stepping).
        por: enable sleep-set partial-order reduction.
        split_depth: DFS depth at which the tree is cut into
            independent engine jobs.  Fixed per config — never derived
            from the worker count — so reports are byte-identical at
            any parallelism.
        max_states: per-job arrival valve; exploration marks itself
            ``truncated`` instead of running away.
        stop_on_first: stop sweeping further vote vectors (and cut each
            subtree's DFS) once a violation is recorded.
        artifact_max_steps: ``max_steps`` stamped into emitted
            :class:`~repro.faults.campaign.TrialCase` artifacts.
        model: timing model from the :mod:`repro.models` zoo.  The
            default ``"realistic"`` explores the paper's adversary;
            other models install a choice classifier
            (:mod:`repro.models.mcfilter`) that restricts or forces
            delivery choices to the model's semantics.  Non-realistic
            models require ``por=False`` — the sleep-set independence
            relation is proved against realistic semantics only.
    """

    n: int = 3
    t: int = 1
    K: int = 2
    program: str = "commit"
    votes: tuple[int, ...] | None = None
    seed: int = 0
    max_cycles: int = 10
    crash_budget: int = 1
    delay_budget: int = 0
    max_late: int = 0
    max_skew: int | None = None
    order: str = "rr"
    por: bool = True
    split_depth: int = 1
    max_states: int = 2_000_000
    stop_on_first: bool = False
    artifact_max_steps: int = 20_000
    model: str = "realistic"

    def __post_init__(self) -> None:
        if self.n < 2:
            raise ConfigurationError(f"model checking needs n >= 2, got {self.n}")
        if not 0 <= self.t < self.n:
            raise ConfigurationError(
                f"t must satisfy 0 <= t < n, got t={self.t}, n={self.n}"
            )
        if self.K < 1:
            raise ConfigurationError(f"K must be >= 1, got {self.K}")
        if self.max_cycles < 1:
            raise ConfigurationError(
                f"max_cycles must be >= 1, got {self.max_cycles}"
            )
        if self.crash_budget < 0 or self.crash_budget >= self.n:
            raise ConfigurationError(
                f"crash_budget must be in [0, n), got {self.crash_budget}"
            )
        if self.delay_budget < 0:
            raise ConfigurationError(
                f"delay_budget must be >= 0, got {self.delay_budget}"
            )
        if self.max_late < 0:
            raise ConfigurationError(
                f"max_late must be >= 0, got {self.max_late}"
            )
        if self.max_skew is not None and self.max_skew < 1:
            raise ConfigurationError(
                f"max_skew must be >= 1 (or None for unbounded), "
                f"got {self.max_skew}"
            )
        if self.order not in ("free", "rr"):
            raise ConfigurationError(
                f"order must be 'free' or 'rr', got {self.order!r}"
            )
        if self.split_depth < 0:
            raise ConfigurationError(
                f"split_depth must be >= 0, got {self.split_depth}"
            )
        if self.max_states < 1:
            raise ConfigurationError(
                f"max_states must be >= 1, got {self.max_states}"
            )
        if self.votes is not None and len(self.votes) != self.n:
            raise ConfigurationError(
                f"need one vote per processor: n={self.n}, "
                f"got {len(self.votes)} votes"
            )
        resolve_variant(self.program)
        from repro.models import resolve_model

        timing = resolve_model(self.model)
        if self.model != "realistic":
            if not timing.mc_supported:
                raise ConfigurationError(
                    f"timing model {self.model!r} has no model-checker "
                    "semantics"
                )
            if self.por:
                raise ConfigurationError(
                    f"timing model {self.model!r} requires por=False "
                    "(pass --no-por): the sleep-set independence "
                    "relation is proved for the realistic model only"
                )

    @property
    def max_depth_bound(self) -> int:
        """Longest possible decision path under the bounds."""
        return self.n * self.max_cycles + self.crash_budget

    def vote_vectors(self) -> tuple[tuple[int, ...], ...]:
        """The vote vectors this exploration sweeps, in fixed order."""
        if self.votes is not None:
            return (tuple(self.votes),)
        return tuple(product((0, 1), repeat=self.n))

    def to_dict(self) -> dict[str, Any]:
        doc = {
            "n": self.n,
            "t": self.t,
            "K": self.K,
            "program": self.program,
            "votes": list(self.votes) if self.votes is not None else None,
            "seed": self.seed,
            "max_cycles": self.max_cycles,
            "crash_budget": self.crash_budget,
            "delay_budget": self.delay_budget,
            "max_late": self.max_late,
            "max_skew": self.max_skew,
            "order": self.order,
            "por": self.por,
            "split_depth": self.split_depth,
            "max_states": self.max_states,
            "stop_on_first": self.stop_on_first,
            "artifact_max_steps": self.artifact_max_steps,
        }
        # Emitted only when set so pre-zoo reports stay byte-identical.
        if self.model != "realistic":
            doc["model"] = self.model
        return doc

    @classmethod
    def from_dict(cls, doc: dict[str, Any]) -> "MCConfig":
        votes = doc.get("votes")
        return cls(
            n=doc["n"],
            t=doc["t"],
            K=doc["K"],
            program=doc["program"],
            votes=tuple(votes) if votes is not None else None,
            seed=doc["seed"],
            max_cycles=doc["max_cycles"],
            crash_budget=doc["crash_budget"],
            delay_budget=doc["delay_budget"],
            max_late=doc["max_late"],
            max_skew=doc.get("max_skew"),
            order=doc.get("order", "free"),
            por=doc["por"],
            split_depth=doc["split_depth"],
            max_states=doc["max_states"],
            stop_on_first=doc["stop_on_first"],
            artifact_max_steps=doc["artifact_max_steps"],
            model=doc.get("model", "realistic"),
        )
