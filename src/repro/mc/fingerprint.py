"""Canonical state fingerprinting for visited-set deduplication.

Two explored prefixes reach *the same state* exactly when no program
can ever behave differently from here on.  A program's future depends
only on its generator position plus what it can still observe: its
bulletin board (in receipt order — protocols read ``by_key(...)[0]``),
its clock, and its random tape.  The generator position is itself a
deterministic function of (program, board-with-receive-clocks, clock),
and the tape position equals the clock with the seed fixed per
exploration, so neither needs to be captured separately.  The
fingerprint therefore records, per processor:

* lifecycle status, clock, and decision;
* the board, in receipt order, as ``(sender, payload, receive_clock)``;
* the pending buffer as ``(sender, send_clock, payloads, guaranteed)``,
  **sorted** — message ids and send-event indices are *excluded*
  because they vary across commuting interleavings while
  ``(sender, send_clock)`` already identifies an envelope uniquely
  within one recipient's buffer (a sender emits at most one envelope
  per recipient per step).

Sorting the buffers abstracts the *relative order* of a step's
simultaneous deliveries away: the registered protocol variants consume
messages as per-key multisets (identical GO payloads; count- and
set-based vote and agreement handling), so permuting same-step
deliveries from distinct senders cannot change any future behaviour.
This is the checker's one protocol assumption — exhaustiveness is
claimed *up to same-step delivery-order symmetry* — and it is stated,
with the per-variant justification, in ``docs/MODELCHECK.md``.  The
abstraction errs toward completeness only: a reported counterexample is
always a concrete replayable schedule.

The adversary's remaining budgets (delay spent, late-envelope set) are
folded into the digest so a state reached with less budget left is not
mistaken for one with more.
"""

from __future__ import annotations

import hashlib

from repro.sim.scheduler import Simulation

#: Late-envelope key: ``(sender, send_clock, recipient)``.
LateKey = tuple[int, int, int]


def canonical_state(sim: Simulation) -> tuple:
    """The observable state of one simulation, as a canonical tuple.

    Injective on everything a protocol can ever observe: boards,
    decisions, clocks, statuses (hence the crash set), and pending
    buffers.  See the module docstring for what is deliberately
    abstracted away.
    """
    per_pid = []
    for pid in range(sim.n):
        proc = sim.processes[pid]
        board = tuple(
            (entry.sender, repr(entry.payload), entry.receive_clock)
            for entry in proc.board.entries()
        )
        pending = sorted(
            (
                env.sender,
                env.send_clock,
                tuple(repr(p) for p in env.payloads),
                env.guaranteed,
            )
            for env in sim.buffers[pid]
        )
        per_pid.append(
            (
                proc.status.name,
                proc.clock,
                proc.decision,
                board,
                tuple(pending),
            )
        )
    return tuple(per_pid)


def state_digest(
    sim: Simulation,
    delay_spent: int = 0,
    late_keys: frozenset[LateKey] = frozenset(),
) -> bytes:
    """A 16-byte digest of the canonical state plus remaining budgets."""
    payload = repr(
        (canonical_state(sim), delay_spent, tuple(sorted(late_keys)))
    )
    return hashlib.blake2b(payload.encode(), digest_size=16).digest()
