"""Adversary choice-point enumeration and the independence relation.

At every explored state the adversary owns three kinds of choice:

* **crash** a running processor (while the crash budget lasts);
* **step** a running processor below the cycle bound, delivering any
  budget-feasible subset of its pending envelopes.  Withholding a
  *guaranteed* envelope costs one unit of delay budget per step and
  permanently marks the envelope late (bounded by ``max_late``);
  withholding a *non-guaranteed* envelope — one sent at a crashed
  sender's final step — is free, exactly the paper's crash semantics.

Enumeration order is deterministic (crashes by pid, then steps by pid
with the withheld set growing from empty), so exploration reports are
reproducible bit for bit.

The independence relation drives sleep-set partial-order reduction and
is deliberately conservative: two transitions are declared independent
only when executing them in either order provably reaches the same
canonical state *and* consumes the same budgets, and when neither can
change the other's enabled choice set.  Concretely:

* transitions of the same processor are dependent;
* two crashes are independent (the crash set is unordered and each
  only flips guarantees of its own victim's envelopes);
* ``crash(c)`` vs ``step(p, D)`` are independent unless ``p``'s buffer
  holds any envelope from ``c`` — the crash would flip the guarantee
  of ``c``'s final-step envelopes, changing what the step may withhold
  for free.  The step *sending to* ``c`` is harmless: the scheduler
  enqueues to crashed recipients unchanged, and a crash only flips
  envelopes that are still pending *from* its victim;
* two steps are independent when neither sends to the other and at
  most one of them spends delay budget (two spenders race for the same
  global budget, which changes the other's feasible subsets).  Sends
  to a *common* recipient commute under the same-step delivery-order
  symmetry the fingerprint abstracts over (see
  :mod:`repro.mc.fingerprint`): either order leaves the recipient's
  buffer holding the same envelope set, which is the same canonical
  state.

Independence is judged against canonical states, so "commute" means
"reach fingerprint-equal states" — exactly the equivalence the visited
set deduplicates by.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

from repro.mc.config import MCConfig
from repro.mc.fingerprint import LateKey
from repro.models import mcfilter
from repro.sim.decisions import CrashDecision, Decision, StepDecision
from repro.sim.scheduler import Simulation
from repro.types import ProcessStatus

#: Canonical descriptor of a transition, stable across commuting
#: reorderings: ``("crash", pid)`` or ``("step", pid, frozenset of
#: (sender, send_clock) delivered)``.
TransitionKey = tuple


@dataclass(frozen=True)
class Choice:
    """One enabled adversary transition at a concrete state.

    Attributes:
        decision: the scheduler decision realising the transition.
        key: canonical :data:`TransitionKey` for sleep-set matching.
        cost: delay budget consumed (guaranteed envelopes withheld).
        late_marks: late keys newly charged by this transition.
        touched_senders: senders of *all* envelopes pending for the
            stepped processor (delivered and withheld) — the crash
            victims whose guarantee flips would change this step.
    """

    decision: Decision
    key: TransitionKey
    cost: int = 0
    late_marks: frozenset[LateKey] = frozenset()
    touched_senders: frozenset[int] = frozenset()


@dataclass(frozen=True)
class TransitionInfo:
    """What a transition did, recorded at its first execution.

    Valid for the whole subtree in which the transition sleeps: any
    dependent transition wakes it, so its buffer view, sends, and cost
    cannot drift while it stays asleep.
    """

    kind: str
    pid: int
    key: TransitionKey
    sends: frozenset[int]
    touched_senders: frozenset[int]
    spends_budget: bool


def independent(a: TransitionInfo, b: TransitionInfo) -> bool:
    """Whether two transitions commute (see the module docstring)."""
    if a.pid == b.pid:
        return False
    if a.kind == "crash" and b.kind == "crash":
        return True
    if a.kind == "crash":
        return _crash_step_independent(a.pid, b)
    if b.kind == "crash":
        return _crash_step_independent(b.pid, a)
    if a.pid in b.sends or b.pid in a.sends:
        return False
    if a.spends_budget and b.spends_budget:
        return False
    return True


def _crash_step_independent(victim: int, step: TransitionInfo) -> bool:
    return victim != step.pid and victim not in step.touched_senders


def enumerate_choices(
    sim: Simulation,
    config: MCConfig,
    delay_spent: int,
    late_keys: frozenset[LateKey],
) -> list[Choice]:
    """All enabled transitions at ``sim``'s state, in canonical order.

    Crashes target RUNNING processors only: crashing a processor whose
    program already returned cannot change its (absorbing) decision,
    and in the paper's model the messages of a processor's final
    *sending* step are exactly what a crash un-guarantees — a bound
    restriction documented in ``docs/MODELCHECK.md``.  Steps likewise
    target RUNNING processors: a returned processor's steps only
    absorb messages and can never influence any decision.

    The skew bound never interacts unsoundly with sleep sets: a step
    or crash can only *raise* the slowest running clock, so executing
    one transition can enable a skew-blocked step but never disable an
    enabled one — a sleeping (hence enabled) transition stays enabled
    for as long as it sleeps.
    """
    choices: list[Choice] = []
    running = [
        pid
        for pid in range(sim.n)
        if sim.processes[pid].status is ProcessStatus.RUNNING
    ]
    if len(sim.crashed_frozen()) < config.crash_budget:
        for pid in running:
            choices.append(
                Choice(decision=CrashDecision(pid=pid), key=("crash", pid))
            )
    budget_left = config.delay_budget - delay_spent
    slowest = min(
        (sim.processes[pid].clock for pid in running), default=0
    )
    if config.order == "rr" and running:
        # Canonical slowest-first round-robin: only the slowest running
        # processor (ties to the lowest pid) may step.  Self-correcting
        # across crashes — the round simply shrinks to the survivors.
        steppers = [
            min(running, key=lambda p: (sim.processes[p].clock, p))
        ]
    else:
        steppers = running
    classifier = mcfilter.classifier_for(config)
    for pid in steppers:
        if sim.processes[pid].clock >= config.max_cycles:
            continue
        if (
            config.max_skew is not None
            and sim.processes[pid].clock - slowest >= config.max_skew
        ):
            continue
        pending = list(sim.buffers[pid])
        touched = frozenset(env.sender for env in pending)
        if classifier is not None:
            choices.extend(
                _classified_steps(
                    classifier,
                    sim,
                    config,
                    pid,
                    pending,
                    touched,
                    budget_left,
                    late_keys,
                )
            )
            continue
        guaranteed = [i for i, env in enumerate(pending) if env.guaranteed]
        free = [i for i, env in enumerate(pending) if not env.guaranteed]
        for g_count in range(min(len(guaranteed), budget_left) + 1):
            for withheld_g in combinations(guaranteed, g_count):
                marks = frozenset(
                    (pending[i].sender, pending[i].send_clock, pid)
                    for i in withheld_g
                )
                if len(late_keys | marks) > config.max_late:
                    continue
                for f_count in range(len(free) + 1):
                    for withheld_f in combinations(free, f_count):
                        withheld = set(withheld_g) | set(withheld_f)
                        delivered = [
                            env
                            for i, env in enumerate(pending)
                            if i not in withheld
                        ]
                        choices.append(
                            Choice(
                                decision=StepDecision(
                                    pid=pid,
                                    deliver=tuple(
                                        env.message_id for env in delivered
                                    ),
                                ),
                                key=(
                                    "step",
                                    pid,
                                    frozenset(
                                        (env.sender, env.send_clock)
                                        for env in delivered
                                    ),
                                ),
                                cost=g_count,
                                late_marks=marks,
                                touched_senders=touched,
                            )
                        )
    return choices


def _classified_steps(
    classifier,
    sim: Simulation,
    config: MCConfig,
    pid: int,
    pending: list,
    touched: frozenset[int],
    budget_left: int,
    late_keys: frozenset[LateKey],
) -> list[Choice]:
    """Step choices for ``pid`` under a timing-model classifier.

    The classifier partitions the pending buffer: ``DROP``/``DEFER``
    envelopes are forcibly withheld (no cost, no marks), ``MUST_DELIVER``
    envelopes are forcibly delivered, non-guaranteed envelopes stay
    freely withholdable (the paper's crash semantics survive every
    model), ``FREE`` envelopes are withholdable at zero delay cost but
    still charged late marks, and ``NORMAL`` envelopes keep the
    realistic cost model.  Enumeration order matches the realistic
    branch (withheld sets grow from empty) so reports are deterministic.
    """
    clock = sim.processes[pid].clock
    excluded: set[int] = set()
    normal: list[int] = []
    free_marked: list[int] = []
    free: list[int] = []
    for i, env in enumerate(pending):
        cls = classifier.classify(env, pid, clock)
        if cls in (mcfilter.DROP, mcfilter.DEFER):
            excluded.add(i)
        elif not env.guaranteed:
            free.append(i)
        elif cls == mcfilter.MUST_DELIVER:
            pass  # always delivered
        elif cls == mcfilter.FREE:
            free_marked.append(i)
        else:
            normal.append(i)
    choices: list[Choice] = []
    for g_count in range(min(len(normal), budget_left) + 1):
        for withheld_g in combinations(normal, g_count):
            for m_count in range(len(free_marked) + 1):
                for withheld_m in combinations(free_marked, m_count):
                    marks = frozenset(
                        (pending[i].sender, pending[i].send_clock, pid)
                        for i in withheld_g + withheld_m
                    )
                    if len(late_keys | marks) > config.max_late:
                        continue
                    for f_count in range(len(free) + 1):
                        for withheld_f in combinations(free, f_count):
                            withheld = (
                                set(withheld_g)
                                | set(withheld_m)
                                | set(withheld_f)
                                | excluded
                            )
                            delivered = [
                                env
                                for i, env in enumerate(pending)
                                if i not in withheld
                            ]
                            choices.append(
                                Choice(
                                    decision=StepDecision(
                                        pid=pid,
                                        deliver=tuple(
                                            env.message_id
                                            for env in delivered
                                        ),
                                    ),
                                    key=(
                                        "step",
                                        pid,
                                        frozenset(
                                            (env.sender, env.send_clock)
                                            for env in delivered
                                        ),
                                    ),
                                    cost=g_count,
                                    late_marks=marks,
                                    touched_senders=touched,
                                )
                            )
    return choices


def transition_info(choice: Choice, sim_after: Simulation) -> TransitionInfo:
    """Record a transition's observed effect right after applying it."""
    if isinstance(choice.decision, CrashDecision):
        sends: frozenset[int] = frozenset()
    else:
        entry = sim_after.pattern_entries()[-1]
        sends = frozenset(record.recipient for record in entry.sent)
    return TransitionInfo(
        kind=choice.key[0],
        pid=choice.decision.pid,
        key=choice.key,
        sends=sends,
        touched_senders=choice.touched_senders,
        spends_budget=bool(choice.cost or choice.late_marks),
    )
