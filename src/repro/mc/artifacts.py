"""Turning checker violations into counterexample-pipeline artifacts.

A :class:`~repro.mc.explorer.ViolationRecord` is a decision path; the
campaign/counterexample layers speak :class:`TrialCase`.  The bridge is
the case's ``schedule`` field: the violating path rides into the case
verbatim, ``execute_trial_case`` replays it through a
:class:`~repro.adversary.scripted.ScriptedAdversary`, and the standard
``repro faults replay`` / ``repro faults shrink`` commands work on the
emitted artifact unchanged.

Two deliberate semantic gaps between checking and replay:

* the checker flags a violation at the *first* state on the path where
  it holds, while replay runs the scripted prefix and then lets a fair
  deliver-all fallback finish the run — so the replayed run's violated
  set can be a superset of the record's (agreement and abort validity
  are absorbing, never a subset);
* commit validity is never flagged on replay (cases execute with
  ``benign=False``, matching campaign trials), so artifacts are only
  cut for agreement / abort-validity records.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any

from repro.counterexample.replay import write_artifact
from repro.faults.campaign import TrialCase, execute_trial_case
from repro.faults.plan import FaultPlan
from repro.mc.config import MCConfig
from repro.mc.explorer import ViolationRecord


def case_from_violation(
    config: MCConfig, record: ViolationRecord
) -> TrialCase:
    """The sim-only scheduled :class:`TrialCase` replaying one violation."""
    return TrialCase(
        n=config.n,
        t=config.t,
        K=config.K,
        votes=record.votes,
        plan=FaultPlan(n=config.n),
        seed=config.seed,
        tracks=("sim",),
        max_steps=config.artifact_max_steps,
        program=config.program,
        schedule=record.schedule,
    )


def write_violation_artifact(
    config: MCConfig, record: ViolationRecord, path: str | Path
) -> Path:
    """Execute one violation's case and write its replay artifact."""
    case = case_from_violation(config, record)
    result = execute_trial_case(case)
    return write_artifact(case, result, path)


def write_violation_artifacts(
    config: MCConfig,
    violations: list[ViolationRecord],
    out_dir: str | Path,
) -> list[Path]:
    """One artifact per distinct violated-property class, shortest path.

    Emitting every violating path would flood the directory with
    thousands of near-identical interleavings; one representative per
    property class (ties broken by shortest schedule, then discovery
    order) is what a human debugs and what CI replays.  File names are
    deterministic: ``mc-counterexample-<props>.jsonl``.
    """
    best: dict[tuple[str, ...], ViolationRecord] = {}
    for record in violations:
        cls = tuple(sorted(record.properties))
        kept = best.get(cls)
        if kept is None or len(record.schedule) < len(kept.schedule):
            best[cls] = record
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    written: list[Path] = []
    for cls in sorted(best):
        name = "mc-counterexample-" + "-".join(
            prop.replace("_", "") for prop in cls
        )
        written.append(
            write_violation_artifact(
                config, best[cls], out / f"{name}.jsonl"
            )
        )
    return written


def summarize_artifacts(paths: list[Path]) -> list[dict[str, Any]]:
    """Small manifest entries for rendered output and CI logs."""
    return [{"path": str(p)} for p in paths]
