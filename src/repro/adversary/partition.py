"""Partitioning adversary: delays all cross-group traffic for a while.

A transient network partition is the classic scenario in which synchronous
commit protocols with timeout actions go wrong: each side times out and
takes its termination action, and when the partition heals the two sides
may have decided differently.  In the paper's model a partition is just a
pattern of (very) late messages, so Protocol 2 must remain safe through it.
"""

from __future__ import annotations

from typing import Sequence

from repro.adversary.base import CrashAt, CycleAdversary, DeliveryPolicy


class _PartitionPolicy(DeliveryPolicy):
    """Withholds cross-group envelopes while the partition is up."""

    def __init__(
        self, groups: Sequence[frozenset[int]], start_cycle: int, heal_cycle: int
    ) -> None:
        self.groups = list(groups)
        self.start_cycle = start_cycle
        self.heal_cycle = heal_cycle

    def _group_of(self, pid: int) -> int:
        for index, group in enumerate(self.groups):
            if pid in group:
                return index
        return -1

    def select(self, view, pid, pending, ctx):
        chosen = []
        for message in pending:
            if ctx.age_in_cycles(message) < 1:
                continue
            crosses = self._group_of(message.sender) != self._group_of(pid)
            partition_up = self.start_cycle <= ctx.cycle < self.heal_cycle
            if crosses and partition_up:
                continue
            chosen.append(message.message_id)
        return tuple(chosen)


class PartitionAdversary(CycleAdversary):
    """Splits the processors into groups and blocks cross-traffic.

    Args:
        groups: disjoint processor groups; unlisted processors form an
            implicit extra group.
        start_cycle: cycle at which the partition comes up.
        heal_cycle: cycle at which it heals (all held traffic becomes
            deliverable again).  With ``heal_cycle - start_cycle > K`` the
            held messages are late, so healed runs are not on time and
            Protocol 2 is free to abort — but must stay consistent.
    """

    def __init__(
        self,
        groups: Sequence[set[int]],
        start_cycle: int = 0,
        heal_cycle: int = 10**9,
        seed: int = 0,
        crash_plan: Sequence[CrashAt] = (),
    ) -> None:
        if heal_cycle < start_cycle:
            raise ValueError(
                f"heal_cycle {heal_cycle} before start_cycle {start_cycle}"
            )
        frozen = [frozenset(g) for g in groups]
        seen: set[int] = set()
        for group in frozen:
            if group & seen:
                raise ValueError("partition groups must be disjoint")
            seen |= group
        super().__init__(
            seed=seed,
            delivery=_PartitionPolicy(frozen, start_cycle, heal_cycle),
            crash_plan=crash_plan,
        )
