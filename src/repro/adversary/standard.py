"""The standard adversary roster: well-behaved and delaying schedulers.

These are the bread-and-butter adversaries of the experiments:

* :class:`SynchronousAdversary` — lockstep cycles, everything delivered at
  the recipient's next step.  Failure-free and on-time: the schedule under
  which commit validity must force commit.
* :class:`OnTimeAdversary` — random delivery delays bounded by ``K``
  cycles, so runs stay on time while exercising real asynchrony.
* :class:`LateMessageAdversary` — a fraction of messages is held past
  ``K`` cycles, producing late messages.  Protocol 2 must stay safe (it may
  abort); the synchronous baselines of [S]/[DS] may produce wrong answers.
"""

from __future__ import annotations

from typing import Sequence

from repro.adversary.base import (
    CrashAt,
    CycleAdversary,
    DelayCycles,
    DeliveryPolicy,
)
from repro.sim.message import MessageId
from repro.sim.pattern import PendingMessage


class SynchronousAdversary(CycleAdversary):
    """Round-robin, deliver-at-next-step.  On time for any ``K >= 1``."""

    def __init__(self, seed: int = 0, crash_plan: Sequence[CrashAt] = ()) -> None:
        super().__init__(seed=seed, crash_plan=crash_plan)


class OnTimeAdversary(CycleAdversary):
    """Random per-message delays of 1..max_delay cycles, all on time.

    A message held ``d`` cycles can have a processor take ``d + 1`` steps
    between its send and its receive (one step in the send cycle after
    the send event, plus one per held cycle), so staying on time requires
    ``d <= K - 1``.

    Args:
        K: the model's on-time bound; must be at least 2 (the paper
            assumes ``K > 1`` — with ``K = 1`` "messages would always be
            late" and the model degenerates to [FLP]).
        max_delay: optional cap below the default ``K - 1``.
    """

    def __init__(
        self,
        K: int,
        seed: int = 0,
        max_delay: int | None = None,
        crash_plan: Sequence[CrashAt] = (),
    ) -> None:
        if K < 2:
            raise ValueError(
                f"OnTimeAdversary needs K >= 2 to have room for on-time "
                f"jitter, got K={K}"
            )
        cap = K - 1 if max_delay is None else max_delay
        if cap > K - 1:
            raise ValueError(
                f"max_delay {cap} exceeds K-1={K - 1}; use "
                f"LateMessageAdversary to inject late messages deliberately"
            )
        super().__init__(
            seed=seed,
            delivery=DelayCycles(min_cycles=1, max_cycles=max(1, cap)),
            crash_plan=crash_plan,
        )


class _SpikeDelays(DeliveryPolicy):
    """Mostly-prompt delivery with occasional long holds.

    Each message is late with probability ``late_probability``; late
    messages wait ``late_delay`` cycles, others are delivered next cycle.
    Optionally only messages from ``target_senders`` are eligible to be
    late, which lets experiments aim the misbehaviour at, e.g., the
    coordinator's decision fan-out in 2PC.
    """

    def __init__(
        self,
        late_probability: float,
        late_delay: int,
        target_senders: set[int] | None,
    ) -> None:
        if not 0.0 <= late_probability <= 1.0:
            raise ValueError(f"probability out of range: {late_probability}")
        self.late_probability = late_probability
        self.late_delay = late_delay
        self.target_senders = target_senders
        self._assigned: dict[MessageId, int] = {}

    def _delay_for(self, message: PendingMessage, ctx) -> int:
        if message.message_id not in self._assigned:
            eligible = (
                self.target_senders is None
                or message.sender in self.target_senders
            )
            if eligible and ctx.rng.random() < self.late_probability:
                delay = self.late_delay
            else:
                delay = 1
            self._assigned[message.message_id] = delay
        return self._assigned[message.message_id]

    def select(self, view, pid, pending, ctx):
        return tuple(
            m.message_id
            for m in pending
            if ctx.age_in_cycles(m) >= self._delay_for(m, ctx)
        )


class LateMessageAdversary(CycleAdversary):
    """Injects late messages: some deliveries are held past ``K`` cycles.

    Args:
        K: the on-time bound being violated.
        late_probability: chance each (eligible) message is made late.
        lateness_factor: late messages wait ``lateness_factor * K`` cycles.
        target_senders: restrict lateness to messages from these senders.
    """

    def __init__(
        self,
        K: int,
        seed: int = 0,
        late_probability: float = 0.1,
        lateness_factor: int = 3,
        target_senders: set[int] | None = None,
        crash_plan: Sequence[CrashAt] = (),
    ) -> None:
        if lateness_factor < 2:
            raise ValueError(
                "lateness_factor must be at least 2 so held messages are "
                "unambiguously late"
            )
        super().__init__(
            seed=seed,
            delivery=_SpikeDelays(
                late_probability=late_probability,
                late_delay=lateness_factor * K,
                target_senders=target_senders,
            ),
            crash_plan=crash_plan,
        )
