"""A pattern-based anti-convergence adversary.

Ben-Or-family protocols converge when enough processors see the *same*
first-phase messages.  This adversary tries to prevent that using pattern
information only (it never sees values): it splits the processors into two
camps and, whenever a processor steps, delivers preferentially the oldest
messages *from its own camp*, holding cross-camp traffic as long as
fairness allows.  Against Ben-Or with local coins this sustains divergent
views; against Protocol 1 the shared coin list defeats it — the adversary
must fix the delivery pattern of a stage before the (hidden) coin for that
stage is consumed, which is exactly the paper's argument for constant
expected stages.

The hold window is bounded (``hold_cycles``) so the adversary stays fair
and admissible: guaranteed messages are delivered within a bounded number
of cycles, merely as late as the window allows.
"""

from __future__ import annotations

from repro.adversary.base import CycleAdversary, DeliveryPolicy


class _CampPolicy(DeliveryPolicy):
    """Prompt same-camp delivery, held cross-camp delivery."""

    def __init__(self, camp_of: dict[int, int], hold_cycles: int) -> None:
        self.camp_of = camp_of
        self.hold_cycles = hold_cycles

    def select(self, view, pid, pending, ctx):
        chosen = []
        for message in pending:
            age = ctx.age_in_cycles(message)
            same_camp = self.camp_of.get(message.sender) == self.camp_of.get(pid)
            threshold = 1 if same_camp else self.hold_cycles
            if age >= threshold:
                chosen.append(message.message_id)
        return tuple(chosen)


class SplitVoteAdversary(CycleAdversary):
    """Camps the processors and skews each camp's view of the other.

    Args:
        n: number of processors.
        hold_cycles: how many cycles cross-camp messages are held.  Values
            above ``K`` also make those messages late.
    """

    def __init__(self, n: int, hold_cycles: int = 2, seed: int = 0) -> None:
        if hold_cycles < 1:
            raise ValueError(f"hold_cycles must be >= 1, got {hold_cycles}")
        camp_of = {pid: (0 if pid < (n + 1) // 2 else 1) for pid in range(n)}
        super().__init__(
            seed=seed, delivery=_CampPolicy(camp_of, hold_cycles)
        )
        self.camp_of = camp_of
        self.hold_cycles = hold_cycles
