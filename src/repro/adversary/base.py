"""Adversary base classes and composable scheduling policies.

The paper's adversary (Section 2.3) decides, from the message pattern
alone, which processor steps next, which pending messages it receives, and
which processors crash and when.  All compliant adversaries here consume
only the :class:`~repro.sim.pattern.PatternView`; the one deliberately
non-compliant adversary (:mod:`repro.adversary.omniscient`) is flagged via
:attr:`Adversary.model_compliant`.

Most interesting adversaries share a skeleton: step the alive processors in
round-robin *cycles* (the lower-bound sections of the paper use the same
cycle structure) and choose deliveries per-step through a
:class:`DeliveryPolicy`.  :class:`CycleAdversary` implements that skeleton;
concrete adversaries are mostly policy/plan combinations.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Sequence

from repro.sim.decisions import CrashDecision, Decision, StepDecision
from repro.sim.message import MessageId
from repro.sim.pattern import PatternView, PendingMessage


class Adversary:
    """Base class for schedulers of steps, deliveries, and crashes.

    Attributes:
        model_compliant: true when the adversary uses only pattern
            information, as the paper's model demands.  Content-aware
            adversaries (outside the model, used to demonstrate *why* the
            secrecy assumption matters) set this to false.
    """

    model_compliant: bool = True

    def __init__(self, seed: int = 0) -> None:
        self.rng = random.Random(seed)

    def decide(self, view: PatternView) -> Decision:
        """Choose the next event.  Subclasses must override."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


@dataclass
class CycleContext:
    """Timing bookkeeping a :class:`DeliveryPolicy` may consult.

    Attributes:
        cycle: the current cycle number (completed round-robin sweeps).
        event_cycles: cycle number at each past event index, so a policy
            can age pending messages in cycles.  Under round-robin
            stepping, a message delivered ``d`` cycles after its send has
            every processor taking about ``d`` steps in between, so
            ``d <= K`` keeps it on time and ``d > K`` makes it late.
        rng: the adversary's private randomness.
    """

    cycle: int
    event_cycles: list[int]
    rng: random.Random

    def age_in_cycles(self, message: PendingMessage) -> int:
        """How many cycles ago the message was sent."""
        send_cycle = self.event_cycles[message.send_event]
        return self.cycle - send_cycle


class DeliveryPolicy:
    """Chooses which pending envelopes a stepping processor receives."""

    def select(
        self,
        view: PatternView,
        pid: int,
        pending: Sequence[PendingMessage],
        ctx: CycleContext,
    ) -> tuple[MessageId, ...]:
        """Return ids (subset of ``pending``) to deliver at this step."""
        raise NotImplementedError


class DeliverAll(DeliveryPolicy):
    """Deliver everything pending — the promptest possible schedule.

    Under round-robin stepping every message is received at the
    recipient's next step, so the run is on time for any ``K >= 1``.
    """

    def select(self, view, pid, pending, ctx):
        return tuple(m.message_id for m in pending)


class DelayCycles(DeliveryPolicy):
    """Hold each message for a (possibly random) number of cycles.

    Args:
        min_cycles: smallest delivery delay, in cycles.
        max_cycles: largest delivery delay; the delay for each message is
            drawn uniformly from ``[min_cycles, max_cycles]`` once, the
            first time the policy sees it, and remembered.

    A policy with ``max_cycles <= K`` produces on-time runs; values above
    ``K`` inject late messages.
    """

    def __init__(self, min_cycles: int = 1, max_cycles: int = 1) -> None:
        if min_cycles < 0 or max_cycles < min_cycles:
            raise ValueError(
                f"need 0 <= min_cycles <= max_cycles, got "
                f"({min_cycles}, {max_cycles})"
            )
        self.min_cycles = min_cycles
        self.max_cycles = max_cycles
        self._assigned: dict[MessageId, int] = {}

    def _delay_for(self, message: PendingMessage, ctx: CycleContext) -> int:
        if message.message_id not in self._assigned:
            self._assigned[message.message_id] = ctx.rng.randint(
                self.min_cycles, self.max_cycles
            )
        return self._assigned[message.message_id]

    def select(self, view, pid, pending, ctx):
        ready = []
        for message in pending:
            if ctx.age_in_cycles(message) >= self._delay_for(message, ctx):
                ready.append(message.message_id)
        return tuple(ready)


class DropNonGuaranteed(DeliveryPolicy):
    """Wrapper: never deliver non-guaranteed envelopes to chosen victims.

    Models a crash in the middle of a broadcast: the sender's final-step
    envelopes reach only the processors outside ``victims``.
    """

    def __init__(self, inner: DeliveryPolicy, victims: set[int]) -> None:
        self.inner = inner
        self.victims = set(victims)

    def select(self, view, pid, pending, ctx):
        chosen = self.inner.select(view, pid, pending, ctx)
        if pid not in self.victims:
            return chosen
        suppressed = {
            m.message_id for m in pending if not m.guaranteed
        }
        return tuple(mid for mid in chosen if mid not in suppressed)


@dataclass(frozen=True)
class CrashAt:
    """One entry of a crash plan: crash ``pid`` at the start of ``cycle``."""

    pid: int
    cycle: int


class CycleAdversary(Adversary):
    """Round-robin stepping with pluggable delivery and crash behaviour.

    Steps alive processors in ascending pid order, one *cycle* per sweep.
    Before each sweep, due crash-plan entries are executed.  Deliveries are
    chosen by the :class:`DeliveryPolicy`.

    This adversary is fair by construction (every alive processor steps
    every cycle) and, with the default :class:`DeliverAll` policy, yields
    failure-free on-time runs — the well-behaved schedule under which the
    paper's commit validity condition must force commit.
    """

    def __init__(
        self,
        seed: int = 0,
        delivery: DeliveryPolicy | None = None,
        crash_plan: Sequence[CrashAt] = (),
    ) -> None:
        super().__init__(seed)
        self.delivery = delivery if delivery is not None else DeliverAll()
        self.crash_plan = sorted(crash_plan, key=lambda c: (c.cycle, c.pid))
        self._cycle = 0
        self._queue: list[int] = []
        self._event_cycles: list[int] = []
        self._pending_crashes = list(self.crash_plan)

    @property
    def cycle(self) -> int:
        """Completed round-robin sweeps so far."""
        return self._cycle

    def _context(self) -> CycleContext:
        return CycleContext(
            cycle=self._cycle, event_cycles=self._event_cycles, rng=self.rng
        )

    def _due_crash(self, view: PatternView) -> int | None:
        """Pid of the next crash-plan entry that is due, if any."""
        while self._pending_crashes:
            entry = self._pending_crashes[0]
            if entry.cycle > self._cycle:
                return None
            self._pending_crashes.pop(0)
            if entry.pid not in view.crashed():
                return entry.pid
        return None

    def decide(self, view: PatternView) -> Decision:
        if not self._queue:
            self._cycle += 1
            self._queue = view.alive()
        crash_pid = self._due_crash(view)
        if crash_pid is not None:
            self._queue = [p for p in self._queue if p != crash_pid]
            self._note_event()
            return CrashDecision(pid=crash_pid)
        while True:
            if not self._queue:
                self._cycle += 1
                self._queue = view.alive()
            pid = self._queue.pop(0)
            if pid in view.crashed():  # crashed since queued
                continue
            break
        deliver = self.delivery.select(
            view, pid, view.pending(pid), self._context()
        )
        self._note_event()
        return StepDecision(pid=pid, deliver=deliver)

    def _note_event(self) -> None:
        """Record the cycle number of the event this decision will create."""
        self._event_cycles.append(self._cycle)

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(delivery={type(self.delivery).__name__}, "
            f"crashes={len(self.crash_plan)})"
        )
