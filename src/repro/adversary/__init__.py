"""Adversaries: schedulers of steps, message delivery, and crashes.

The paper's adversary (Section 2.3) controls the order of processor
steps, the timing of every message delivery, and which processors crash
and when — all decided dynamically from the *message pattern*, never from
message contents, local states, or coin flips.  Every adversary here
consumes only the :class:`~repro.sim.pattern.PatternView` except
:class:`~repro.adversary.omniscient.OmniscientBalancer`, which is
deliberately non-compliant (``model_compliant = False``) and exists to
demonstrate why the contents-hiding assumption matters.

Roster:

* :class:`SynchronousAdversary` — failure-free lockstep, on time.
* :class:`OnTimeAdversary` — random delays bounded by ``K``.
* :class:`LateMessageAdversary` — injects late messages.
* :class:`ScheduledCrashAdversary` / :class:`AdaptiveCrashAdversary` —
  scripted and pattern-adaptive fail-stops, including mid-broadcast.
* :class:`PartitionAdversary` — transient partitions.
* :class:`RandomAdversary` — fair random scheduling.
* :class:`SplitVoteAdversary` — pattern-based anti-convergence camps.
* :class:`OmniscientBalancer` — the content-reading balancing attack.
* :class:`ScriptedAdversary` / :class:`FunctionAdversary` — replayed and
  callable schedules, for tests and the lower-bound constructions.
* :class:`ChaosAdversary` — randomized composition of everything above,
  for safety fuzzing.
"""

from repro.adversary.base import (
    Adversary,
    CrashAt,
    CycleAdversary,
    CycleContext,
    DelayCycles,
    DeliverAll,
    DeliveryPolicy,
    DropNonGuaranteed,
)
from repro.adversary.chaos import ChaosAdversary
from repro.adversary.crash import AdaptiveCrashAdversary, ScheduledCrashAdversary
from repro.adversary.omniscient import OmniscientBalancer
from repro.adversary.partition import PartitionAdversary
from repro.adversary.random_walk import RandomAdversary
from repro.adversary.scripted import FunctionAdversary, ScriptedAdversary
from repro.adversary.splitter import SplitVoteAdversary
from repro.adversary.standard import (
    LateMessageAdversary,
    OnTimeAdversary,
    SynchronousAdversary,
)

__all__ = [
    "AdaptiveCrashAdversary",
    "Adversary",
    "ChaosAdversary",
    "CrashAt",
    "CycleAdversary",
    "CycleContext",
    "DelayCycles",
    "DeliverAll",
    "DeliveryPolicy",
    "DropNonGuaranteed",
    "FunctionAdversary",
    "LateMessageAdversary",
    "OmniscientBalancer",
    "OnTimeAdversary",
    "PartitionAdversary",
    "RandomAdversary",
    "ScheduledCrashAdversary",
    "ScriptedAdversary",
    "SplitVoteAdversary",
    "SynchronousAdversary",
]
