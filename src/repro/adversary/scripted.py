"""Scripted and function-backed adversaries, for tests and proofs.

:class:`ScriptedAdversary` replays an explicit decision list — the
executable analogue of the finite schedules manipulated in the paper's
lower-bound proofs (Sections 4 and 5), where runs are built event by
event.  :class:`FunctionAdversary` wraps a plain callable, which keeps
one-off test adversaries to a single lambda.
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.adversary.base import Adversary
from repro.errors import ConfigurationError, SchedulingError
from repro.sim.decisions import CrashDecision, Decision, StepDecision
from repro.sim.pattern import PatternView


class ScriptedAdversary(Adversary):
    """Replays a fixed, finite sequence of decisions.

    Args:
        decisions: the schedule to replay, in order.
        then: optional fallback adversary consulted once the script is
            exhausted; without one, running past the script raises
            :class:`~repro.errors.SchedulingError` (the scripted run was
            meant to be complete).
    """

    def __init__(
        self,
        decisions: Iterable[Decision],
        then: Adversary | None = None,
    ) -> None:
        super().__init__(seed=0)
        self._script = list(decisions)
        self._cursor = 0
        self._fallback = then

    @property
    def exhausted(self) -> bool:
        """Whether every scripted decision has been issued."""
        return self._cursor >= len(self._script)

    def decide(self, view: PatternView) -> Decision:
        if not self.exhausted:
            decision = self._script[self._cursor]
            self._validate(decision, view, self._cursor)
            self._cursor += 1
            return decision
        if self._fallback is not None:
            return self._fallback.decide(view)
        raise SchedulingError(
            f"scripted adversary exhausted after {len(self._script)} decisions"
        )

    @staticmethod
    def _validate(decision: Decision, view: PatternView, index: int) -> None:
        """Reject decisions the pattern cannot honour, naming the script slot.

        Emitted model-checker schedules reference concrete pids and message
        ids; a stale or hand-mangled script should fail here with the
        offending index, not deep inside the scheduler.

        Raises:
            ConfigurationError: on an unknown pid, a decision targeting an
                already-crashed processor, or delivery of message ids not
                pending for the recipient.
        """
        pid = decision.pid
        if not isinstance(pid, int) or pid < 0 or pid >= view.n:
            raise ConfigurationError(
                f"script[{index}]: unknown pid {pid!r} (n={view.n})"
            )
        if pid in view.crashed():
            what = (
                "crashes" if isinstance(decision, CrashDecision) else "steps"
            )
            raise ConfigurationError(
                f"script[{index}]: {what} pid {pid}, which already crashed"
            )
        if isinstance(decision, StepDecision) and decision.deliver:
            pending = set(view.pending_ids(pid))
            missing = [int(m) for m in decision.deliver if m not in pending]
            if missing:
                raise ConfigurationError(
                    f"script[{index}]: delivers message ids {missing} that "
                    f"are not pending for pid {pid} (out-of-range or "
                    "already-delivered message ids)"
                )


class FunctionAdversary(Adversary):
    """Wraps ``fn(view) -> Decision`` as an adversary."""

    def __init__(self, fn: Callable[[PatternView], Decision]) -> None:
        super().__init__(seed=0)
        self._fn = fn

    def decide(self, view: PatternView) -> Decision:
        return self._fn(view)
