"""Crash-injecting adversaries, scripted and adaptive.

The fail-stop model lets the adversary kill processors at any point and,
by withholding the victim's final-step envelopes from chosen recipients,
kill them *in the middle of a broadcast*.  The adaptive variants make the
kill decision from the message pattern — e.g. crash the coordinator right
after its first fan-out — which is exactly the adversary style the paper's
dynamic adversary permits.
"""

from __future__ import annotations

from typing import Sequence

from repro.adversary.base import (
    CrashAt,
    CycleAdversary,
    DeliverAll,
    DeliveryPolicy,
    DropNonGuaranteed,
)
from repro.sim.decisions import CrashDecision, Decision
from repro.sim.pattern import PatternView


class ScheduledCrashAdversary(CycleAdversary):
    """Round-robin scheduling with crashes at scripted cycles.

    Args:
        crash_plan: the cycle at which each victim fail-stops.
        partial_broadcast_victims: recipients that never receive the
            crashed processors' final-step envelopes, modelling crashes
            mid-broadcast.
    """

    def __init__(
        self,
        crash_plan: Sequence[CrashAt],
        seed: int = 0,
        delivery: DeliveryPolicy | None = None,
        partial_broadcast_victims: set[int] | None = None,
    ) -> None:
        inner = delivery if delivery is not None else DeliverAll()
        if partial_broadcast_victims:
            inner = DropNonGuaranteed(inner, partial_broadcast_victims)
        super().__init__(seed=seed, delivery=inner, crash_plan=crash_plan)


class AdaptiveCrashAdversary(CycleAdversary):
    """Crashes each victim right after its ``kill_after_sends``-th send.

    A purely pattern-based adaptive kill: the adversary watches how many
    envelopes each victim has emitted (pattern data) and fail-stops it the
    moment the threshold is crossed, before the victim can take another
    step.  With ``suppress_to`` set, the final envelopes are additionally
    withheld from those recipients — the canonical "crash during the
    broadcast so only some processors hear it" attack on commit protocols.

    Args:
        victims: processors to kill, in any order.
        kill_after_sends: sends a victim must have made before it is
            killed (1 = kill right after its first fan-out).
        suppress_to: recipients denied the victims' final envelopes.
    """

    def __init__(
        self,
        victims: Sequence[int],
        kill_after_sends: int = 1,
        suppress_to: set[int] | None = None,
        seed: int = 0,
        delivery: DeliveryPolicy | None = None,
    ) -> None:
        inner = delivery if delivery is not None else DeliverAll()
        if suppress_to:
            inner = DropNonGuaranteed(inner, suppress_to)
        super().__init__(seed=seed, delivery=inner)
        if kill_after_sends < 1:
            raise ValueError(
                f"kill_after_sends must be >= 1, got {kill_after_sends}"
            )
        self.victims = list(victims)
        self.kill_after_sends = kill_after_sends
        self._killed: set[int] = set()

    def _sends_by(self, view: PatternView, pid: int) -> int:
        """Number of events at which ``pid`` sent at least one envelope."""
        return sum(
            1
            for entry in view.history()
            if entry.kind == "step" and entry.actor == pid and entry.sent
        )

    def decide(self, view: PatternView) -> Decision:
        for victim in self.victims:
            if victim in self._killed or victim in view.crashed():
                continue
            if self._sends_by(view, victim) >= self.kill_after_sends:
                self._killed.add(victim)
                self._note_event()
                return CrashDecision(pid=victim)
        return super().decide(view)
