"""A chaos adversary: randomized composition of every hostile behaviour.

For fuzzing the safety properties, this adversary randomly composes the
whole hostile repertoire within one run — biased step scheduling, random
per-message delays (including late ones), transient partitions, and up
to ``max_crashes`` fail-stops at random moments — all derived from one
seed, so any counterexample it ever finds is replayable.

It makes no fairness promise beyond a delivery backstop (messages older
than ``force_age`` events are always delivered), so it is suitable for
*safety* fuzzing (agreement, abort validity); termination under it is
measured, not guaranteed.
"""

from __future__ import annotations

from repro.adversary.base import Adversary
from repro.sim.decisions import CrashDecision, Decision, StepDecision
from repro.sim.pattern import PatternView


class ChaosAdversary(Adversary):
    """Randomized hostile scheduling for safety fuzzing.

    Args:
        n: number of processors.
        max_crashes: fail-stop budget (pass ``t`` for admissible runs, or
            more to fuzz graceful degradation).
        crash_probability: per-decision chance of spending a crash.
        hold_probability: chance a deliverable message is held this step.
        partition_probability: per-decision chance of toggling a random
            half-partition on or off.
        force_age: delivery backstop in events.
    """

    def __init__(
        self,
        n: int,
        max_crashes: int = 0,
        seed: int = 0,
        crash_probability: float = 0.002,
        hold_probability: float = 0.5,
        partition_probability: float = 0.01,
        force_age: int = 400,
    ) -> None:
        super().__init__(seed)
        if n <= 0:
            raise ValueError(f"need at least one processor, got {n}")
        if max_crashes >= n:
            raise ValueError(
                f"cannot budget {max_crashes} crashes for {n} processors"
            )
        for name, probability in (
            ("crash_probability", crash_probability),
            ("hold_probability", hold_probability),
            ("partition_probability", partition_probability),
        ):
            if not 0.0 <= probability <= 1.0:
                raise ValueError(f"{name} out of range: {probability}")
        self.n = n
        self.max_crashes = max_crashes
        self.crash_probability = crash_probability
        self.hold_probability = hold_probability
        self.partition_probability = partition_probability
        self.force_age = force_age
        self._crashes_spent = 0
        self._partition: set[int] | None = None

    def _maybe_toggle_partition(self) -> None:
        if self.rng.random() >= self.partition_probability:
            return
        if self._partition is None:
            members = self.rng.sample(range(self.n), self.n // 2)
            self._partition = set(members)
        else:
            self._partition = None

    def _crosses_partition(self, sender: int, recipient: int) -> bool:
        if self._partition is None:
            return False
        return (sender in self._partition) != (recipient in self._partition)

    def decide(self, view: PatternView) -> Decision:
        self._maybe_toggle_partition()
        alive = view.alive()
        if (
            self._crashes_spent < self.max_crashes
            and len(alive) > 1
            and self.rng.random() < self.crash_probability
        ):
            victim = self.rng.choice(alive)
            self._crashes_spent += 1
            return CrashDecision(pid=victim)
        pid = self.rng.choice(alive)
        now = view.event_count
        deliver = []
        for message in view.pending(pid):
            overdue = now - message.send_event >= self.force_age
            if overdue:
                deliver.append(message.message_id)
                continue
            if self._crosses_partition(message.sender, pid):
                continue
            if self.rng.random() >= self.hold_probability:
                deliver.append(message.message_id)
        return StepDecision(pid=pid, deliver=tuple(deliver))
