"""A content-aware adversary — deliberately OUTSIDE the paper's model.

The paper's adversary never sees message contents, local states, or coin
flips.  This module implements the classic *balancing* attack that a
stronger, content-reading adversary can mount against Ben-Or-family
protocols: when delivering first-phase stage messages, keep every
processor's view balanced (no value held by more than ``n/2`` of the
senders it has heard), so nobody ever sends an S-message and every stage
ends in a re-flip.  Against Ben-Or with *local* coins this yields the
exponential expected running time (all ~n private flips must coincide for
progress); against Protocol 1 it is harmless — a balanced stage makes all
processors adopt the *same* shared coin, which forces unanimity and a
decision within two further stages.  That contrast is experiment E10.

The class advertises :attr:`model_compliant` = ``False`` and must be
attached to the :class:`~repro.sim.scheduler.Simulation` it schedules (it
reads envelope payloads through the simulation's full-information side).
"""

from __future__ import annotations

from collections import defaultdict

from repro.adversary.base import Adversary, CrashAt
from repro.core.messages import StageMessage
from repro.errors import SchedulingError
from repro.sim.decisions import CrashDecision, Decision, StepDecision
from repro.sim.message import Envelope, MessageId
from repro.sim.pattern import PatternView
from repro.sim.scheduler import Simulation


class OmniscientBalancer(Adversary):
    """Content-reading delivery balancer for stage-structured protocols.

    Scheduling is fair round-robin; the attack is purely in delivery
    order.  For each (recipient, stage) the adversary tracks how many
    phase-1 values of each kind the recipient has already seen (its own
    self-posted value included, inferred from the envelopes it sent) and
    withholds phase-1 envelopes whose delivery would give some value a
    ``> n/2`` majority, *until* the recipient has a full ``n - t`` batch.
    Once a recipient's batch for a stage is complete, leftovers for that
    stage are released (at later steps, where they are stale), keeping the
    run fair and admissible.

    Args:
        n: number of processors.
        t: the protocol's fault parameter (the batch size is ``n - t``).
    """

    model_compliant = False

    def __init__(
        self,
        n: int,
        t: int,
        seed: int = 0,
        crash_plan: tuple["CrashAt", ...] = (),
    ) -> None:
        super().__init__(seed)
        self.n = n
        self.t = t
        self._sim: Simulation | None = None
        self._queue: list[int] = []
        self._cycle = 0
        self.crash_plan = sorted(crash_plan, key=lambda c: (c.cycle, c.pid))
        self._pending_crashes = list(self.crash_plan)
        # delivered value counts per (recipient, stage): {value: senders}
        self._seen: dict[tuple[int, int], dict[int, set[int]]] = defaultdict(
            lambda: defaultdict(set)
        )
        # stages whose majority check the recipient has already performed
        # (evidenced by its phase-2 send) -> leftovers are stale, release
        self._stage_done: set[tuple[int, int]] = set()
        # recipients' own phase-1 values per stage (from envelopes sent)
        self._self_counted: set[tuple[int, int]] = set()

    def attach(self, simulation: Simulation) -> None:
        """Give the adversary full-information access (required)."""
        self._sim = simulation
        self._scanned = 0
        # per-sender phase-1 values: (sender, stage) -> value
        self._sent_phase1: dict[tuple[int, int], int] = {}
        # senders that have sent their phase-2 message: (sender, stage)
        self._sent_phase2: set[tuple[int, int]] = set()

    def _refresh_index(self) -> None:
        """Fold newly created envelopes into the content indexes."""
        assert self._sim is not None
        envelopes = list(self._sim._envelopes.values())
        for envelope in envelopes[self._scanned:]:
            for payload in envelope.payloads:
                if not isinstance(payload, StageMessage):
                    continue
                key = (envelope.sender, payload.stage)
                if payload.phase == 1 and payload.value is not None:
                    self._sent_phase1.setdefault(key, payload.value)
                elif payload.phase == 2:
                    self._sent_phase2.add(key)
        self._scanned = len(envelopes)

    # -- content inspection ---------------------------------------------------

    def _envelope(self, message_id: MessageId) -> Envelope:
        assert self._sim is not None
        return self._sim._envelopes[message_id]

    def _recipient_active(self, pid: int) -> bool:
        """Whether ``pid``'s program is still running (not returned)."""
        assert self._sim is not None
        return not self._sim.processes[pid].halted

    @staticmethod
    def _phase1(envelope: Envelope) -> StageMessage | None:
        """The phase-1 stage payload carried by the envelope, if any."""
        for payload in envelope.payloads:
            if isinstance(payload, StageMessage) and payload.phase == 1:
                return payload
        return None

    @staticmethod
    def _phase2(envelope: Envelope) -> StageMessage | None:
        """The phase-2 stage payload carried by the envelope, if any."""
        for payload in envelope.payloads:
            if isinstance(payload, StageMessage) and payload.phase == 2:
                return payload
        return None

    def _majority_check_done(self, pid: int, stage: int) -> bool:
        """Whether ``pid`` already evaluated stage ``stage``'s majority.

        Evidenced by a phase-2 send for the stage: the protocol evaluates
        the majority over its board in the same step it broadcasts the
        phase-2 message, so anything delivered afterwards is stale and
        safe to release.
        """
        if (pid, stage) in self._stage_done:
            return True
        if (pid, stage) in self._sent_phase2:
            self._stage_done.add((pid, stage))
            return True
        return False

    def _count_self_value(self, pid: int) -> None:
        """Fold pid's own broadcast phase-1 values into its seen-counts.

        A processor's own value reaches its board by self-post, invisible
        to the pattern; a content-reading adversary recovers it from the
        copies the processor sent to others.
        """
        for (sender, stage), value in self._sent_phase1.items():
            if sender != pid:
                continue
            key = (pid, stage)
            if key in self._self_counted:
                continue
            self._self_counted.add(key)
            self._seen[key][value].add(pid)

    # -- delivery choice ---------------------------------------------------------

    def _choose_deliveries(
        self, view: PatternView, pid: int
    ) -> tuple[MessageId, ...]:
        self._count_self_value(pid)
        half = self.n / 2
        batch = self.n - self.t
        chosen: list[MessageId] = []
        for meta in view.pending(pid):
            envelope = self._envelope(meta.message_id)
            payload = self._phase1(envelope)
            if payload is None:
                second = self._phase2(envelope)
                if (
                    second is not None
                    and self._recipient_active(pid)
                    and not self._majority_check_done(pid, second.stage)
                ):
                    # Hold phase-2 messages until the recipient has done
                    # its own majority check (sent its phase-2): before
                    # that they are useless to it, and delivering them in
                    # the same step as the last phase-1 message would let
                    # one step complete both waits and pack a phase-1
                    # payload for the *next* stage into a mixed envelope
                    # the balancer can no longer hold.
                    continue
                chosen.append(meta.message_id)
                continue
            key = (pid, payload.stage)
            seen = self._seen[key]
            if self._majority_check_done(pid, payload.stage):
                chosen.append(meta.message_id)
                if payload.value is not None:
                    seen[payload.value].add(envelope.sender)
                continue
            if (pid, payload.stage) not in self._sent_phase1:
                # The recipient has not revealed (or fixed) its own value
                # for this stage yet; delivering now could later combine
                # with its self-posted value into a majority.  It is not
                # at this stage's wait yet either, so holding is free.
                if not self._recipient_active(pid):
                    chosen.append(meta.message_id)  # halted: stale, release
                continue
            value = payload.value
            assert value is not None
            # Would delivering this tip the value over the n/2 majority?
            if len(seen[value] | {envelope.sender}) > half:
                # Hold it — unless holding would starve the batch: if the
                # recipient cannot reach n - t without it, give up on
                # balancing this stage (the flips were too lopsided).
                if not self._batch_reachable_without(view, pid, payload.stage, seen):
                    self._stage_done.add((pid, payload.stage))
                    chosen.append(meta.message_id)
                    seen[value].add(envelope.sender)
                continue
            chosen.append(meta.message_id)
            seen[value].add(envelope.sender)
        return tuple(chosen)

    def _batch_reachable_without(
        self,
        view: PatternView,
        pid: int,
        stage: int,
        seen: dict[int, set[int]],
    ) -> bool:
        """Whether a balanced ``n - t`` batch is still achievable.

        Counts the balanced capacity over everything seen plus everything
        pending (now or in the future: processors not yet heard from for
        this stage are optimistically assumed able to contribute, as long
        as they are alive).
        """
        half = int(self.n // 2)  # cap per value: floor(n/2) given "> n/2"
        available: dict[int, set[int]] = {
            0: set(seen[0]),
            1: set(seen[1]),
        }
        for (sender, sent_stage), value in self._sent_phase1.items():
            if sent_stage == stage:
                available[value].add(sender)
        crashed = view.crashed()
        unheard = [
            q
            for q in range(self.n)
            if q not in crashed
            and q not in available[0]
            and q not in available[1]
        ]
        # Unheard alive processors could contribute either value; count
        # them toward whichever side has slack.
        cap0 = min(len(available[0]), half)
        cap1 = min(len(available[1]), half)
        slack = max(0, half - cap0) + max(0, half - cap1)
        return cap0 + cap1 + min(len(unheard), slack) >= self.n - self.t

    # -- scheduling ---------------------------------------------------------------

    def decide(self, view: PatternView) -> Decision:
        if self._sim is None:
            raise SchedulingError(
                "OmniscientBalancer must be attach()ed to its Simulation "
                "before scheduling"
            )
        self._refresh_index()
        if not self._queue:
            self._cycle += 1
            self._queue = view.alive()
        while self._pending_crashes and self._pending_crashes[0].cycle <= self._cycle:
            entry = self._pending_crashes.pop(0)
            if entry.pid not in view.crashed():
                self._queue = [p for p in self._queue if p != entry.pid]
                return CrashDecision(pid=entry.pid)
        pid = self._queue.pop(0)
        while pid in view.crashed():
            if not self._queue:
                self._cycle += 1
                self._queue = view.alive()
            pid = self._queue.pop(0)
        return StepDecision(pid=pid, deliver=self._choose_deliveries(view, pid))
