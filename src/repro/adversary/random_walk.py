"""A fair random adversary: random steps, random (but fair) delivery.

This is the "weather" adversary: no strategy, just arbitrary asynchrony.
Fairness is kept by two rules — every processor is stepped infinitely
often (chosen uniformly among the alive), and any envelope older than
``force_age`` events is always delivered at its recipient's next step, so
guaranteed messages cannot be withheld forever.
"""

from __future__ import annotations

from repro.adversary.base import Adversary
from repro.sim.decisions import Decision, StepDecision
from repro.sim.pattern import PatternView


class RandomAdversary(Adversary):
    """Uniformly random fair scheduling.

    Args:
        deliver_probability: chance each pending envelope is delivered when
            its recipient steps.
        force_age: envelopes older than this many events are always
            delivered (the fairness backstop).
    """

    def __init__(
        self,
        seed: int = 0,
        deliver_probability: float = 0.5,
        force_age: int = 200,
    ) -> None:
        super().__init__(seed)
        if not 0.0 < deliver_probability <= 1.0:
            raise ValueError(
                f"deliver_probability must be in (0, 1], got "
                f"{deliver_probability}"
            )
        if force_age < 1:
            raise ValueError(f"force_age must be >= 1, got {force_age}")
        self.deliver_probability = deliver_probability
        self.force_age = force_age

    def decide(self, view: PatternView) -> Decision:
        alive = view.alive()
        pid = self.rng.choice(alive)
        now = view.event_count
        deliver = []
        for message in view.pending(pid):
            overdue = now - message.send_event >= self.force_age
            if overdue or self.rng.random() < self.deliver_probability:
                deliver.append(message.message_id)
        return StepDecision(pid=pid, deliver=tuple(deliver))
