"""``repro.models`` — the timing-model zoo and its degradation atlas.

See :mod:`repro.models.base` for the registry, :mod:`repro.models.zoo`
for the non-realistic models, :mod:`repro.models.select` for ambient
selection, and :mod:`repro.models.atlas` for the protocol degradation
atlas.  Full semantics are documented in ``docs/MODELS.md``.
"""

from repro.models.base import (
    DEFAULT_MODEL,
    MODELS,
    Knob,
    TimingModel,
    model_names,
    register,
    resolve_model,
)
from repro.models import zoo  # noqa: F401 - populates the registry
from repro.models.select import (
    ENV_VAR,
    active_timing_model,
    apply_active_model,
    resolve_timing_model,
    set_default_timing_model,
)

__all__ = [
    "DEFAULT_MODEL",
    "ENV_VAR",
    "MODELS",
    "Knob",
    "TimingModel",
    "active_timing_model",
    "apply_active_model",
    "model_names",
    "register",
    "resolve_model",
    "resolve_timing_model",
    "set_default_timing_model",
]
