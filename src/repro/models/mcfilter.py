"""Model-checker choice restriction for the timing-model zoo.

The explorer quantifies over adversary choices; a timing model restricts
which choices exist.  Rather than touching the search itself, a model
supplies a per-envelope **classifier** consulted at every prospective
step, mapping each pending envelope to one of five classes:

* ``NORMAL`` — the realistic semantics: delivering is free, withholding
  a guaranteed envelope costs one unit of delay budget and marks it
  late (bounded by ``max_late``);
* ``MUST_DELIVER`` — the model guarantees timely delivery (a sync link,
  a post-GST psync link, a random draw that delivered): the envelope is
  always in the delivered set and never withholdable;
* ``FREE`` — the model permits unbounded lateness (an async link):
  withholding costs no delay budget but still marks the envelope late,
  so ``max_late`` keeps the search finite-branching;
* ``DEFER`` — the model withholds the envelope at this step (a random
  draw that did not deliver): excluded from delivery, charged nothing,
  reconsidered at the recipient's next step;
* ``DROP`` — the model dropped the envelope permanently (its
  communication-closed round ended): never delivered, never charged.

The classifier is a pure function of ``(envelope, recipient, recipient
clock, config)`` — no hidden state — so
:func:`~repro.mc.choices.enumerate_choices` and the explorer's budget
recomputation (``_SubtreeExplorer.charge``) agree by construction, and
split/replay/resume all see the same restricted tree.  Sleep-set POR is
disabled under non-realistic models (enforced by ``MCConfig``): the
independence relation was proved for the realistic semantics only.

In mc there are no adversary cycles; under the canonical slowest-first
round-robin order the recipient's *clock* plays the cycle role, so
clock-based bounds (GST, round deadlines) are expressed in clock units.
"""

from __future__ import annotations

import random

from repro.engine.seeds import (
    MODEL_LINK_STREAM,
    MODEL_TIMING_STREAM,
    derive,
    derive_keyed,
)

#: Envelope classes (see the module docstring).
NORMAL = "normal"
MUST_DELIVER = "must-deliver"
FREE = "free"
DEFER = "defer"
DROP = "drop"


class ChoiceClassifier:
    """Base classifier: everything NORMAL (the realistic semantics)."""

    def classify(self, env, pid: int, clock: int) -> str:
        raise NotImplementedError


class GranularClassifier(ChoiceClassifier):
    """Granular synchrony: link classes restrict withholding.

    Sync links must deliver at the next step; psync links behave
    realistically before GST and synchronously after; async links may be
    withheld without spending delay budget (late marks still apply).
    """

    def __init__(
        self,
        seed: int,
        sync_fraction: float = 0.34,
        psync_fraction: float = 0.33,
        gst_clock: int = 6,
    ) -> None:
        self.seed = seed
        self.sync_fraction = sync_fraction
        self.psync_fraction = psync_fraction
        self.gst_clock = gst_clock
        self._classes: dict[tuple[int, int], str] = {}

    def link_class(self, sender: int, recipient: int) -> str:
        key = (sender, recipient)
        assigned = self._classes.get(key)
        if assigned is None:
            draw = random.Random(
                derive_keyed(self.seed, MODEL_LINK_STREAM, sender, recipient)
            ).random()
            if draw < self.sync_fraction:
                assigned = "sync"
            elif draw < self.sync_fraction + self.psync_fraction:
                assigned = "psync"
            else:
                assigned = "async"
            self._classes[key] = assigned
        return assigned

    def classify(self, env, pid, clock):
        cls = self.link_class(env.sender, pid)
        if cls == "sync":
            return MUST_DELIVER
        if cls == "psync":
            return NORMAL if env.send_clock < self.gst_clock else MUST_DELIVER
        return FREE


class RandomAsyncClassifier(ChoiceClassifier):
    """Random asynchrony: the schedule is drawn, not chosen.

    Each (envelope, step) pair hashes to one deterministic Bernoulli
    draw: delivered now (``MUST_DELIVER``) or deferred to the next step
    (``DEFER``).  The adversary keeps crash placement only — exactly the
    model's point.  Because the draw is keyed by the recipient's clock,
    a deferred envelope is redrawn at the next step and every envelope
    is delivered after finitely many steps with probability one.
    """

    def __init__(self, seed: int, delivery_rate: float = 0.45) -> None:
        self.seed = seed
        self.delivery_rate = delivery_rate

    def classify(self, env, pid, clock):
        draw = random.Random(
            derive_keyed(
                self.seed, 0, env.sender, env.send_clock, pid, clock
            )
        ).random()
        return MUST_DELIVER if draw < self.delivery_rate else DEFER


class RoundClosedClassifier(ChoiceClassifier):
    """Communication-closed rounds in clock units.

    An envelope sent at clock ``c`` lives in round ``c // round_clocks``
    and behaves realistically while the recipient's clock is inside that
    round; once the round boundary passes it is dropped permanently.
    """

    def __init__(self, round_clocks: int) -> None:
        self.round_clocks = round_clocks

    def classify(self, env, pid, clock):
        deadline = (
            env.send_clock // self.round_clocks + 1
        ) * self.round_clocks
        return DROP if clock >= deadline else NORMAL


def classifier_for(config) -> ChoiceClassifier | None:
    """The classifier of an ``MCConfig``'s model (``None`` = realistic).

    Built fresh per call — classifiers are pure in ``config``, so every
    consumer (enumeration, charging, splitting, replay) sees identical
    classifications.
    """
    from repro.models.base import resolve_model

    return resolve_model(config.model).mc_classifier(config)


def granular_classifier(config) -> GranularClassifier:
    return GranularClassifier(
        seed=derive(config.seed, MODEL_TIMING_STREAM),
        gst_clock=max(2, config.max_cycles // 2),
    )


def random_async_classifier(config) -> RandomAsyncClassifier:
    return RandomAsyncClassifier(
        seed=derive(config.seed, MODEL_TIMING_STREAM)
    )


def round_closed_classifier(config) -> RoundClosedClassifier:
    return RoundClosedClassifier(round_clocks=max(2, 3 * config.K))
