"""Ambient timing-model selection, mirroring the sim-core selector.

Standalone trial paths (``run_commit_trial``, the experiment runners'
``run_programs``) take no model argument — they pick up the ambient
model resolved here, in precedence order:

1. an explicit name passed by the caller;
2. the process-wide default installed by ``--model``
   (:func:`set_default_timing_model`);
3. the ``REPRO_TIMING_MODEL`` environment variable — exported alongside
   the process default so :mod:`repro.engine` worker processes inherit
   the selection;
4. ``"realistic"``.

Campaign and mc paths do *not* use the ambient default: their model is
an explicit config field, serialized in reports, so replays are
self-contained.
"""

from __future__ import annotations

import os

from repro.engine.seeds import MODEL_TIMING_STREAM, derive
from repro.models.base import DEFAULT_MODEL, TimingModel, resolve_model

#: Environment variable carrying the model selection into engine workers.
ENV_VAR = "REPRO_TIMING_MODEL"

_default: str | None = None


def set_default_timing_model(name: str | None) -> None:
    """Install (or clear, with ``None``) the process-wide default model."""
    global _default
    if name is not None:
        resolve_model(name)  # fail fast on unknown names
    _default = name


def resolve_timing_model(explicit: str | None = None) -> str:
    """The active model name under the documented precedence order."""
    name = explicit or _default or os.environ.get(ENV_VAR) or DEFAULT_MODEL
    resolve_model(name)
    return name


def active_timing_model(explicit: str | None = None) -> TimingModel:
    """The active :class:`TimingModel` instance."""
    return resolve_model(resolve_timing_model(explicit))


def apply_active_model(adversary, K: int, seed: int):
    """Re-time ``adversary`` under the ambient model.

    The realistic default is the identity — zero overhead and
    byte-identical behaviour on every historical path.  Other models
    replace the adversary's delivery policy, seeding the model's own
    randomness from :data:`~repro.engine.seeds.MODEL_TIMING_STREAM` —
    strictly after (never inside) the historical per-trial streams.
    """
    model = active_timing_model()
    if model.name == DEFAULT_MODEL:
        return adversary
    return model.wrap_adversary(
        adversary, K=K, seed=derive(seed, MODEL_TIMING_STREAM)
    )
