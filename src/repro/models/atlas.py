"""The protocol degradation atlas: every protocol under every model.

The paper proves Protocol 2 correct *in* the realistic timing model;
the natural follow-up question is how the guarantees transfer when the
timing assumptions move.  The atlas answers it empirically: it fans a
protocol battery — the paper's randomized agreement (Protocol 1) and
commit (Protocol 2) plus the classic 2PC and 3PC baselines — across the
timing-model zoo (:mod:`repro.models`) and measures, per (protocol,
model) cell, termination rate, expected rounds, decision latency, the
decision mix, and machine-checked safety.

Every cell sweeps the same seeded FaultPlans and vote vectors (drawn
with the campaign's own streams), so columns are comparable: a cell
differs from its neighbour only in the timing model re-timing the same
faults.  Trials fan out through :mod:`repro.engine`, so reports are
byte-identical at any worker count.

The headline acceptance gate — Protocol 2 must show **zero safety
violations in every model** — is exposed as
:func:`reference_protocol_safe`; degradation is expected to show up as
lost *liveness* (termination rate), never lost safety.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass
from functools import partial
from pathlib import Path
from typing import Any

from repro.core.api import ProtocolOutcome, shared_coins
from repro.analysis.metrics import extract_metrics
from repro.core.agreement import AgreementProgram
from repro.engine.executor import run_trials
from repro.engine.seeds import (
    CAMPAIGN_SHAPE_STREAM,
    CAMPAIGN_VOTE_STREAM,
    MODEL_TIMING_STREAM,
    coin_seed,
    derive,
)
from repro.errors import ConfigurationError
from repro.faults.plan import FaultPlan
from repro.faults.safety import SafetyMonitor
from repro.faults.variants import make_programs, resolve_variant
from repro.models.base import model_names, resolve_model
from repro.sim.coreselect import simulation_class

#: Schema tag of the atlas report document.
ATLAS_SCHEMA = "repro.model-atlas v1"

#: The protocol battery: name -> campaign program variant, with
#: ``protocol1`` special-cased to the standalone agreement subprotocol.
ATLAS_PROTOCOLS = ("protocol1", "protocol2", "twopc", "threepc")

_VARIANT_OF = {
    "protocol2": "commit",
    "twopc": "twopc",
    "threepc": "threepc",
}


@dataclass(frozen=True)
class AtlasConfig:
    """One degradation-atlas sweep, fully pinned.

    Attributes:
        protocols: protocol battery (``protocol1``, ``protocol2``, or
            any :data:`repro.faults.variants.PROGRAM_VARIANTS` name).
        models: timing models to sweep, from the zoo registry.
        n: processors per trial.
        t: fault budget; ``None`` means the optimum ``(n - 1) // 2``.
        K: the protocols' on-time bound.
        trials: seeded trials per (protocol, model) cell.
        base_seed: seed of trial 0; trial ``i`` uses ``base_seed + i``.
        max_steps: simulator horizon per trial.
        over_budget_fraction: fraction of trials drawing a plan with
            more than ``t`` crashes (the graceful-degradation regime).
        all_commit_fraction: fraction of trials voting all-COMMIT.
    """

    protocols: tuple[str, ...] = ATLAS_PROTOCOLS
    models: tuple[str, ...] = ()
    n: int = 5
    t: int | None = None
    K: int = 4
    trials: int = 25
    base_seed: int = 0
    max_steps: int = 6_000
    over_budget_fraction: float = 0.25
    all_commit_fraction: float = 0.6

    def __post_init__(self) -> None:
        if not self.protocols:
            raise ConfigurationError("need at least one protocol")
        for protocol in self.protocols:
            if protocol != "protocol1":
                resolve_variant(_VARIANT_OF.get(protocol, protocol))
        models = self.models or tuple(model_names())
        if not self.models:
            object.__setattr__(self, "models", models)
        for model in models:
            resolve_model(model)
        if self.n < 2:
            raise ConfigurationError(f"the atlas needs n >= 2, got {self.n}")
        if self.trials < 1:
            raise ConfigurationError(
                f"need at least one trial per cell, got {self.trials}"
            )
        if not 0.0 <= self.over_budget_fraction <= 1.0:
            raise ConfigurationError(
                f"over_budget_fraction out of [0, 1]: "
                f"{self.over_budget_fraction}"
            )
        if not 0.0 <= self.all_commit_fraction <= 1.0:
            raise ConfigurationError(
                f"all_commit_fraction out of [0, 1]: "
                f"{self.all_commit_fraction}"
            )

    @property
    def resolved_t(self) -> int:
        return self.t if self.t is not None else (self.n - 1) // 2

    def to_dict(self) -> dict[str, Any]:
        return {
            "protocols": list(self.protocols),
            "models": list(self.models),
            "n": self.n,
            "t": self.resolved_t,
            "K": self.K,
            "trials": self.trials,
            "base_seed": self.base_seed,
            "max_steps": self.max_steps,
            "over_budget_fraction": self.over_budget_fraction,
            "all_commit_fraction": self.all_commit_fraction,
        }


def _draw_votes(config: AtlasConfig, seed: int) -> list[int]:
    rng = random.Random(derive(seed, CAMPAIGN_VOTE_STREAM))
    if rng.random() < config.all_commit_fraction:
        return [1] * config.n
    return [rng.randint(0, 1) for _ in range(config.n)]


def _draw_plan(config: AtlasConfig, seed: int) -> FaultPlan:
    shape = random.Random(derive(seed, CAMPAIGN_SHAPE_STREAM))
    over_budget = (
        config.resolved_t < config.n - 1
        and shape.random() < config.over_budget_fraction
    )
    return FaultPlan.random(
        n=config.n,
        t=config.resolved_t,
        seed=seed,
        K=config.K,
        over_budget=over_budget,
    )


def _programs_for(
    config: AtlasConfig, protocol: str, votes: list[int], seed: int
):
    if protocol == "protocol1":
        coins = shared_coins(config.n, seed=coin_seed(seed))
        return [
            AgreementProgram(
                pid=pid,
                n=config.n,
                t=config.resolved_t,
                initial_value=vote,
                coins=coins,
            )
            for pid, vote in enumerate(votes)
        ]
    variant = _VARIANT_OF.get(protocol, protocol)
    return make_programs(
        variant, config.n, config.resolved_t, votes, config.K
    )


def _atlas_trial(
    config_json: str, protocol: str, model_name: str, seed: int
) -> dict[str, Any]:
    """One (protocol, model, seed) cell sample.

    Module-level and JSON-parameterised so cells pickle cleanly into
    the engine's worker pool.
    """
    doc = json.loads(config_json)
    doc["protocols"] = tuple(doc["protocols"])
    doc["models"] = tuple(doc["models"])
    config = AtlasConfig(**doc)
    votes = _draw_votes(config, seed)
    plan = _draw_plan(config, seed)
    adversary = resolve_model(model_name).compile_plan(
        plan, K=config.K, seed=derive(seed, MODEL_TIMING_STREAM)
    )
    programs = _programs_for(config, protocol, votes, seed)
    simulation = simulation_class()(
        programs=programs,
        adversary=adversary,
        K=config.K,
        t=config.resolved_t,
        seed=seed,
        max_steps=config.max_steps,
    )
    result = simulation.run()
    run = result.run
    decisions = {pid: run.decisions[pid] for pid in range(config.n)}
    crashed = set(run.faulty())
    monitor = SafetyMonitor(
        n=config.n, t=config.resolved_t, votes=list(votes)
    )
    report = monitor.check(
        decisions=decisions,
        crashed=crashed,
        terminated=result.terminated,
        expect_termination=False,
        benign=False,
    )
    violations = [v.to_dict() for v in report.violations]
    if protocol == "protocol1":
        # Protocol 1 decides on *values*, not commit verdicts:
        # abort/commit validity are commit-specific and do not apply.
        violations = [
            v for v in violations if v["property"] == "agreement"
        ]
    metrics = extract_metrics(
        ProtocolOutcome(result=result), programs=programs
    )
    return {
        "terminated": result.terminated,
        "decisions": [decisions[pid] for pid in range(config.n)],
        "crashed": sorted(crashed),
        "within_budget": plan.within_budget(config.resolved_t),
        "rounds": metrics.rounds,
        "decision_ticks": metrics.ticks,
        "violations": violations,
    }


def _cell_summary(records: list[dict[str, Any]]) -> dict[str, Any]:
    terminated = sum(1 for r in records if r["terminated"])
    rounds = [r["rounds"] for r in records if r["rounds"] is not None]
    ticks = [
        r["decision_ticks"]
        for r in records
        if r["decision_ticks"] is not None
    ]
    decisions = {"commit": 0, "abort": 0, "undecided": 0, "mixed": 0}
    safety = 0
    for record in records:
        bits = {b for b in record["decisions"] if b is not None}
        if not bits:
            decisions["undecided"] += 1
        elif bits == {1}:
            decisions["commit"] += 1
        elif bits == {0}:
            decisions["abort"] += 1
        else:
            decisions["mixed"] += 1
        safety += len(record["violations"])
    return {
        "trials": len(records),
        "termination_rate": terminated / len(records),
        "mean_rounds": sum(rounds) / len(rounds) if rounds else None,
        "mean_decision_ticks": (
            sum(ticks) / len(ticks) if ticks else None
        ),
        "decisions": decisions,
        "safety_violations": safety,
    }


def run_atlas(
    config: AtlasConfig, workers: int | None = None
) -> dict[str, Any]:
    """Sweep the full (protocol, model) grid and build the report.

    Deterministic in ``config`` alone: every cell derives its plans and
    votes from the same seed range, and the engine reassembles trial
    records in seed order regardless of ``workers``.
    """
    config_json = json.dumps(config.to_dict(), sort_keys=True)
    cells: dict[str, dict[str, Any]] = {}
    for protocol in config.protocols:
        for model in config.models:
            records = run_trials(
                partial(_atlas_trial, config_json, protocol, model),
                trials=config.trials,
                base_seed=config.base_seed,
                workers=workers,
            )
            summary = _cell_summary(records)
            summary["violations"] = [
                dict(v, seed=config.base_seed + i)
                for i, r in enumerate(records)
                for v in r["violations"]
            ]
            cells[f"{protocol}/{model}"] = summary
    return {
        "schema": ATLAS_SCHEMA,
        "config": config.to_dict(),
        "cells": cells,
    }


def reference_protocol_safe(report: dict[str, Any]) -> bool:
    """The acceptance gate: Protocol 2 safe in *every* model."""
    return all(
        cell["safety_violations"] == 0
        for name, cell in report["cells"].items()
        if name.startswith("protocol2/")
    )


def render_atlas(report: dict[str, Any]) -> str:
    """A fixed-width degradation table, one row per protocol cell."""
    lines = [
        "protocol degradation atlas "
        f"({report['config']['trials']} trials/cell, "
        f"n={report['config']['n']}, t={report['config']['t']}, "
        f"K={report['config']['K']})",
        f"  {'cell':<28} {'term%':>6} {'rounds':>7} {'ticks':>7} "
        f"{'commit':>7} {'abort':>6} {'undec':>6} {'safety':>7}",
    ]
    for name, cell in report["cells"].items():
        rounds = cell["mean_rounds"]
        ticks = cell["mean_decision_ticks"]
        rounds_str = "-" if rounds is None else f"{rounds:.1f}"
        ticks_str = "-" if ticks is None else f"{ticks:.1f}"
        lines.append(
            f"  {name:<28} {cell['termination_rate'] * 100:>5.0f}% "
            f"{rounds_str:>7} "
            f"{ticks_str:>7} "
            f"{cell['decisions']['commit']:>7} "
            f"{cell['decisions']['abort']:>6} "
            f"{cell['decisions']['undecided']:>6} "
            f"{cell['safety_violations']:>7}"
        )
    verdict = (
        "SAFE" if reference_protocol_safe(report) else "SAFETY VIOLATED"
    )
    lines.append(f"  reference protocol (protocol2) verdict: {verdict}")
    return "\n".join(lines)


def write_atlas_report(report: dict[str, Any], path: str | Path) -> Path:
    """Serialize a report deterministically (sorted keys, one line)."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(report, sort_keys=True) + "\n")
    return target
