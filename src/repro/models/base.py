"""The timing-model zoo: pluggable synchrony assumptions, one registry.

The paper's "realistic" fault model is one point in a space the related
work has since mapped out: *granular synchrony* mixes synchronous,
partially-synchronous, and asynchronous links in one network (arXiv
2408.12853); the *random asynchronous model* replaces the worst-case
scheduler with a seeded random one (arXiv 2502.09116); and
communication-closed rounds drop any message not delivered in the round
it was sent (arXiv 1804.07078).  This module gives each of those a
first-class object — a :class:`TimingModel` — that every existing
harness can select by name:

* the **sim track** compiles a :class:`~repro.faults.plan.FaultPlan`
  through the model (``compile_plan``), keeping the plan's crashes and
  partitions and replacing its *link timing* with the model's;
* standalone Monte-Carlo trials and experiments re-time any
  :class:`~repro.adversary.base.CycleAdversary` (``wrap_adversary``);
* the model checker restricts choice enumeration through a per-envelope
  classifier (``mc_classifier``, see :mod:`repro.models.mcfilter`);
* the **runtime track**, where meaningful, gets a FaultPlan analogue
  (``runtime_plan`` — granular synchrony maps onto per-link delay
  overrides; the other models have no transport counterpart).

The ``realistic`` entry is the paper's model, extracted as the
reference instance: selecting it routes through exactly the historical
code paths (``compile_to_adversary``, untouched mc enumeration), so
default-model campaign and mc reports stay byte-identical to pre-zoo
output.  Model randomness is seeded from dedicated streams
(:data:`~repro.engine.seeds.MODEL_TIMING_STREAM`,
:data:`~repro.engine.seeds.MODEL_LINK_STREAM`) drawn strictly after —
never from — the historical campaign streams.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.adversary.base import CycleAdversary
from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.adversary.base import Adversary
    from repro.faults.plan import FaultPlan


@dataclass(frozen=True)
class Knob:
    """One documented tuning parameter of a timing model."""

    name: str
    default: Any
    help: str


class TimingModel:
    """One synchrony assumption, pluggable into every harness.

    Subclasses fill in the class attributes and override the hooks they
    support; the base implementations raise for unsupported tracks so a
    misrouted model fails loudly with a usage error.

    Attributes:
        name: registry key, as carried in configs and reports.
        summary: one-line description for ``repro models list``.
        source: the work the model comes from (paper / arXiv id).
        tracks: campaign tracks the model can execute on.
        mc_supported: whether the model restricts mc choice enumeration.
        fastcore_whitelisted: whether the fast core's fused sweep can
            replicate the model's adversaries draw-for-draw.  Off the
            whitelist the sweep falls back to the (byte-identical)
            ``FastSimulation`` path and counts the fallback in the
            ``sim_fastcore_fallbacks_total`` telemetry counter.
        preserves_eventual_delivery: whether every message is still
            delivered after a finite delay.  Campaigns AND this into a
            case's termination obligation: a model that genuinely drops
            messages (``round-closed``) voids the paper's nonblocking
            guarantee, so nontermination under it is degradation data,
            not a liveness violation.
        knobs: documented tuning parameters with defaults.
    """

    name: str = ""
    summary: str = ""
    source: str = ""
    tracks: tuple[str, ...] = ("sim",)
    mc_supported: bool = False
    fastcore_whitelisted: bool = False
    preserves_eventual_delivery: bool = True
    knobs: tuple[Knob, ...] = ()

    def compile_plan(
        self, plan: FaultPlan, K: int, seed: int
    ) -> CycleAdversary:
        """Compile a FaultPlan to a sim-track adversary under this model.

        ``seed`` feeds the model's own delivery randomness; it is derived
        from :data:`~repro.engine.seeds.MODEL_TIMING_STREAM` by callers,
        never from the plan's historical stream.
        """
        raise NotImplementedError

    def wrap_adversary(
        self, adversary: "Adversary", K: int, seed: int
    ) -> "Adversary":
        """Re-time an existing adversary under this model.

        Only cycle-based adversaries can be re-timed: the model owns
        delivery timing, so the adversary's delivery policy is replaced
        wholesale while its crash plan and round-robin stepping are
        kept.
        """
        if not isinstance(adversary, CycleAdversary):
            raise ConfigurationError(
                f"timing model {self.name!r} can only re-time cycle-based "
                f"adversaries; got {type(adversary).__name__} — run it "
                "under --model realistic"
            )
        adversary.delivery = self._policy(K=K, seed=seed)
        return adversary

    def _policy(self, K: int, seed: int):
        """The model's delivery policy (used by :meth:`wrap_adversary`)."""
        raise NotImplementedError

    def runtime_plan(self, plan: FaultPlan, K: int) -> FaultPlan:
        """The plan's runtime-track analogue under this model."""
        raise ConfigurationError(
            f"timing model {self.name!r} has no runtime-track analogue; "
            "run it on the sim track"
        )

    def mc_classifier(self, config):
        """Per-envelope choice classifier for the model checker.

        ``None`` (the default) means unrestricted enumeration — the
        realistic model's semantics.  See :mod:`repro.models.mcfilter`.
        """
        return None

    def describe(self) -> dict[str, Any]:
        """Machine-readable registry row (``repro models list --json``)."""
        return {
            "name": self.name,
            "summary": self.summary,
            "source": self.source,
            "tracks": list(self.tracks),
            "mc_supported": self.mc_supported,
            "fastcore_whitelisted": self.fastcore_whitelisted,
            "preserves_eventual_delivery": self.preserves_eventual_delivery,
            "knobs": [
                {"name": k.name, "default": k.default, "help": k.help}
                for k in self.knobs
            ],
        }

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


class RealisticModel(TimingModel):
    """The paper's model, extracted as the zoo's reference instance.

    Selecting it is the identity: plans compile through the historical
    :func:`~repro.faults.sim_compile.compile_to_adversary`, adversaries
    pass through unwrapped, and the model checker enumerates choices
    unrestricted — so every default-model report stays byte-identical
    to pre-zoo output.
    """

    name = "realistic"
    summary = (
        "the paper's almost-asynchronous model: guaranteed eventual "
        "delivery, K-cycle on-time bound, fail-stop crashes"
    )
    source = "Transaction Commit in a Realistic Fault Model (PODC 1986)"
    tracks = ("sim", "runtime", "service")
    mc_supported = True
    fastcore_whitelisted = True
    preserves_eventual_delivery = True
    knobs = ()

    def compile_plan(
        self, plan: FaultPlan, K: int, seed: int
    ) -> CycleAdversary:
        # Imported lazily: repro.faults.campaign imports this package,
        # so a module-level import here would close a cycle.
        from repro.faults.sim_compile import compile_to_adversary

        # ``seed`` is deliberately unused: the historical compiler seeds
        # the adversary from the plan itself, and byte-identity of
        # default-model reports depends on that.
        return compile_to_adversary(plan, K=K)

    def wrap_adversary(self, adversary, K, seed):
        return adversary

    def runtime_plan(self, plan: FaultPlan, K: int) -> FaultPlan:
        return plan


#: The registry, keyed by model name.  Populated here and by
#: :mod:`repro.models.zoo` at import time.
MODELS: dict[str, TimingModel] = {}

#: The default model everywhere a model knob is absent.
DEFAULT_MODEL = "realistic"


def register(model: TimingModel) -> TimingModel:
    """Add one model to the registry (idempotent by name)."""
    if not model.name:
        raise ConfigurationError("timing models must carry a name")
    MODELS[model.name] = model
    return model


def resolve_model(name: str) -> TimingModel:
    """Look up a model by name; raises a usage error on unknown names."""
    try:
        return MODELS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown timing model {name!r}; choose from "
            f"{sorted(MODELS)}"
        ) from None


def model_names() -> tuple[str, ...]:
    """Registered model names, default first then alphabetical."""
    rest = sorted(n for n in MODELS if n != DEFAULT_MODEL)
    return (DEFAULT_MODEL, *rest)


register(RealisticModel())
