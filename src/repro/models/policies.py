"""Delivery policies realising the zoo's timing models in cycle time.

Each policy runs under the stock
:class:`~repro.adversary.base.CycleAdversary` chassis — round-robin
stepping, crash plans, per-step delivery selection — and owns *link
timing* only.  When compiled from a :class:`~repro.faults.plan.FaultPlan`
the plan's partitions still sever links (crashes are executed by the
adversary's crash plan); the plan's own delay/loss draws are replaced by
the model's, which is the point of selecting a model.

Determinism: per-link synchrony classes are assigned by keyed hashing
(:func:`~repro.engine.seeds.derive_keyed` over ``(sender, recipient)``),
so a link's class never depends on message arrival order; per-message
hold draws use the adversary's own rng, like every existing policy.
"""

from __future__ import annotations

import random

from repro.adversary.base import CycleContext, DeliveryPolicy
from repro.engine.seeds import MODEL_LINK_STREAM, derive_keyed
from repro.faults.plan import FaultPlan
from repro.sim.message import MessageId
from repro.sim.pattern import PendingMessage

#: Granular synchrony's per-link classes.
SYNC, PSYNC, ASYNC = "sync", "psync", "async"


class _ModelPolicy(DeliveryPolicy):
    """Shared chassis: severed-link filtering + memoised per-message holds."""

    def __init__(self, K: int, seed: int, plan: FaultPlan | None = None):
        self.K = K
        self.seed = seed
        self.plan = plan
        self._hold: dict[MessageId, int] = {}

    def _hold_cycles(self, message: PendingMessage, ctx: CycleContext) -> int:
        assigned = self._hold.get(message.message_id)
        if assigned is None:
            assigned = self._draw_hold(message, ctx)
            self._hold[message.message_id] = assigned
        return assigned

    def _draw_hold(self, message: PendingMessage, ctx: CycleContext) -> int:
        raise NotImplementedError

    def _deliverable(
        self, message: PendingMessage, ctx: CycleContext
    ) -> bool:
        return ctx.age_in_cycles(message) >= self._hold_cycles(message, ctx)

    def select(self, view, pid, pending, ctx):
        plan = self.plan
        chosen = []
        for message in pending:
            if plan is not None and plan.severed(
                message.sender, pid, ctx.cycle
            ):
                continue
            if self._deliverable(message, ctx):
                chosen.append(message.message_id)
        return tuple(chosen)


class GranularPolicy(_ModelPolicy):
    """Granular synchrony: per-link sync/psync/async classes (2408.12853).

    Every directed link is assigned one class, deterministically from
    the model seed: **sync** links deliver at the recipient's next cycle
    (within any ``K >= 1``); **psync** links are arbitrarily late before
    the global stabilisation time and K-bounded after it; **async**
    links have no on-time bound but still deliver within a finite cap,
    so the network as a whole preserves eventual delivery.
    """

    def __init__(
        self,
        K: int,
        seed: int,
        plan: FaultPlan | None = None,
        sync_fraction: float = 0.34,
        psync_fraction: float = 0.33,
        gst_cycles: int | None = None,
        psync_pre_gst_max: int | None = None,
        async_max: int | None = None,
    ) -> None:
        super().__init__(K, seed, plan)
        self.sync_fraction = sync_fraction
        self.psync_fraction = psync_fraction
        self.gst_cycles = 3 * K if gst_cycles is None else gst_cycles
        self.psync_pre_gst_max = (
            3 * K if psync_pre_gst_max is None else psync_pre_gst_max
        )
        self.async_max = 4 * K if async_max is None else async_max
        self._classes: dict[tuple[int, int], str] = {}

    def link_class(self, sender: int, recipient: int) -> str:
        """The directed link's class, assigned once by keyed hashing."""
        key = (sender, recipient)
        assigned = self._classes.get(key)
        if assigned is None:
            draw = random.Random(
                derive_keyed(self.seed, MODEL_LINK_STREAM, sender, recipient)
            ).random()
            if draw < self.sync_fraction:
                assigned = SYNC
            elif draw < self.sync_fraction + self.psync_fraction:
                assigned = PSYNC
            else:
                assigned = ASYNC
            self._classes[key] = assigned
        return assigned

    def _draw_hold(self, message: PendingMessage, ctx: CycleContext) -> int:
        cls = self.link_class(message.sender, message.recipient)
        if cls == SYNC:
            return 1
        if cls == PSYNC:
            send_cycle = ctx.event_cycles[message.send_event]
            if send_cycle < self.gst_cycles:
                return ctx.rng.randint(1, max(1, self.psync_pre_gst_max))
            return ctx.rng.randint(1, self.K)
        return ctx.rng.randint(1, max(1, self.async_max))


class RandomAsyncPolicy(_ModelPolicy):
    """The random asynchronous model (2502.09116): seeded random holds.

    Delivery timing is drawn from a capped geometric distribution
    instead of chosen adversarially; with probability
    ``worst_case_probability`` a message instead gets the worst-case
    hold, the knob that interpolates back toward the adversarial model.
    All holds are finite, so eventual delivery is preserved.
    """

    def __init__(
        self,
        K: int,
        seed: int,
        plan: FaultPlan | None = None,
        delivery_rate: float = 0.45,
        worst_case_probability: float = 0.05,
        worst_case_hold: int | None = None,
        max_hold: int | None = None,
    ) -> None:
        super().__init__(K, seed, plan)
        self.delivery_rate = delivery_rate
        self.worst_case_probability = worst_case_probability
        self.worst_case_hold = 3 * K if worst_case_hold is None else worst_case_hold
        self.max_hold = 4 * K if max_hold is None else max_hold

    def _draw_hold(self, message: PendingMessage, ctx: CycleContext) -> int:
        if (
            self.worst_case_probability
            and ctx.rng.random() < self.worst_case_probability
        ):
            return self.worst_case_hold
        hold = 1
        while hold < self.max_hold and ctx.rng.random() >= self.delivery_rate:
            hold += 1
        return hold


class RoundClosedPolicy(_ModelPolicy):
    """Communication-closed rounds (1804.07078): miss your round, drop.

    Cycle time is blocked into rounds of ``round_cycles``; a message is
    deliverable only inside the round it was sent in.  Holds are drawn
    up to ``hold_max``, so a message sent near its round boundary can
    genuinely miss the round and be dropped permanently — this model
    does **not** preserve eventual delivery, and the paper's nonblocking
    guarantee is void under it (safety must still hold).
    """

    def __init__(
        self,
        K: int,
        seed: int,
        plan: FaultPlan | None = None,
        round_cycles: int | None = None,
        hold_max: int | None = None,
    ) -> None:
        super().__init__(K, seed, plan)
        self.round_cycles = 3 * K if round_cycles is None else round_cycles
        self.hold_max = K if hold_max is None else hold_max

    def _draw_hold(self, message: PendingMessage, ctx: CycleContext) -> int:
        return ctx.rng.randint(1, max(1, self.hold_max))

    def _deliverable(self, message, ctx):
        send_cycle = ctx.event_cycles[message.send_event]
        deadline = (send_cycle // self.round_cycles + 1) * self.round_cycles
        if ctx.cycle >= deadline:
            # The round closed; the message is dropped for good.  The
            # hold must still be drawn (and memoised) first so dropping
            # never perturbs the rng stream of later messages.
            self._hold_cycles(message, ctx)
            return False
        return ctx.age_in_cycles(message) >= self._hold_cycles(message, ctx)
