"""The non-realistic members of the timing-model zoo.

Each model here compiles a :class:`~repro.faults.plan.FaultPlan` to a
sim-track adversary that keeps the plan's crashes and partitions but
replaces its link timing with the model's own (see
:mod:`repro.models.policies`), and — where the model restricts rather
than randomises scheduling — supplies a model-checker choice classifier
(:mod:`repro.models.mcfilter`).  Granular synchrony additionally maps
onto the runtime track as per-class link-delay overrides.

None of these adversaries are on the fast core's sweep whitelist:
selecting them falls back to the byte-identical ``FastSimulation`` path,
counted by the ``sim_fastcore_fallbacks_total`` telemetry counter.
"""

from __future__ import annotations

import dataclasses

from repro.adversary.base import CrashAt, CycleAdversary
from repro.faults.plan import FaultPlan, LinkDelay
from repro.models import mcfilter
from repro.models.base import Knob, TimingModel, register
from repro.models.policies import (
    ASYNC,
    PSYNC,
    SYNC,
    GranularPolicy,
    RandomAsyncPolicy,
    RoundClosedPolicy,
)


class _PolicyModel(TimingModel):
    """Shared plan-compilation chassis for policy-backed models."""

    def compile_plan(self, plan: FaultPlan, K: int, seed: int):
        return CycleAdversary(
            seed=seed,
            delivery=self._policy(K=K, seed=seed, plan=plan),
            crash_plan=[
                CrashAt(pid=c.pid, cycle=c.cycle) for c in plan.crashes
            ],
        )

    def _policy(self, K: int, seed: int, plan: FaultPlan | None = None):
        raise NotImplementedError


class GranularModel(_PolicyModel):
    """Granular synchrony: mixed sync/psync/async links with GST."""

    name = "granular"
    summary = (
        "per-link synchrony classes (sync/psync/async) with per-class "
        "delay bounds and a global stabilisation time"
    )
    source = "Granular Synchrony (arXiv 2408.12853)"
    tracks = ("sim", "runtime")
    mc_supported = True
    fastcore_whitelisted = False
    preserves_eventual_delivery = True
    knobs = (
        Knob("sync_fraction", 0.34, "fraction of links that are synchronous"),
        Knob(
            "psync_fraction",
            0.33,
            "fraction of links that are partially synchronous "
            "(the rest are asynchronous)",
        ),
        Knob("gst_cycles", "3*K", "global stabilisation time, in cycles"),
        Knob(
            "psync_pre_gst_max",
            "3*K",
            "largest psync-link hold before GST, in cycles",
        ),
        Knob("async_max", "4*K", "largest async-link hold, in cycles"),
    )

    def _policy(self, K, seed, plan=None):
        return GranularPolicy(K=K, seed=seed, plan=plan)

    def runtime_plan(self, plan: FaultPlan, K: int) -> FaultPlan:
        """Granular links as per-link delay overrides on the transport.

        The runtime transport already executes per-link delay windows;
        mapping each directed link's class onto its per-class bound is
        the model's faithful runtime analogue.  The plan's own
        link_delays are replaced (the model owns link timing); crashes,
        partitions, and loss entries ride through unchanged.
        """
        policy = GranularPolicy(K=K, seed=plan.seed)
        bounds = {
            SYNC: (1, 1),
            PSYNC: (1, policy.psync_pre_gst_max),
            ASYNC: (1, policy.async_max),
        }
        delays = tuple(
            LinkDelay(
                sender=sender,
                recipient=recipient,
                min_cycles=bounds[policy.link_class(sender, recipient)][0],
                max_cycles=bounds[policy.link_class(sender, recipient)][1],
            )
            for sender in range(plan.n)
            for recipient in range(plan.n)
            if sender != recipient
        )
        return dataclasses.replace(plan, link_delays=delays)

    def mc_classifier(self, config):
        return mcfilter.granular_classifier(config)


class RandomAsyncModel(_PolicyModel):
    """The random asynchronous model: seeded random scheduling."""

    name = "random-async"
    summary = (
        "delivery timing drawn from a seeded capped-geometric "
        "distribution instead of adversarial choice"
    )
    source = "random asynchronous model (arXiv 2502.09116)"
    tracks = ("sim",)
    mc_supported = True
    fastcore_whitelisted = False
    preserves_eventual_delivery = True
    knobs = (
        Knob(
            "delivery_rate",
            0.45,
            "per-cycle geometric delivery probability",
        ),
        Knob(
            "worst_case_probability",
            0.05,
            "chance a message draws the worst-case hold instead "
            "(interpolates back toward the adversarial model)",
        ),
        Knob("worst_case_hold", "3*K", "the worst-case hold, in cycles"),
        Knob("max_hold", "4*K", "hard cap on any hold, in cycles"),
    )

    def _policy(self, K, seed, plan=None):
        return RandomAsyncPolicy(K=K, seed=seed, plan=plan)

    def mc_classifier(self, config):
        return mcfilter.random_async_classifier(config)


class RoundClosedModel(_PolicyModel):
    """Communication-closed rounds: miss your round and be dropped."""

    name = "round-closed"
    summary = (
        "communication-closed rounds: messages not delivered in the "
        "round they were sent are dropped permanently"
    )
    source = "communication-closed protocols (arXiv 1804.07078)"
    tracks = ("sim",)
    mc_supported = True
    fastcore_whitelisted = False
    preserves_eventual_delivery = False
    knobs = (
        Knob("round_cycles", "3*K", "cycles per communication-closed round"),
        Knob("hold_max", "K", "largest in-round hold, in cycles"),
    )

    def _policy(self, K, seed, plan=None):
        return RoundClosedPolicy(K=K, seed=seed, plan=plan)

    def mc_classifier(self, config):
        return mcfilter.round_closed_classifier(config)


register(GranularModel())
register(RandomAsyncModel())
register(RoundClosedModel())
