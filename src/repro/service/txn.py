"""Transaction instances: many concurrent Protocol 2 runs on one node.

The paper's protocol decides a *single* transaction.  A commit service
has to decide a stream of them, so the service layer hosts one protocol
instance per transaction id and multiplexes all of them over the node's
single transport identity:

* **Instances.**  :class:`TxnInstance` wraps one hosted
  :class:`~repro.sim.process.SimProcess` (or, once the transaction is
  durably decided and compacted away, a memory-light *closed stub* that
  remembers only the decision).  Each instance draws its own random
  tape and initial vote from keyed streams off the node's tape seed
  (:func:`txn_tape_seed`, :func:`txn_vote`); the default transaction
  (:data:`~repro.service.wire.DEFAULT_TXN`) keeps the node's own seed
  and configured vote, so single-transaction (v1) logs replay
  byte-identically.

* **The multiplexer.**  :class:`InstanceMux` is the single stepping
  authority shared by the live node (:mod:`repro.service.node`) and
  WAL replay (:mod:`repro.service.recovery`): one call of
  :meth:`InstanceMux.apply_step` routes a delivered batch's payload
  groups to their instances, steps every instance that has work, and
  merges the outgoing traffic of all instances into one payload-group
  list per recipient — one envelope per ``(destination, flush)``.
  Because live stepping and replay run the *same* code over the same
  logged inputs, restart-by-replay stays byte-identical per instance
  (the communication-closed-rounds argument: per-instance tagging
  makes the interleaved run analyzable as independent runs).

* **Sharding.**  :class:`ShardMap` statically partitions transaction
  ids across independent coordinator/participant groups laid out on
  one shared transport pid space; group ``g`` owns wire pids
  ``[g * group_size, (g + 1) * group_size)`` and its local pid 0 is
  the coordinator of every transaction the map assigns to ``g``.

Lazy instance creation is protocol-safe: a participant's instance is
created when the first message of that transaction arrives, and every
Protocol 2 message carries the GO payload the participant's opening
wait needs (the coordinator broadcasts GO at its first step and the
protocol piggybacks it thereafter), so a late-created instance starts
its 2K-tick timeout windows from its own local clock.
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

from repro.core.messages import GoMessage, StageMessage, VoteMessage
from repro.engine.seeds import (
    SERVICE_TXN_TAPE_STREAM,
    SERVICE_TXN_VOTE_STREAM,
    derive_keyed,
)
from repro.errors import ServiceError
from repro.faults.variants import resolve_variant
from repro.service.wire import (
    DEFAULT_TXN,
    PayloadGroup,
    payload_from_dict,
    payload_to_dict,
)
from repro.sim.message import Payload, ReceivedPayload
from repro.sim.process import SimProcess
from repro.sim.tape import RandomTape


# -- sharding ------------------------------------------------------------------


@dataclass(frozen=True)
class ShardMap:
    """Static assignment of transaction ids to commit groups.

    Attributes:
        shards: number of independent commit groups.
        group_size: processors per group (the protocol's ``n``).
    """

    shards: int
    group_size: int

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ServiceError(f"need at least one shard, got {self.shards}")
        if self.group_size < 1:
            raise ServiceError(
                f"need at least one node per group, got {self.group_size}"
            )

    @property
    def total_pids(self) -> int:
        """Wire pids across all groups (the transport's address space)."""
        return self.shards * self.group_size

    def group_of(self, txn_id: int) -> int:
        """The commit group that owns ``txn_id``."""
        return txn_id % self.shards

    def base(self, group: int) -> int:
        """First wire pid of ``group`` (its local pid 0)."""
        return group * self.group_size

    def coordinator(self, txn_id: int) -> int:
        """Wire pid of the coordinator deciding ``txn_id``."""
        return self.base(self.group_of(txn_id))

    def members(self, group: int) -> range:
        """Wire pids of ``group``'s processors."""
        start = self.base(group)
        return range(start, start + self.group_size)

    def group_of_pid(self, wire_pid: int) -> int:
        """The commit group a wire pid belongs to."""
        return wire_pid // self.group_size


# -- per-transaction derivations -----------------------------------------------


def txn_tape_seed(tape_seed: int, txn_id: int) -> int:
    """The random-tape seed of one hosted transaction instance.

    Transaction 0 keeps the node's own tape seed so v1 logs replay
    byte-identically; every other transaction draws an independent
    keyed stream off it.
    """
    if txn_id == DEFAULT_TXN:
        return tape_seed
    return derive_keyed(tape_seed, SERVICE_TXN_TAPE_STREAM, txn_id)


def txn_vote(config: Any, txn_id: int) -> int:
    """The initial vote this node casts for ``txn_id``.

    Transaction 0 uses the configured vote (v1 behaviour); other
    transactions draw a Bernoulli(``commit_bias``) vote from a keyed
    stream, so a workload can mix commit- and abort-leaning traffic
    deterministically per (node, transaction).
    """
    if txn_id == DEFAULT_TXN:
        return config.vote
    bias = getattr(config, "commit_bias", 1.0)
    if bias >= 1.0:
        return 1
    rng = random.Random(
        derive_keyed(config.tape_seed, SERVICE_TXN_VOTE_STREAM, txn_id)
    )
    return 1 if rng.random() < bias else 0


def build_instance_process(config: Any, txn_id: int) -> SimProcess:
    """A fresh process at step 0 hosting ``txn_id`` under ``config``."""
    program_cls = resolve_variant(config.variant)
    program = program_cls(
        pid=config.pid,
        n=config.n,
        t=config.t,
        initial_vote=txn_vote(config, txn_id),
        K=config.K,
        allow_sub_resilience=True,
    )
    return SimProcess(
        program, RandomTape(seed=txn_tape_seed(config.tape_seed, txn_id))
    )


def state_digest(process: SimProcess) -> str:
    """A canonical hash of one instance's observable protocol state.

    Covers the clock, lifecycle status, decision (value and clock), and
    the bulletin board in receipt order — everything the protocol's
    future behaviour depends on besides the (seed-determined) tape.
    """
    board = [
        [entry.sender, payload_to_dict(entry.payload), entry.receive_clock]
        for entry in process.board.entries()
    ]
    doc = {
        "clock": process.clock,
        "status": process.status.name,
        "decision": process.decision,
        "decision_clock": process.decision_clock,
        "board": board,
    }
    body = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(body.encode("utf-8")).hexdigest()


# -- WAL forms of per-transaction data ------------------------------------------


def tag_txn(txn_id: int, record: dict[str, Any]) -> dict[str, Any]:
    """Tag a WAL record with its transaction id.

    The default transaction stays untagged, so v1 single-transaction
    WALs are byte-identical to what the pre-multiplexer service wrote.
    """
    if txn_id != DEFAULT_TXN:
        record["txn"] = txn_id
    return record


def groups_to_wal(groups: Sequence[PayloadGroup]) -> Any:
    """The WAL form of one batch entry's payload groups.

    A single default-transaction group encodes as the v1 payload list;
    anything else encodes as ``{"g": [[txn, payloads], ...]}``, which
    v1 never wrote.
    """
    if len(groups) == 1 and groups[0][0] == DEFAULT_TXN:
        return [payload_to_dict(p) for p in groups[0][1]]
    if not groups:
        return []
    return {
        "g": [
            [txn, [payload_to_dict(p) for p in payloads]]
            for txn, payloads in groups
        ]
    }


def wal_to_groups(elem: Any) -> list[tuple[int, list[Payload]]]:
    """Decode a batch entry's payload slot (either WAL form)."""
    if isinstance(elem, dict):
        return [
            (int(txn), [payload_from_dict(doc) for doc in docs])
            for txn, docs in elem["g"]
        ]
    if elem:
        return [(DEFAULT_TXN, [payload_from_dict(doc) for doc in elem])]
    return []


# -- instances -------------------------------------------------------------------


@dataclass
class TxnInstance:
    """One transaction's state on one node.

    Either *live* (``process`` is a stepping state machine) or a
    *closed stub* (``process is None``): once a decision is durably
    logged, snapshot compaction demotes the instance to a stub that
    remembers only the decision — its bulletin board and generator are
    freed, and later traffic for the transaction has no protocol
    effect (retransmissions were acknowledged by the step records that
    logged them; a stub hit triggers a targeted state transfer so a
    straggling peer can still settle).
    """

    txn_id: int
    process: SimProcess | None
    vote: int
    transfer_decision: int | None = None
    closed_value: int | None = None
    closed_origin: str | None = None
    submitted: bool = False
    decision_logged: bool = False
    decided_at: float | None = None
    vote_logged: bool = False
    coins_logged: bool = False
    rounds_logged: set[tuple[int, int]] = field(default_factory=set)

    @classmethod
    def open(cls, txn_id: int, config: Any) -> "TxnInstance":
        return cls(
            txn_id=txn_id,
            process=build_instance_process(config, txn_id),
            vote=txn_vote(config, txn_id),
        )

    @classmethod
    def closed(
        cls, txn_id: int, value: int | None, origin: str | None
    ) -> "TxnInstance":
        return cls(
            txn_id=txn_id,
            process=None,
            vote=0,
            closed_value=value,
            closed_origin=origin,
            decision_logged=True,
        )

    @property
    def decision(self) -> int | None:
        """The effective decision: protocol-decided, transferred, or
        remembered by a closed stub."""
        if self.process is not None and self.process.decision is not None:
            return self.process.decision
        if self.transfer_decision is not None:
            return self.transfer_decision
        return self.closed_value

    @property
    def decision_origin(self) -> str | None:
        if self.process is not None and self.process.decision is not None:
            return "process"
        if self.transfer_decision is not None:
            return "transfer"
        return self.closed_origin

    @property
    def settled(self) -> bool:
        """Nothing left for this instance to do (decided or closed)."""
        return self.process is None or self.decision is not None


@dataclass
class StepEffects:
    """What one multiplexer step produced.

    Attributes:
        outgoing: merged per-recipient payload groups (local pids), in
            deterministic first-appearance order — one envelope each.
        events: derived WAL records (vote/coins/round observability and
            per-transaction decision records), in append order.
        newly_decided: ``(txn_id, value, origin)`` per instance that
            reached a decision during this step.
        closed_hits: ``(local_sender, txn_id)`` per payload group that
            was routed to a closed stub.
    """

    outgoing: list[tuple[int, list[PayloadGroup]]] = field(
        default_factory=list
    )
    events: list[dict[str, Any]] = field(default_factory=list)
    newly_decided: list[tuple[int, int, str]] = field(default_factory=list)
    closed_hits: list[tuple[int, int]] = field(default_factory=list)


class InstanceMux:
    """Routes batches to per-transaction instances; the step authority.

    One mux instance backs a live node *and* its WAL replay: both feed
    the same logged step batches through :meth:`apply_step`, so the
    reconstruction is byte-identical per instance by construction.

    In single-transaction mode (``config.multi_txn`` false) the default
    transaction's instance exists eagerly, reproducing the v1 node's
    behaviour exactly; in multi-transaction mode instances are created
    lazily — by ``submit`` on the coordinator, by first delivery on
    participants — and iterate in creation order, which the log replays
    deterministically.
    """

    def __init__(self, config: Any) -> None:
        self.config = config
        self.instances: dict[int, TxnInstance] = {}
        if not getattr(config, "multi_txn", False):
            self._create(DEFAULT_TXN)

    # -- instance management ---------------------------------------------------

    def _create(self, txn_id: int) -> TxnInstance:
        instance = TxnInstance.open(txn_id, self.config)
        self.instances[txn_id] = instance
        return instance

    def get(self, txn_id: int) -> TxnInstance | None:
        return self.instances.get(txn_id)

    def ensure(self, txn_id: int) -> TxnInstance:
        instance = self.instances.get(txn_id)
        if instance is None:
            instance = self._create(txn_id)
        return instance

    def close_txn(self, txn_id: int) -> TxnInstance:
        """Demote a decided instance to a closed stub (frees its state)."""
        live = self.instances[txn_id]
        stub = TxnInstance.closed(txn_id, live.decision, live.decision_origin)
        stub.submitted = live.submitted
        stub.decided_at = live.decided_at
        self.instances[txn_id] = stub
        return stub

    def closable_txns(self) -> list[int]:
        """Instances eligible for compaction into closed stubs: decided,
        with the decision durably logged."""
        return sorted(
            txn_id
            for txn_id, instance in self.instances.items()
            if instance.process is not None
            and instance.decision is not None
            and instance.decision_logged
        )

    # -- aggregate views ---------------------------------------------------------

    @property
    def primary(self) -> TxnInstance | None:
        """The default transaction's instance (the v1 view)."""
        return self.instances.get(DEFAULT_TXN)

    @property
    def idle(self) -> bool:
        """No instance has protocol work left (idle ticks need no log)."""
        return all(inst.settled for inst in self.instances.values())

    def decisions(self) -> dict[int, int]:
        """Every transaction this node has an effective decision for."""
        return {
            txn_id: inst.decision
            for txn_id, inst in self.instances.items()
            if inst.decision is not None
        }

    def decision_origins(self) -> dict[int, str]:
        return {
            txn_id: inst.decision_origin
            for txn_id, inst in self.instances.items()
            if inst.decision is not None
        }

    def undecided_txns(self) -> list[int]:
        """Live instances still awaiting a decision."""
        return sorted(
            txn_id
            for txn_id, inst in self.instances.items()
            if inst.decision is None and inst.process is not None
        )

    def digest(self) -> str:
        """Canonical hash of the whole multiplexer's observable state.

        Single-transaction mode returns the default instance's bare
        :func:`state_digest`, so v1 snapshots verify unchanged; in
        multi-transaction mode the digest covers every instance —
        including closed stubs — keyed by transaction id.
        """
        if not getattr(self.config, "multi_txn", False):
            return state_digest(self.instances[DEFAULT_TXN].process)
        doc: dict[str, Any] = {}
        for txn_id in sorted(self.instances):
            inst = self.instances[txn_id]
            if inst.process is None:
                doc[str(txn_id)] = {
                    "closed": [inst.closed_value, inst.closed_origin]
                }
            else:
                entry: dict[str, Any] = {"state": state_digest(inst.process)}
                if inst.transfer_decision is not None:
                    entry["transfer"] = inst.transfer_decision
                doc[str(txn_id)] = entry
        body = json.dumps(doc, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(body.encode("utf-8")).hexdigest()

    # -- stepping ------------------------------------------------------------------

    def apply_step(
        self, batch: Sequence[tuple[int, Iterable[PayloadGroup]]]
    ) -> StepEffects:
        """Apply one logged step: route the batch, step every instance
        with work, and merge the outgoing traffic.

        Args:
            batch: ``(local_sender, payload_groups)`` per delivered
                envelope, in delivery order.

        Instance stepping rules reproduce the v1 node's exactly when one
        instance exists: an undecided instance steps every call (idle
        ticks drive its timeout machinery), a decided instance steps
        only when the batch delivered payloads to it (absorbing), and a
        closed stub never steps.
        """
        effects = StepEffects()
        delivered: dict[int, list[ReceivedPayload]] = {}
        for sender, groups in batch:
            for txn_id, payloads in groups:
                instance = self.instances.get(txn_id)
                if instance is None:
                    instance = self._create(txn_id)
                if instance.process is None:
                    effects.closed_hits.append((sender, txn_id))
                    continue
                delivered.setdefault(txn_id, []).extend(
                    ReceivedPayload(
                        sender=sender,
                        payload=payload,
                        receive_clock=instance.process.clock + 1,
                    )
                    for payload in payloads
                )
        outgoing: dict[int, list[PayloadGroup]] = {}
        for txn_id, instance in self.instances.items():
            process = instance.process
            if process is None:
                continue
            inbound = delivered.get(txn_id)
            if instance.decision is not None and not inbound:
                continue
            sends = process.on_step(inbound or [])
            self._log_observables(instance, sends, effects)
            for recipient, payloads in sends:
                outgoing.setdefault(recipient, []).append(
                    (txn_id, tuple(payloads))
                )
            if process.decision is not None and not instance.decision_logged:
                instance.decision_logged = True
                effects.events.append(
                    tag_txn(
                        txn_id,
                        {
                            "type": "decision",
                            "value": process.decision,
                            "origin": "process",
                        },
                    )
                )
                effects.newly_decided.append(
                    (txn_id, process.decision, "process")
                )
        effects.outgoing = list(outgoing.items())
        return effects

    def _log_observables(
        self,
        instance: TxnInstance,
        sends: list[tuple[int, tuple[Payload, ...]]],
        effects: StepEffects,
    ) -> None:
        """Derive per-instance vote/coins/round records from the step's
        traffic (redundant for replay; kept for WAL readability)."""
        for _recipient, payloads in sends:
            for payload in payloads:
                if isinstance(payload, VoteMessage):
                    if not instance.vote_logged:
                        instance.vote_logged = True
                        effects.events.append(
                            tag_txn(
                                instance.txn_id,
                                {"type": "vote", "vote": payload.vote},
                            )
                        )
                elif isinstance(payload, GoMessage):
                    if not instance.coins_logged:
                        instance.coins_logged = True
                        effects.events.append(
                            tag_txn(
                                instance.txn_id,
                                {"type": "coins", "coins": list(payload.coins)},
                            )
                        )
                elif isinstance(payload, StageMessage):
                    key = (payload.phase, payload.stage)
                    if key not in instance.rounds_logged:
                        instance.rounds_logged.add(key)
                        effects.events.append(
                            tag_txn(
                                instance.txn_id,
                                {
                                    "type": "round",
                                    "phase": payload.phase,
                                    "stage": payload.stage,
                                },
                            )
                        )
