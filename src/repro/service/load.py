"""Open-loop load generation for the multi-transaction commit service.

Drives a sustained submission schedule through a sharded virtual-clock
cluster (:mod:`repro.service.cluster`) and measures what the ROADMAP's
north star asks about: transactions per (virtual) second and the
p50/p99 submission-to-group-decision latency.  The generator is
*open-loop* — arrivals follow the schedule regardless of how far
earlier transactions have progressed — so it measures the service
under offered load rather than a lock-step ping-pong.

Every run is deterministic in ``(txns, rate, shards, seed, plan)``:
virtual time makes the numbers machine-independent, so a throughput
floor can be asserted in CI without flaking on slow runners.  Optional
kill/recover fault injection (:func:`kill_recover_plan`) exercises the
crash-recovery path under load; the report counts per-transaction
agreement violations (always expected to be zero) alongside the
performance numbers.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any

from repro.engine.seeds import SERVICE_NODE_STREAM, derive_keyed
from repro.faults.plan import CrashFault, FaultPlan
from repro.runtime.virtualtime import run_virtual
from repro.service.cluster import (
    ServiceCluster,
    TxnWorkload,
    shard_configs,
)
from repro.service.txn import ShardMap
from repro.telemetry import registry as telemetry
from repro.telemetry.log import get_logger

_log = get_logger("service.load")


def percentile(values: list[float], q: float) -> float:
    """Nearest-rank percentile of ``values`` (``q`` in [0, 1])."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(1, min(len(ordered), int(round(q * len(ordered) + 0.5))))
    return ordered[rank - 1]


def kill_recover_plan(
    shards: int,
    group_size: int,
    kills: int,
    seed: int,
    window_cycles: int,
    tolerance: int,
) -> FaultPlan:
    """A seeded kill/recover schedule for a load run.

    Draws ``kills`` crash-recovery faults across the cluster, at most
    ``tolerance`` concurrent victims per commit group (the protocol's
    ``t``), each landing inside the submission window and recovering
    within a bounded downtime — the sustained-traffic analogue of the
    campaign's kill/recover schedules.
    """
    total = shards * group_size
    rng = random.Random(derive_keyed(seed, SERVICE_NODE_STREAM, 0x10AD))
    per_group: dict[int, int] = {}
    crashes: list[CrashFault] = []
    attempts = 0
    while len(crashes) < kills and attempts < kills * 20:
        attempts += 1
        pid = rng.randrange(total)
        group = pid // group_size
        if per_group.get(group, 0) >= tolerance:
            continue
        if any(crash.pid == pid for crash in crashes):
            continue
        cycle = rng.randrange(4, max(5, window_cycles))
        recover = cycle + rng.randrange(16, 64)
        crashes.append(
            CrashFault(pid=pid, cycle=cycle, recover_cycle=recover)
        )
        per_group[group] = per_group.get(group, 0) + 1
    return FaultPlan(n=total, crashes=tuple(crashes))


@dataclass
class LoadReport:
    """What one load run measured (all times in virtual seconds)."""

    txns: int
    shards: int
    group_size: int
    offered_rate: float
    seed: int
    kills: int
    outcome: str
    submitted: int
    decided: int
    recoveries: int
    makespan: float
    throughput: float
    p50_latency: float
    p99_latency: float
    mean_latency: float
    safety_violations: int
    undecided: dict[int, list[int]] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "txns": self.txns,
            "shards": self.shards,
            "group_size": self.group_size,
            "offered_rate_txn_per_s": self.offered_rate,
            "seed": self.seed,
            "kills": self.kills,
            "outcome": self.outcome,
            "submitted": self.submitted,
            "decided": self.decided,
            "recoveries": self.recoveries,
            "makespan_s": self.makespan,
            "throughput_txn_per_s": self.throughput,
            "p50_latency_s": self.p50_latency,
            "p99_latency_s": self.p99_latency,
            "mean_latency_s": self.mean_latency,
            "safety_violations": self.safety_violations,
            "undecided": {
                str(pid): txns for pid, txns in sorted(self.undecided.items())
            },
        }


def run_load(
    *,
    txns: int,
    rate: float,
    shards: int = 1,
    group_size: int = 5,
    t: int | None = None,
    K: int = 4,
    seed: int = 0,
    tick_interval: float = 0.002,
    kills: int = 0,
    commit_bias: float = 1.0,
    snapshot_every: int = 32,
    deadline: float | None = None,
    variant: str = "commit",
) -> LoadReport:
    """Run one open-loop load burst on the virtual clock.

    Args:
        txns: transactions to submit.
        rate: offered arrival rate, transactions per virtual second.
        shards: independent commit groups.
        group_size: processors per group.
        t: crash tolerance per group (default ``(group_size - 1) // 2``).
        K: the protocol's coin-list length.
        seed: trial seed (tapes, bus faults, kill schedule).
        tick_interval: virtual seconds per protocol step.
        kills: kill/recover faults to inject during the burst.
        commit_bias: Bernoulli parameter of derived per-txn votes.
        snapshot_every: node snapshot-compaction period in steps.
        deadline: virtual-time budget (default: submission window plus
            a recovery-sized tail).
        variant: hosted protocol program.
    """
    if t is None:
        t = (group_size - 1) // 2
    window_s = txns / rate
    window_cycles = int(window_s / tick_interval) + 1
    if deadline is None:
        deadline = window_s + max(4.0, 512 * tick_interval)
    plan = None
    if kills:
        plan = kill_recover_plan(
            shards, group_size, kills, seed, window_cycles, t
        )
    shard_map = ShardMap(shards=shards, group_size=group_size)
    cluster = ServiceCluster(
        shard_configs(
            shards,
            group_size,
            t,
            K,
            seed,
            variant=variant,
            commit_bias=commit_bias,
        ),
        plan,
        seed=seed,
        tick_interval=tick_interval,
        snapshot_every=snapshot_every,
        K=K,
        workload=TxnWorkload.open_loop(txns, rate, tick_interval),
        shard_map=shard_map,
    )
    result = run_virtual(cluster.run(deadline=deadline))

    latencies = sorted(result.txn_latency.values())
    decided = len(result.txn_latency)
    makespan = 0.0
    if cluster.txn_decided_at and cluster.txn_submitted_at:
        makespan = max(cluster.txn_decided_at.values()) - min(
            cluster.txn_submitted_at.values()
        )
    throughput = decided / makespan if makespan > 0 else 0.0
    violations = sum(
        1
        for values in result.txn_decision_values().values()
        if len(values) > 1
    )
    if telemetry.enabled():
        for latency in latencies:
            telemetry.observe(
                "service_txn_decision_seconds",
                latency,
                help="submission-to-group-decision latency",
                shards=shards,
            )
    report = LoadReport(
        txns=txns,
        shards=shards,
        group_size=group_size,
        offered_rate=rate,
        seed=seed,
        kills=kills,
        outcome=result.outcome,
        submitted=len(result.submitted_txns),
        decided=decided,
        recoveries=result.recoveries,
        makespan=makespan,
        throughput=throughput,
        p50_latency=percentile(latencies, 0.50),
        p99_latency=percentile(latencies, 0.99),
        mean_latency=sum(latencies) / len(latencies) if latencies else 0.0,
        safety_violations=violations,
        undecided=result.undecided,
    )
    _log.info(
        "load: %d txns over %d shard(s) at %.0f txn/s offered -> "
        "%.0f txn/s decided, p50=%.4fs p99=%.4fs, %d violation(s)",
        txns,
        shards,
        rate,
        throughput,
        report.p50_latency,
        report.p99_latency,
        violations,
    )
    return report
