"""Client helpers for the TCP commit service.

Clients are not cluster members: they send envelopes with ``sender =
-1`` and the server answers inline on the same connection
(:mod:`repro.service.server`).  Two requests exist — ``submit``
(release the coordinator's held transaction) and ``state-query``
(decision + full node status).  The helpers here are small sync
wrappers the CLI and the crash demo share.
"""

from __future__ import annotations

import asyncio
from typing import Any

from repro.errors import ServiceError
from repro.service.wire import ServiceEnvelope


async def request(
    host: str, port: int, envelope: ServiceEnvelope, timeout: float = 5.0
) -> ServiceEnvelope:
    """Send one client envelope and await the inline reply."""
    reader, writer = await asyncio.wait_for(
        asyncio.open_connection(host, port), timeout=timeout
    )
    try:
        writer.write(envelope.encode())
        await writer.drain()
        line = await asyncio.wait_for(reader.readline(), timeout=timeout)
    finally:
        writer.close()
    if not line:
        raise ServiceError(f"no reply from {host}:{port}")
    return ServiceEnvelope.decode(line)


def submit(host: str, port: int, timeout: float = 5.0) -> dict[str, Any]:
    """Release the transaction held at ``host:port`` (the coordinator).

    Returns the node's status dict from the acknowledgement.
    """
    reply = asyncio.run(
        request(
            host, port, ServiceEnvelope(kind="submit", sender=-1), timeout
        )
    )
    return reply.body.get("status", {})


def status(host: str, port: int, timeout: float = 5.0) -> dict[str, Any]:
    """One node's status: pid, incarnation, decision, steps, records."""
    reply = asyncio.run(
        request(
            host,
            port,
            ServiceEnvelope(kind="state-query", sender=-1),
            timeout,
        )
    )
    body = dict(reply.body.get("status", {}))
    body.setdefault("decision", reply.body.get("decision"))
    return body
