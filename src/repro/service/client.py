"""Client helpers for the TCP commit service.

Clients are not cluster members: they send envelopes with ``sender =
-1`` and the server answers inline on the same connection
(:mod:`repro.service.server`).  Two requests exist — ``submit``
(release a transaction at its coordinator, optionally a specific
``txn`` of a multi-transaction node) and ``state-query`` (decision +
full node status).  The helpers here are small sync wrappers the CLI
and the crash demo share.

Connection hygiene matters here: these helpers run inside long-lived
tools (the crash demo polls status in a loop), so every path —
including timeouts — must release the socket.  ``asyncio.wait_for``
around ``open_connection`` has a well-known hazard: the connection can
finish being established in the same event-loop step the timeout
fires, in which case ``wait_for`` raises ``TimeoutError`` while the
freshly created transport is left open with no reference to close.
:func:`open_connection` guards that race, and :func:`request` closes
the writer (and waits for the close) on every exit path.
"""

from __future__ import annotations

import asyncio
import contextlib
from typing import Any

from repro.errors import ServiceError
from repro.service.wire import ServiceEnvelope


async def open_connection(
    host: str, port: int, timeout: float
) -> tuple[asyncio.StreamReader, asyncio.StreamWriter]:
    """``asyncio.open_connection`` with a leak-proof timeout.

    Runs the connect as a task so that when the timeout and the
    connect's completion race, the already-created transport is
    retrieved from the finished task and closed instead of leaking.
    """
    task = asyncio.ensure_future(asyncio.open_connection(host, port))
    try:
        return await asyncio.wait_for(asyncio.shield(task), timeout=timeout)
    except (asyncio.TimeoutError, asyncio.CancelledError):
        task.cancel()
        # The connect may have completed in the same loop step the
        # timeout fired (cancel() is then a no-op): close whatever
        # transport the abandoned task produced.
        task.add_done_callback(_close_abandoned)
        raise


def _close_abandoned(task: asyncio.Task) -> None:
    if task.cancelled() or task.exception() is not None:
        return
    _reader, writer = task.result()
    writer.close()


async def request(
    host: str, port: int, envelope: ServiceEnvelope, timeout: float = 5.0
) -> ServiceEnvelope:
    """Send one client envelope and await the inline reply."""
    reader, writer = await open_connection(host, port, timeout)
    try:
        writer.write(envelope.encode())
        await writer.drain()
        line = await asyncio.wait_for(reader.readline(), timeout=timeout)
    finally:
        writer.close()
        with contextlib.suppress(OSError):
            await writer.wait_closed()
    if not line:
        raise ServiceError(f"no reply from {host}:{port}")
    return ServiceEnvelope.decode(line)


def submit(
    host: str, port: int, timeout: float = 5.0, txn: int = 0
) -> dict[str, Any]:
    """Release a transaction at ``host:port`` (its coordinator).

    ``txn = 0`` releases the node's default held transaction (the v1
    single-transaction service); a positive ``txn`` submits that
    transaction to a multi-transaction node.  Returns the node's status
    dict from the acknowledgement; a rejected submission (duplicate
    ``txn``, or an id already decided and compacted away) raises
    :class:`~repro.errors.ServiceError` with the server's reason.
    """
    body = {"txn": txn} if txn else {}
    reply = asyncio.run(
        request(
            host,
            port,
            ServiceEnvelope(kind="submit", sender=-1, body=body),
            timeout,
        )
    )
    if "error" in reply.body:
        raise ServiceError(reply.body["error"])
    return reply.body.get("status", {})


def status(host: str, port: int, timeout: float = 5.0) -> dict[str, Any]:
    """One node's status: pid, incarnation, decision(s), steps, records."""
    reply = asyncio.run(
        request(
            host,
            port,
            ServiceEnvelope(kind="state-query", sender=-1),
            timeout,
        )
    )
    body = dict(reply.body.get("status", {}))
    body.setdefault("decision", reply.body.get("decision"))
    return body
