"""Service clusters: co-hosted nodes under kill/recover fault schedules.

The deployable service runs one OS process per node (:mod:`repro.service.server`);
this module hosts a whole cluster inside one event loop so the fault
campaign can run thousands of crash-recovery trials on the virtual clock
(:func:`~repro.runtime.virtualtime.run_virtual`) with no real I/O.

The orchestrator realises a :class:`~repro.faults.plan.FaultPlan` in the
crash-*recovery* model: a :class:`~repro.faults.plan.CrashFault` at
cycle ``c`` cancels the node's tasks (losing all volatile state — the
SIGKILL analogue), and a ``recover_cycle`` builds a *fresh*
:class:`~repro.service.node.ServiceNode` over the same
:class:`~repro.service.wal.WalStore` — the store is the disk that
survives the process.  A kill can also leave a **torn tail** in the
store (a partial record mid-``write``), which the restarted node's WAL
repair must absorb; the orchestrator injects those with seeded
randomness so every campaign exercises the repair path.

Termination here is *service-level*: a node counts as done once it has
a decision, whether its protocol decided locally or the recovery
handshake transferred one.  The run ends when every node not
permanently crashed is done, or at the deadline (``NONTERMINATED``).
"""

from __future__ import annotations

import asyncio
import random
from dataclasses import dataclass, field

from repro.engine.seeds import SERVICE_NODE_STREAM, derive_keyed
from repro.errors import ConfigurationError, ServiceError
from repro.faults.plan import FaultPlan
from repro.faults.runtime_compile import PlanLinkFaults, plan_reliability
from repro.runtime.cluster import NONTERMINATED, TERMINATED
from repro.runtime.delays import DelayModel
from repro.service.bus import ServiceBus
from repro.service.node import ServiceNode, ServiceNodeSnapshot
from repro.service.recovery import NodeConfig
from repro.service.txn import DEFAULT_TXN, ShardMap
from repro.service.wal import MemoryWalStore, WalStore, encode_record
from repro.telemetry import registry as telemetry
from repro.telemetry.log import get_logger

_log = get_logger("service.cluster")


@dataclass(frozen=True)
class TxnSubmission:
    """One scheduled transaction submission (cycle units of the tick)."""

    txn_id: int
    at_cycle: float


@dataclass(frozen=True)
class TxnWorkload:
    """A deterministic submission schedule for a multi-transaction run."""

    submissions: tuple[TxnSubmission, ...]

    @classmethod
    def open_loop(
        cls,
        count: int,
        rate: float,
        tick_interval: float,
        first_txn: int = 1,
    ) -> "TxnWorkload":
        """An open-loop arrival process: ``count`` transactions at a
        fixed ``rate`` (transactions per virtual second), submitted on
        schedule regardless of how far earlier ones have progressed.
        """
        if count < 1:
            raise ConfigurationError(f"need at least one txn, got {count}")
        if rate <= 0:
            raise ConfigurationError(f"rate must be positive, got {rate}")
        return cls(
            submissions=tuple(
                TxnSubmission(
                    txn_id=first_txn + i,
                    at_cycle=(i / rate) / tick_interval,
                )
                for i in range(count)
            )
        )


def node_configs(
    n: int,
    t: int,
    votes: list[int] | tuple[int, ...],
    K: int,
    seed: int,
    variant: str = "commit",
) -> list[NodeConfig]:
    """One :class:`NodeConfig` per pid, with derived tape seeds."""
    if len(votes) != n:
        raise ConfigurationError(
            f"got {len(votes)} votes for n={n} processors"
        )
    return [
        NodeConfig(
            pid=pid,
            n=n,
            t=t,
            K=K,
            vote=int(vote),
            tape_seed=derive_keyed(seed, SERVICE_NODE_STREAM, pid),
            variant=variant,
        )
        for pid, vote in enumerate(votes)
    ]


def shard_configs(
    shards: int,
    group_size: int,
    t: int,
    K: int,
    seed: int,
    variant: str = "commit",
    commit_bias: float = 1.0,
) -> list[NodeConfig]:
    """Node configs of a sharded multi-transaction cluster.

    ``shards`` independent commit groups of ``group_size`` processors
    each, laid out contiguously on one wire pid space: group ``g`` owns
    wire pids ``[g * group_size, (g + 1) * group_size)`` and its local
    pid 0 coordinates every transaction :class:`ShardMap` assigns to it.
    Tape seeds are keyed by *wire* pid so no two nodes anywhere share a
    random stream.
    """
    shard_map = ShardMap(shards=shards, group_size=group_size)
    configs: list[NodeConfig] = []
    for group in range(shards):
        base = shard_map.base(group)
        for pid in range(group_size):
            configs.append(
                NodeConfig(
                    pid=pid,
                    n=group_size,
                    t=t,
                    K=K,
                    vote=1,
                    tape_seed=derive_keyed(
                        seed, SERVICE_NODE_STREAM, base + pid
                    ),
                    variant=variant,
                    multi_txn=True,
                    base=base,
                    commit_bias=commit_bias,
                )
            )
    return configs


@dataclass
class ServiceClusterResult:
    """Aggregated outcome of one service-cluster run.

    ``nodes`` holds each pid's final observable state (for a killed pid,
    the state of its last life).  ``permanently_crashed`` are the pids a
    plan killed without recovery — the fail-stop subset the safety
    monitor excludes from liveness obligations.

    Multi-transaction runs additionally report, per transaction: the
    submission-to-group-decision latency in virtual seconds
    (``txn_latency``), and — when the run hit its deadline — exactly
    which nodes were still undecided on which transactions
    (``undecided``), so a ``NONTERMINATED`` outcome is attributable
    rather than a bare timeout.
    """

    nodes: list[ServiceNodeSnapshot] = field(default_factory=list)
    outcome: str = TERMINATED
    permanently_crashed: set[int] = field(default_factory=set)
    recoveries: int = 0
    bus_stats: dict[str, int] = field(default_factory=dict)
    submitted_txns: list[int] = field(default_factory=list)
    txn_latency: dict[int, float] = field(default_factory=dict)
    undecided: dict[int, list[int]] = field(default_factory=dict)

    def decisions(self) -> dict[int, int | None]:
        return {s.pid: s.decision for s in self.nodes}

    def decision_values(self) -> set[int]:
        return {s.decision for s in self.nodes if s.decision is not None}

    def txn_decision_values(self) -> dict[int, set[int]]:
        """Per transaction, the set of values any node decided — a
        singleton per key iff the run was agreement-safe."""
        values: dict[int, set[int]] = {}
        for snapshot in self.nodes:
            for txn_id, value in (snapshot.txns or {}).items():
                values.setdefault(txn_id, set()).add(value)
        return values

    @property
    def consistent(self) -> bool:
        return len(self.decision_values()) <= 1

    @property
    def terminated(self) -> bool:
        return self.outcome == TERMINATED


class ServiceCluster:
    """Runs one commit over durable nodes under a kill/recover schedule.

    Args:
        configs: per-pid protocol configs (see :func:`node_configs`).
        plan: fault schedule; crashes become kill(/restart) events and
            link faults apply to every bus transmission.
        seed: trial seed (bus fault draws, torn-tail injection, node
            retransmission jitter).
        tick_interval: seconds per protocol step.
        delay: bus latency model.
        stores: per-pid durable stores; default fresh in-memory stores.
            Pass real :class:`~repro.service.wal.FileWalStore` instances
            to run the same orchestration over disks.
        fsync: WAL fsync policy for the nodes (pointless for memory
            stores, so the default is off; the TCP service syncs).
        snapshot_every: node snapshot-compaction period in steps.
        torn_tail_probability: chance that a kill leaves a partial
            record at the victim's log tail.
        workload: multi-transaction submission schedule; each
            transaction is submitted to its shard's coordinator on
            schedule (waiting out coordinator downtime).
        shard_map: transaction-to-group assignment (defaults to one
            group spanning the whole cluster).
    """

    def __init__(
        self,
        configs: list[NodeConfig],
        plan: FaultPlan | None = None,
        *,
        seed: int = 0,
        tick_interval: float = 0.002,
        delay: DelayModel | None = None,
        stores: list[WalStore] | None = None,
        fsync: bool = False,
        snapshot_every: int = 0,
        torn_tail_probability: float = 0.25,
        K: int = 4,
        workload: TxnWorkload | None = None,
        shard_map: ShardMap | None = None,
    ) -> None:
        if not configs:
            raise ConfigurationError("a cluster needs at least one node")
        self.configs = configs
        self.n = len(configs)
        self.plan = plan if plan is not None else FaultPlan(n=self.n)
        self.seed = seed
        self.tick_interval = tick_interval
        self.fsync = fsync
        self.snapshot_every = snapshot_every
        self.torn_tail_probability = torn_tail_probability
        self.workload = workload
        self.shard_map = shard_map or ShardMap(shards=1, group_size=self.n)
        if self.shard_map.total_pids != self.n:
            raise ConfigurationError(
                f"shard map covers {self.shard_map.total_pids} wire pids "
                f"but the cluster has {self.n} nodes"
            )
        self.submitted_txns: set[int] = set()
        self.unsubmittable: set[int] = set()
        self.txn_submitted_at: dict[int, float] = {}
        self.txn_decided_at: dict[int, float] = {}
        self.stores = (
            stores
            if stores is not None
            else [MemoryWalStore() for _ in configs]
        )
        if len(self.stores) != self.n:
            raise ConfigurationError(
                f"got {len(self.stores)} stores for {self.n} nodes"
            )
        self.bus = ServiceBus(
            n=self.n,
            seed=seed,
            delay=delay,
            link_faults=PlanLinkFaults(
                self.plan, tick_interval=tick_interval, K=K
            ),
        )
        self.reliability = plan_reliability(tick_interval)
        self.nodes: dict[int, ServiceNode] = {}
        self.permanently_crashed: set[int] = set()
        self.recoveries = 0
        self._live: dict[int, list[asyncio.Task]] = {}

    # -- node lifecycle ------------------------------------------------------

    def _spawn(self, pid: int) -> None:
        node = ServiceNode(
            self.configs[pid],
            self.stores[pid],
            self.bus.send,
            tick_interval=self.tick_interval,
            reliability=self.reliability,
            fsync=self.fsync,
            snapshot_every=self.snapshot_every,
            seed=self.seed,
        )
        self.nodes[pid] = node

        async def pump() -> None:
            while True:
                node.deliver(await self.bus.receive(pid))

        self._live[pid] = [
            asyncio.ensure_future(node.run()),
            asyncio.ensure_future(pump()),
        ]

    def _kill(self, pid: int, rng: random.Random) -> None:
        node = self.nodes.get(pid)
        if node is not None:
            node.halt()
        for task in self._live.pop(pid, []):
            task.cancel()
        self.bus.mark_down(pid)
        if rng.random() < self.torn_tail_probability:
            # Simulate a SIGKILL landing mid-append: a partial record at
            # the tail that the next life's WAL repair must discard.
            line = encode_record({"type": "step", "batch": []}).rstrip("\n")
            cut = rng.randint(1, max(1, len(line) - 1))
            self.stores[pid].append_line(line[:cut])
            if telemetry.enabled():
                telemetry.count(
                    "service_torn_tails_injected_total",
                    help="torn WAL tails injected by kill events",
                )

    # -- the run -------------------------------------------------------------

    async def _supervise(self, pid: int) -> None:
        loop = asyncio.get_running_loop()
        start = loop.time()
        rng = random.Random(
            derive_keyed(self.seed, SERVICE_NODE_STREAM, pid, 0xFA11)
        )
        schedule = sorted(
            (c for c in self.plan.crashes if c.pid == pid),
            key=lambda c: c.cycle,
        )
        self._spawn(pid)
        for fault in schedule:
            kill_at = start + fault.cycle * self.tick_interval
            await asyncio.sleep(max(0.0, kill_at - loop.time()))
            self._kill(pid, rng)
            _log.debug("p%d killed at cycle %d", pid, fault.cycle)
            if fault.recover_cycle is None:
                self.permanently_crashed.add(pid)
                return
            recover_at = start + fault.recover_cycle * self.tick_interval
            await asyncio.sleep(max(0.0, recover_at - loop.time()))
            self.bus.mark_up(pid)
            self.recoveries += 1
            self._spawn(pid)
            _log.debug("p%d restarted at cycle %d", pid, fault.recover_cycle)

    # -- multi-transaction traffic ---------------------------------------------

    def _group_members(self, txn_id: int) -> range:
        return self.shard_map.members(self.shard_map.group_of(txn_id))

    async def _drive_workload(self) -> None:
        """Submit the workload on schedule, each transaction to its
        shard's coordinator (waiting out coordinator downtime — the
        submit record is durable, so one accepted submission is enough).
        """
        assert self.workload is not None
        loop = asyncio.get_running_loop()
        start = loop.time()
        for submission in sorted(
            self.workload.submissions, key=lambda s: s.at_cycle
        ):
            target = start + submission.at_cycle * self.tick_interval
            await asyncio.sleep(max(0.0, target - loop.time()))
            await self._submit_txn(submission.txn_id)

    async def _submit_txn(self, txn_id: int) -> None:
        pid = self.shard_map.coordinator(txn_id)
        while True:
            node = self.nodes.get(pid)
            if pid in self._live and node is not None and node.ready:
                try:
                    node.submit_txn(txn_id)
                except ServiceError:
                    # A recovered coordinator already holds the durable
                    # submit record: the transaction is in flight.
                    pass
                self.submitted_txns.add(txn_id)
                self.txn_submitted_at.setdefault(
                    txn_id, asyncio.get_running_loop().time()
                )
                return
            if pid in self.permanently_crashed:
                self.unsubmittable.add(txn_id)
                _log.warning(
                    "txn %d unsubmittable: coordinator p%d is "
                    "permanently crashed",
                    txn_id,
                    pid,
                )
                return
            await asyncio.sleep(self.tick_interval)

    def _note_completions(self, now: float) -> None:
        """Record the first instant every non-crashed member of a
        transaction's group holds a decision for it."""
        for txn_id in self.submitted_txns:
            if txn_id in self.txn_decided_at:
                continue
            members = [
                pid
                for pid in self._group_members(txn_id)
                if pid not in self.permanently_crashed
            ]
            if members and all(
                pid in self._live
                and self.nodes.get(pid) is not None
                and txn_id in self.nodes[pid].decisions()
                for pid in members
            ):
                self.txn_decided_at[txn_id] = now

    def _undecided_map(self) -> dict[int, list[int]]:
        """Which nodes still lack decisions on which transactions —
        the structured content behind a ``NONTERMINATED`` outcome."""
        if self.workload is None:
            return {
                pid: [DEFAULT_TXN]
                for pid in range(self.n)
                if pid not in self.permanently_crashed
                and not (
                    pid in self._live
                    and self.nodes.get(pid) is not None
                    and self.nodes[pid].decision is not None
                )
            }
        pending: dict[int, list[int]] = {}
        for txn_id in sorted(self.submitted_txns):
            for pid in self._group_members(txn_id):
                if pid in self.permanently_crashed:
                    continue
                node = self.nodes.get(pid)
                if (
                    pid not in self._live
                    or node is None
                    or txn_id not in node.decisions()
                ):
                    pending.setdefault(pid, []).append(txn_id)
        return pending

    async def _all_done(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            if self.workload is not None:
                self._note_completions(loop.time())
                dispatched = len(self.submitted_txns) + len(
                    self.unsubmittable
                ) == len(self.workload.submissions)
                if dispatched and not self._undecided_map():
                    return
            else:
                done = all(
                    pid in self.permanently_crashed
                    or (
                        pid in self._live
                        and self.nodes[pid].decision is not None
                    )
                    for pid in range(self.n)
                )
                if done:
                    return
            await asyncio.sleep(self.tick_interval)

    async def run(self, deadline: float = 5.0) -> ServiceClusterResult:
        """Run the commit(s) to service-level termination or ``deadline``.

        A deadline expiry is reported as a structured outcome — the
        result's ``undecided`` map names every (node, transaction) pair
        still open — never as a bare ``TimeoutError``.
        """
        supervisors = [
            asyncio.ensure_future(self._supervise(pid))
            for pid in range(self.n)
        ]
        driver = None
        if self.workload is not None:
            driver = asyncio.ensure_future(self._drive_workload())
        undecided: dict[int, list[int]] = {}
        try:
            await asyncio.wait_for(self._all_done(), timeout=deadline)
            outcome = TERMINATED
        except asyncio.TimeoutError:
            outcome = NONTERMINATED
            undecided = self._undecided_map()
            _log.warning(
                "service run hit the %.3fs deadline; undecided: %s",
                deadline,
                {pid: txns for pid, txns in sorted(undecided.items())},
            )
        finally:
            for task in supervisors:
                task.cancel()
            if driver is not None:
                driver.cancel()
            for node in self.nodes.values():
                node.halt()
            for tasks in self._live.values():
                for task in tasks:
                    task.cancel()
            await asyncio.gather(
                *supervisors,
                *([driver] if driver is not None else []),
                *(t for tasks in self._live.values() for t in tasks),
                return_exceptions=True,
            )
        snapshots = [
            self.nodes[pid].snapshot_state()
            for pid in range(self.n)
            if pid in self.nodes
        ]
        if telemetry.enabled():
            telemetry.count(
                "service_runs_total", help="service cluster runs", outcome=outcome
            )
        return ServiceClusterResult(
            nodes=snapshots,
            outcome=outcome,
            permanently_crashed=set(self.permanently_crashed),
            recoveries=self.recoveries,
            bus_stats={
                "delivered": self.bus.delivered,
                "dropped": self.bus.dropped,
            },
            submitted_txns=sorted(self.submitted_txns),
            txn_latency={
                txn_id: self.txn_decided_at[txn_id]
                - self.txn_submitted_at[txn_id]
                for txn_id in self.txn_decided_at
                if txn_id in self.txn_submitted_at
            },
            undecided=undecided,
        )
