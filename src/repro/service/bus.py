"""In-memory message fabric for service clusters under test.

The deployable service speaks TCP (:mod:`repro.service.server`); the
campaign track swaps the sockets for this bus so thousands of
kill/recover trials run on the virtual-clock event loop with zero I/O.
Both transports carry the same :class:`~repro.service.wire.ServiceEnvelope`
and both are *dumb*: delivery is best-effort, at-most-once per attempt,
with sampled latency and optional plan-driven link faults.  All
reliability (retry-until-acked, dedup) lives in the node, because that
is the crash-recovery point of the exercise — the reliability state must
die with the process and be rebuilt from the WAL.

Down-node semantics mirror a real network: an envelope addressed to a
node that is down *at delivery time* is lost (the host isn't listening),
and killing a node drains its queue (undelivered-to-the-process bytes
lived in the dead process's memory).  The sender's retry loop, not the
fabric, recovers these losses.

Fault randomness is keyed per ``(sender, incarnation, seq, recipient,
attempt)`` via :data:`~repro.engine.seeds.SERVICE_ENVELOPE_STREAM`, so a
link's verdict for one transmission is independent of scheduling order —
the same schedule-independence discipline as the runtime transport.
"""

from __future__ import annotations

import asyncio
import random

from repro.engine.seeds import SERVICE_ENVELOPE_STREAM, derive_keyed
from repro.errors import ServiceError
from repro.runtime.delays import DelayModel, FixedDelay
from repro.runtime.transport import LinkFaultPolicy
from repro.service.wire import ServiceEnvelope


class ServiceBus:
    """Best-effort envelope fabric between ``n`` co-located nodes.

    Args:
        n: cluster size (pids ``0..n-1``).
        seed: trial seed; all fault/delay randomness derives from it.
        delay: delivery latency model (defaults to a fixed small delay).
        link_faults: optional per-link fault policy (drop / duplicate /
            extra delay), e.g. a compiled
            :class:`~repro.faults.runtime_compile.PlanLinkFaults`.
    """

    def __init__(
        self,
        n: int,
        seed: int = 0,
        delay: DelayModel | None = None,
        link_faults: LinkFaultPolicy | None = None,
    ) -> None:
        if n <= 0:
            raise ServiceError(f"cluster size must be positive, got {n}")
        self.n = n
        self.seed = seed
        self.delay = delay if delay is not None else FixedDelay(0.001)
        self.link_faults = link_faults
        self._queues: dict[int, asyncio.Queue[ServiceEnvelope]] = {}
        self._up: set[int] = set(range(n))
        self.delivered = 0
        self.dropped = 0

    def _queue(self, pid: int) -> asyncio.Queue[ServiceEnvelope]:
        if pid not in self._queues:
            self._queues[pid] = asyncio.Queue()
        return self._queues[pid]

    # -- lifecycle hooks (the cluster orchestrator calls these) --------------

    def mark_down(self, pid: int) -> None:
        """Kill ``pid``: stop delivering to it and drain its queue."""
        self._up.discard(pid)
        queue = self._queue(pid)
        while not queue.empty():
            queue.get_nowait()
            self.dropped += 1

    def mark_up(self, pid: int) -> None:
        """Bring ``pid`` back: future deliveries reach it again."""
        self._up.add(pid)

    def is_up(self, pid: int) -> bool:
        return pid in self._up

    # -- transmission --------------------------------------------------------

    def send(
        self, recipient: int, envelope: ServiceEnvelope, attempt: int = 0
    ) -> None:
        """Transmit one copy of ``envelope`` toward ``recipient``.

        Returns immediately; delivery happens after the sampled latency,
        and only if the recipient is up at that moment.  ``attempt``
        distinguishes retransmissions of the same envelope so their
        fault draws are independent.
        """
        if not 0 <= recipient < self.n:
            raise ServiceError(
                f"recipient {recipient} out of range for n={self.n}"
            )
        rng = random.Random(
            derive_keyed(
                self.seed,
                SERVICE_ENVELOPE_STREAM,
                envelope.sender,
                envelope.incarnation,
                envelope.seq,
                recipient,
                attempt,
            )
        )
        copies = 1
        extra_delay = 0.0
        loop = asyncio.get_running_loop()
        if self.link_faults is not None:
            verdict = self.link_faults.verdict(
                envelope.sender, recipient, loop.time(), rng
            )
            if verdict.drop:
                self.dropped += 1
                return
            copies += verdict.duplicates
            extra_delay = verdict.extra_delay
        for _ in range(copies):
            latency = self.delay.sample(rng) + extra_delay
            loop.call_later(latency, self._deliver, recipient, envelope)

    def _deliver(self, recipient: int, envelope: ServiceEnvelope) -> None:
        if recipient not in self._up:
            self.dropped += 1
            return
        self.delivered += 1
        self._queue(recipient).put_nowait(envelope)

    async def receive(self, pid: int) -> ServiceEnvelope:
        """Await the next envelope addressed to ``pid``."""
        return await self._queue(pid).get()
