"""Replay: rebuilding a node's protocol state from its durable records.

The hosted state machine is a Python generator
(:class:`~repro.sim.process.SimProcess`), which cannot be serialized
mid-run — so the WAL is a *command log*, not a state dump.  An ``init``
record pins the protocol configuration (including the tape seed), and
each ``step`` record captures one call's replay input: the batch of
delivered envelopes.  Deterministic re-execution of the same inputs with
the same tape reconstructs the state byte-for-byte; idle ticks (empty
batches) are logged too because they advance the protocol clock and
hence the timeout machinery.

Replay also regenerates everything volatile that died with the process:

* the **dedup set** — the identities of every envelope the node has
  applied, so a restarted node still rejects duplicates its previous
  life already consumed;
* the **outbox** — every outgoing envelope the previous life produced,
  with its *original* ``(incarnation, seq)`` identity (the replay walks
  ``recover`` records to know which incarnation was live at each step),
  so resending everything after a restart is safe: receivers that
  already applied an envelope drop the retransmission;
* the **service overlay** — a decision adopted via state transfer, and
  whether a transaction ``submit`` was already released.

:func:`state_digest` canonicalises the observable process state into a
hash; snapshots store it so recovery can verify the replayed prefix, and
the property tests use it as the byte-identity oracle.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any

from repro.errors import WalError
from repro.faults.variants import resolve_variant
from repro.service.wire import (
    ServiceEnvelope,
    payload_from_dict,
    payload_to_dict,
)
from repro.sim.message import ReceivedPayload
from repro.sim.process import SimProcess
from repro.sim.tape import RandomTape


@dataclass(frozen=True)
class NodeConfig:
    """Everything that pins one node's protocol behaviour.

    Stored in the ``init`` WAL record so a restart rebuilds the exact
    same program: same variant, same vote, same tape seed.
    """

    pid: int
    n: int
    t: int
    K: int
    vote: int
    tape_seed: int
    variant: str = "commit"

    def to_dict(self) -> dict[str, Any]:
        return {
            "pid": self.pid,
            "n": self.n,
            "t": self.t,
            "K": self.K,
            "vote": self.vote,
            "tape_seed": self.tape_seed,
            "variant": self.variant,
        }

    @classmethod
    def from_dict(cls, doc: dict[str, Any]) -> "NodeConfig":
        return cls(
            pid=doc["pid"],
            n=doc["n"],
            t=doc["t"],
            K=doc["K"],
            vote=doc["vote"],
            tape_seed=doc["tape_seed"],
            variant=doc.get("variant", "commit"),
        )


def build_process(config: NodeConfig) -> SimProcess:
    """A fresh process at step 0 for ``config``."""
    program_cls = resolve_variant(config.variant)
    program = program_cls(
        pid=config.pid,
        n=config.n,
        t=config.t,
        initial_vote=config.vote,
        K=config.K,
        allow_sub_resilience=True,
    )
    return SimProcess(program, RandomTape(seed=config.tape_seed))


def state_digest(process: SimProcess) -> str:
    """A canonical hash of the observable protocol state.

    Covers the clock, lifecycle status, decision (value and clock), and
    the bulletin board in receipt order — everything the protocol's
    future behaviour depends on besides the (seed-determined) tape.
    """
    board = [
        [entry.sender, payload_to_dict(entry.payload), entry.receive_clock]
        for entry in process.board.entries()
    ]
    doc = {
        "clock": process.clock,
        "status": process.status.name,
        "decision": process.decision,
        "decision_clock": process.decision_clock,
        "board": board,
    }
    body = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(body.encode("utf-8")).hexdigest()


def batch_to_record(delivered: list[ServiceEnvelope]) -> list[list[Any]]:
    """The WAL form of one step's delivered batch."""
    return [
        [
            env.sender,
            env.incarnation,
            env.seq,
            [payload_to_dict(p) for p in env.payloads],
        ]
        for env in delivered
    ]


def _batch_to_received(
    batch: list[list[Any]], receive_clock: int
) -> list[ReceivedPayload]:
    received: list[ReceivedPayload] = []
    for sender, _incarnation, _seq, payloads in batch:
        for doc in payloads:
            received.append(
                ReceivedPayload(
                    sender=sender,
                    payload=payload_from_dict(doc),
                    receive_clock=receive_clock,
                )
            )
    return received


@dataclass
class ReplayResult:
    """A node's life, rebuilt from its durable records.

    Attributes:
        process: the replayed state machine.
        config: the ``init`` record's configuration.
        incarnation: this life's incarnation (count of ``recover``
            records — the caller appends the new ``recover`` record
            *after* replaying, so the value here is already the live
            one only if the caller logged it before calling).
        steps: protocol steps replayed.
        next_seq: the next unused sequence number of the *current*
            incarnation.
        applied: identities of every envelope ever applied (dedup set).
        outgoing: every ``(recipient, envelope)`` the replayed life
            produced, with original identities, for resend-on-recovery.
        transfer_decision: decision adopted from a peer's state
            transfer, or ``None``.
        submitted: whether a ``submit`` record was seen.
    """

    process: SimProcess
    config: NodeConfig
    incarnation: int = 0
    steps: int = 0
    next_seq: int = 0
    applied: set[tuple[int, int, int]] = field(default_factory=set)
    outgoing: list[tuple[int, ServiceEnvelope]] = field(default_factory=list)
    transfer_decision: int | None = None
    submitted: bool = False

    @property
    def decision(self) -> int | None:
        """The effective decision: protocol-decided or transferred."""
        if self.process.decision is not None:
            return self.process.decision
        return self.transfer_decision


def replay(
    records: list[dict[str, Any]],
    expect_config: NodeConfig | None = None,
    verify_digest_at: tuple[int, str] | None = None,
) -> ReplayResult:
    """Re-execute a record sequence into a live :class:`ReplayResult`.

    Args:
        records: the durable record sequence (snapshot records + log
            suffix, see :func:`repro.service.wal.durable_records`).
        expect_config: when given, the ``init`` record must match it —
            catches a WAL directory wired to the wrong node.
        verify_digest_at: optional ``(step, digest)`` integrity check —
            snapshot recovery passes the snapshot's recorded digest and
            replay fails loudly if the replayed state diverges.

    Raises:
        WalError: on a record sequence no crash can produce — missing or
            mismatched ``init``, conflicting decision records, or a
            digest mismatch at the checkpoint.
    """
    if not records:
        raise WalError("cannot replay an empty record sequence (no init)")
    first = records[0]
    if first.get("type") != "init":
        raise WalError(
            f"first durable record must be init, got {first.get('type')!r}"
        )
    config = NodeConfig.from_dict(first["config"])
    if expect_config is not None and config != expect_config:
        raise WalError(
            f"WAL init record {config} does not match the expected "
            f"configuration {expect_config}"
        )

    result = ReplayResult(process=build_process(config), config=config)
    seen_decision: int | None = None

    for record in records[1:]:
        rtype = record["type"]
        if rtype == "init":
            raise WalError("duplicate init record mid-log")
        if rtype == "step":
            batch = record.get("batch", [])
            for sender, incarnation, seq, _payloads in batch:
                result.applied.add((sender, incarnation, seq))
            delivered = _batch_to_received(
                batch, receive_clock=result.process.clock + 1
            )
            sends = result.process.on_step(delivered)
            result.steps += 1
            for recipient, payloads in sends:
                envelope = ServiceEnvelope(
                    kind="msg",
                    sender=config.pid,
                    incarnation=result.incarnation,
                    seq=result.next_seq,
                    payloads=payloads,
                )
                result.next_seq += 1
                result.outgoing.append((recipient, envelope))
            if (
                verify_digest_at is not None
                and result.steps == verify_digest_at[0]
            ):
                digest = state_digest(result.process)
                if digest != verify_digest_at[1]:
                    raise WalError(
                        f"replayed state digest {digest} does not match "
                        f"the snapshot digest {verify_digest_at[1]} at "
                        f"step {result.steps}"
                    )
        elif rtype == "recover":
            result.incarnation += 1
            result.next_seq = 0
        elif rtype == "decision":
            value = record["value"]
            if seen_decision is not None and seen_decision != value:
                raise WalError(
                    f"conflicting decision records in one WAL: "
                    f"{seen_decision} then {value}"
                )
            seen_decision = value
            if record.get("origin") == "transfer":
                result.transfer_decision = value
        elif rtype == "submit":
            result.submitted = True
        elif rtype in ("vote", "coins", "round"):
            pass  # observability records; replay derives them from steps
        elif rtype == "compact":
            pass  # compaction marker; carries no protocol input
        else:  # pragma: no cover - reader already filters unknown types
            raise WalError(f"unknown record type {rtype!r}")

    if (
        seen_decision is not None
        and result.process.decision is not None
        and seen_decision != result.process.decision
    ):
        raise WalError(
            f"WAL decision record {seen_decision} conflicts with the "
            f"replayed process decision {result.process.decision}"
        )
    return result
