"""Replay: rebuilding a node's protocol state from its durable records.

The hosted state machines are Python generators
(:class:`~repro.sim.process.SimProcess`), which cannot be serialized
mid-run — so the WAL is a *command log*, not a state dump.  An ``init``
record pins the node configuration (including the tape seed), and each
``step`` record captures one call's replay input: the batch of
delivered envelopes, each envelope's payloads grouped by transaction
(:mod:`repro.service.txn`).  Deterministic re-execution of the same
inputs through the same :class:`~repro.service.txn.InstanceMux` the
live node steps reconstructs every instance byte-for-byte; idle ticks
(empty batches) are logged too because they advance undecided
instances' clocks and hence their timeout machinery.

Replay also regenerates everything volatile that died with the process:

* the **dedup set** — the identities of every envelope the node has
  applied, so a restarted node still rejects duplicates its previous
  life already consumed;
* the **outbox** — every outgoing envelope the previous life produced,
  with its *original* ``(incarnation, seq)`` identity (the replay walks
  ``recover`` records to know which incarnation was live at each step),
  so resending everything after a restart is safe: receivers that
  already applied an envelope drop the retransmission;
* the **service overlay** — decisions adopted via state transfer,
  instances compacted into closed stubs (``close`` records), and which
  transactions were already submitted.

:func:`state_digest` (re-exported from :mod:`repro.service.txn`)
canonicalises one instance's observable state into a hash; snapshots
store the multiplexer-wide digest so recovery can verify the replayed
prefix, and the property tests use it as the byte-identity oracle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.errors import WalError
from repro.service.txn import (
    DEFAULT_TXN,
    InstanceMux,
    build_instance_process,
    groups_to_wal,
    state_digest,
    wal_to_groups,
)
from repro.service.wire import ServiceEnvelope
from repro.sim.process import SimProcess

__all__ = [
    "NodeConfig",
    "ReplayResult",
    "batch_to_record",
    "build_process",
    "replay",
    "state_digest",
]


@dataclass(frozen=True)
class NodeConfig:
    """Everything that pins one node's protocol behaviour.

    Stored in the ``init`` WAL record so a restart rebuilds the exact
    same program: same variant, same votes, same tape seeds.  The
    multi-transaction fields keep their v1 defaults out of the wire and
    WAL forms (``to_dict`` omits them), so single-transaction init
    records are byte-identical to the pre-multiplexer service's.

    Attributes:
        pid: this node's *local* pid within its commit group.
        n / t / K: the group's protocol parameters.
        vote: the default transaction's initial vote.
        tape_seed: root of this node's per-transaction tape seeds.
        variant: protocol program (see :mod:`repro.faults.variants`).
        multi_txn: host many concurrent transaction instances (lazily
            created) instead of the single eager default instance.
        base: first wire pid of this node's commit group — the offset
            between local protocol pids and transport addresses.
        commit_bias: Bernoulli parameter of derived per-transaction
            votes (:func:`repro.service.txn.txn_vote`).
    """

    pid: int
    n: int
    t: int
    K: int
    vote: int
    tape_seed: int
    variant: str = "commit"
    multi_txn: bool = False
    base: int = 0
    commit_bias: float = 1.0

    def to_dict(self) -> dict[str, Any]:
        doc: dict[str, Any] = {
            "pid": self.pid,
            "n": self.n,
            "t": self.t,
            "K": self.K,
            "vote": self.vote,
            "tape_seed": self.tape_seed,
            "variant": self.variant,
        }
        if self.multi_txn:
            doc["multi_txn"] = True
        if self.base:
            doc["base"] = self.base
        if self.commit_bias != 1.0:
            doc["commit_bias"] = self.commit_bias
        return doc

    @classmethod
    def from_dict(cls, doc: dict[str, Any]) -> "NodeConfig":
        return cls(
            pid=doc["pid"],
            n=doc["n"],
            t=doc["t"],
            K=doc["K"],
            vote=doc["vote"],
            tape_seed=doc["tape_seed"],
            variant=doc.get("variant", "commit"),
            multi_txn=doc.get("multi_txn", False),
            base=doc.get("base", 0),
            commit_bias=doc.get("commit_bias", 1.0),
        )

    @property
    def wire_pid(self) -> int:
        """This node's transport address (group base + local pid)."""
        return self.base + self.pid


def build_process(config: NodeConfig) -> SimProcess:
    """A fresh process at step 0 for ``config``'s default transaction."""
    return build_instance_process(config, DEFAULT_TXN)


def batch_to_record(delivered: list[ServiceEnvelope]) -> list[list[Any]]:
    """The WAL form of one step's delivered batch.

    Each entry is ``[sender, incarnation, seq, payloads]`` where the
    payload slot uses :func:`repro.service.txn.groups_to_wal` — the v1
    flat payload list for single default-transaction traffic, the
    grouped form otherwise.
    """
    return [
        [
            env.sender,
            env.incarnation,
            env.seq,
            groups_to_wal(env.payload_groups()),
        ]
        for env in delivered
    ]


@dataclass
class ReplayResult:
    """A node's life, rebuilt from its durable records.

    Attributes:
        mux: the replayed instance multiplexer (every transaction's
            state machine, transfer overlay, and closed stubs).
        config: the ``init`` record's configuration.
        incarnation: this life's incarnation (count of ``recover``
            records — the caller appends the new ``recover`` record
            *after* replaying, so the value here is already the live
            one only if the caller logged it before calling).
        steps: protocol steps replayed.
        next_seq: the next unused sequence number of the *current*
            incarnation.
        applied: identities of every envelope ever applied (dedup set).
        outgoing: every ``(wire_recipient, envelope)`` the replayed
            life produced, with original identities, for
            resend-on-recovery.
        submitted_txns: transactions with a ``submit`` record.
    """

    mux: InstanceMux
    config: NodeConfig
    incarnation: int = 0
    steps: int = 0
    next_seq: int = 0
    applied: set[tuple[int, int, int]] = field(default_factory=set)
    outgoing: list[tuple[int, ServiceEnvelope]] = field(default_factory=list)
    submitted_txns: set[int] = field(default_factory=set)

    @property
    def process(self) -> SimProcess | None:
        """The default transaction's state machine (the v1 view)."""
        instance = self.mux.get(DEFAULT_TXN)
        return instance.process if instance is not None else None

    @property
    def transfer_decision(self) -> int | None:
        """The default transaction's transferred decision (v1 view)."""
        instance = self.mux.get(DEFAULT_TXN)
        return instance.transfer_decision if instance is not None else None

    @property
    def submitted(self) -> bool:
        return DEFAULT_TXN in self.submitted_txns

    @property
    def decision(self) -> int | None:
        """The default transaction's effective decision (v1 view)."""
        instance = self.mux.get(DEFAULT_TXN)
        return instance.decision if instance is not None else None

    def decisions(self) -> dict[int, int]:
        """Effective decisions across every replayed transaction."""
        return self.mux.decisions()


def replay(
    records: list[dict[str, Any]],
    expect_config: NodeConfig | None = None,
    verify_digest_at: tuple[int, str] | None = None,
    verify_digest_at_record: tuple[int, str] | None = None,
) -> ReplayResult:
    """Re-execute a record sequence into a live :class:`ReplayResult`.

    Args:
        records: the durable record sequence (snapshot records + log
            suffix, see :func:`repro.service.wal.durable_records`).
        expect_config: when given, the ``init`` record must match it —
            catches a WAL directory wired to the wrong node.
        verify_digest_at: optional ``(step, digest)`` integrity check —
            single-transaction snapshot recovery passes the snapshot's
            recorded digest and replay fails loudly if the replayed
            state diverges at that protocol step.
        verify_digest_at_record: optional ``(record_count, digest)``
            check against the multiplexer-wide digest after exactly
            that many records — multi-transaction snapshots verify
            here because their digest also covers between-step records
            (``close``, transferred decisions).

    Raises:
        WalError: on a record sequence no crash can produce — missing
            or mismatched ``init``, conflicting decision records, or a
            digest mismatch at the checkpoint.
    """
    if not records:
        raise WalError("cannot replay an empty record sequence (no init)")
    first = records[0]
    if first.get("type") != "init":
        raise WalError(
            f"first durable record must be init, got {first.get('type')!r}"
        )
    config = NodeConfig.from_dict(first["config"])
    if expect_config is not None and config != expect_config:
        raise WalError(
            f"WAL init record {config} does not match the expected "
            f"configuration {expect_config}"
        )

    result = ReplayResult(mux=InstanceMux(config), config=config)
    mux = result.mux
    seen_decisions: dict[int, int] = {}

    for index, record in enumerate(records[1:], start=2):
        rtype = record["type"]
        if rtype == "init":
            raise WalError("duplicate init record mid-log")
        if rtype == "step":
            batch = record.get("batch", [])
            local_batch = []
            for sender, incarnation, seq, payloads in batch:
                result.applied.add((sender, incarnation, seq))
                local_batch.append(
                    (sender - config.base, wal_to_groups(payloads))
                )
            effects = mux.apply_step(local_batch)
            result.steps += 1
            for recipient, groups in effects.outgoing:
                envelope = ServiceEnvelope.msg(
                    sender=config.wire_pid,
                    incarnation=result.incarnation,
                    seq=result.next_seq,
                    groups=groups,
                )
                result.next_seq += 1
                result.outgoing.append(
                    (config.base + recipient, envelope)
                )
            if (
                verify_digest_at is not None
                and result.steps == verify_digest_at[0]
            ):
                digest = state_digest(result.process)
                if digest != verify_digest_at[1]:
                    raise WalError(
                        f"replayed state digest {digest} does not match "
                        f"the snapshot digest {verify_digest_at[1]} at "
                        f"step {result.steps}"
                    )
        elif rtype == "recover":
            result.incarnation += 1
            result.next_seq = 0
        elif rtype == "decision":
            txn_id = record.get("txn", DEFAULT_TXN)
            value = record["value"]
            if txn_id in seen_decisions and seen_decisions[txn_id] != value:
                raise WalError(
                    f"conflicting decision records for transaction "
                    f"{txn_id} in one WAL: {seen_decisions[txn_id]} "
                    f"then {value}"
                )
            seen_decisions[txn_id] = value
            if record.get("origin") == "transfer":
                instance = mux.ensure(txn_id)
                instance.transfer_decision = value
                instance.decision_logged = True
            else:
                instance = mux.get(txn_id)
                if instance is not None:
                    instance.decision_logged = True
        elif rtype == "close":
            txn_id = record["txn"]
            instance = mux.get(txn_id)
            if instance is None or instance.process is None:
                raise WalError(
                    f"close record for transaction {txn_id} with no "
                    f"live instance to close"
                )
            if instance.decision != record.get("value"):
                raise WalError(
                    f"close record value {record.get('value')} conflicts "
                    f"with the replayed decision {instance.decision} of "
                    f"transaction {txn_id}"
                )
            mux.close_txn(txn_id)
        elif rtype == "submit":
            txn_id = record.get("txn", DEFAULT_TXN)
            mux.ensure(txn_id).submitted = True
            result.submitted_txns.add(txn_id)
        elif rtype in ("vote", "coins", "round"):
            pass  # observability records; replay derives them from steps
        elif rtype == "compact":
            pass  # compaction marker; carries no protocol input
        else:  # pragma: no cover - reader already filters unknown types
            raise WalError(f"unknown record type {rtype!r}")
        if (
            verify_digest_at_record is not None
            and index == verify_digest_at_record[0]
        ):
            digest = mux.digest()
            if digest != verify_digest_at_record[1]:
                raise WalError(
                    f"replayed multiplexer digest {digest} does not "
                    f"match the snapshot digest "
                    f"{verify_digest_at_record[1]} after {index} records"
                )

    for txn_id, value in seen_decisions.items():
        instance = mux.get(txn_id)
        if (
            instance is not None
            and instance.process is not None
            and instance.process.decision is not None
            and instance.process.decision != value
        ):
            raise WalError(
                f"WAL decision record {value} for transaction {txn_id} "
                f"conflicts with the replayed process decision "
                f"{instance.process.decision}"
            )
    return result
