"""Append-only, checksummed, fsync'd write-ahead logs and snapshots.

Each service node owns one WAL (``log.jsonl``) and one snapshot slot
(``snapshot.json``).  The log is the node's durable truth: every record
is one JSON line ``{"c": <crc32>, "r": <record>}`` where the checksum
covers the record's canonical JSON form.  Records are appended *before*
their effect is applied to the protocol state machine and fsync'd before
the corresponding envelope is acknowledged, so an acknowledged message
is durable by construction.

Record vocabulary (``repro.wal v1``):

* ``init`` — the node's protocol configuration (pid, n, t, K, vote,
  tape seed, program variant);
* ``step`` — one state-machine step: the batch of delivered envelopes
  ``[sender, incarnation, seq, [payloads...]]`` (empty for idle ticks —
  idle ticks advance the protocol clock, so replay must reproduce
  them; decided nodes stop stepping on idle ticks, keeping the log
  bounded);
* ``vote`` / ``coins`` / ``round`` — observability records derived from
  traffic (the broadcast vote, the GO coin list, agreement stage
  transitions); redundant for replay, invaluable for postmortems;
* ``decision`` — the decided value with its origin (``process`` for a
  locally decided value, ``transfer`` for one adopted from a peer's
  state transfer);
* ``recover`` — appended each time the node restarts and replays,
  carrying the new incarnation number;
* ``submit`` — the transaction was released to the coordinator (TCP
  service; replay resumes a submitted run without waiting again);
* ``compact`` — the first record of a freshly compacted log, carrying
  the snapshot's ``taken_at_step``; it marks the log as *newer* than
  the snapshot (see below) and is skipped by replay.

**Torn tails.**  A SIGKILL can land mid-``write``; the reader treats any
trailing undecodable or checksum-failing line as a torn tail: it returns
the valid prefix and flags the truncation, and opening the log for
append first truncates the store back to that prefix.  A valid line
*after* an invalid one is structural corruption and raises
:class:`~repro.errors.WalError` — that is not a crash artifact.

**Snapshots** compact the replay inputs: the generator-based state
machine cannot be pickled mid-run, so a snapshot is the canonical record
prefix (init + steps + decisions) rewritten into one atomically-replaced
checksummed file, plus a digest of the replayed state for integrity
checking.  After a snapshot the log is truncated; recovery is
``replay(snapshot records + log suffix)``.

Compaction is **two** durable operations — replace ``snapshot.json``,
then truncate ``log.jsonl`` — and a kill can land between them, leaving
a log whose every record is already inside the snapshot (nothing new
can be appended in the window; compaction is synchronous).  The ``compact``
marker record disambiguates: truncation immediately re-seeds the log
with a marker carrying the snapshot's ``taken_at_step``, so a log whose
head is *not* the current snapshot's marker is the stale pre-compaction
log and :func:`split_log_suffix` discards it instead of replaying its
records twice (or tripping over its duplicate ``init``).  Recovery
re-establishes the marker before appending anything
(:func:`reset_log_after_compaction`), so the invariant survives repeated
kills in the window.

**Durability scope.**  Appends and snapshot replacement are fsync'd,
and :class:`FileWalStore` additionally fsyncs the WAL *directory* after
creating ``log.jsonl`` and after the snapshot rename, so the guarantee
covers whole-machine crashes, not just process kills, on POSIX
filesystems with standard ordering semantics.
"""

from __future__ import annotations

import json
import os
import time
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable

from repro.errors import WalError
from repro.telemetry import registry as telemetry
from repro.telemetry.log import get_logger

_log = get_logger("service.wal")

#: Schema tag of the log record stream.
WAL_SCHEMA = "repro.wal v1"
#: Schema tag of the snapshot document.
SNAPSHOT_SCHEMA = "repro.wal-snapshot v1"

#: Record types the reader accepts.
RECORD_TYPES = (
    "init",
    "step",
    "vote",
    "coins",
    "round",
    "decision",
    "recover",
    "submit",
    "compact",
    "close",
)


def _canonical(record: dict[str, Any]) -> str:
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


def encode_record(record: dict[str, Any]) -> str:
    """One checksummed JSONL line for ``record`` (newline included)."""
    body = _canonical(record)
    crc = zlib.crc32(body.encode("utf-8"))
    return json.dumps({"c": crc, "r": record}, sort_keys=True,
                      separators=(",", ":")) + "\n"


def decode_line(line: str) -> dict[str, Any] | None:
    """The record in one line, or ``None`` if the line is invalid.

    Invalid covers truncated JSON, a missing checksum, a checksum
    mismatch, and an unknown record type — everything a torn write can
    produce.
    """
    try:
        doc = json.loads(line)
    except json.JSONDecodeError:
        return None
    if not isinstance(doc, dict) or "c" not in doc or "r" not in doc:
        return None
    record = doc["r"]
    if not isinstance(record, dict):
        return None
    if zlib.crc32(_canonical(record).encode("utf-8")) != doc["c"]:
        return None
    if record.get("type") not in RECORD_TYPES:
        return None
    return record


# -- storage backends ---------------------------------------------------------


class WalStore:
    """Storage backend of one node's log + snapshot slot.

    Two implementations: :class:`FileWalStore` (real durability — the
    deployable service) and :class:`MemoryWalStore` (campaign trials:
    the store object survives the simulated process kill, modelling the
    disk, while the node object holding everything volatile does not).
    """

    def read_lines(self) -> list[str]:
        raise NotImplementedError

    def append_line(self, line: str) -> None:
        raise NotImplementedError

    def sync(self) -> None:
        """Flush appended lines to durable storage (fsync)."""
        raise NotImplementedError

    def truncate_lines(self, keep: int) -> None:
        """Drop everything after the first ``keep`` lines (tail repair)."""
        raise NotImplementedError

    def reset_log(self) -> None:
        """Empty the log (called after a snapshot compaction)."""
        self.truncate_lines(0)

    def write_snapshot(self, text: str) -> None:
        raise NotImplementedError

    def read_snapshot(self) -> str | None:
        raise NotImplementedError

    def close(self) -> None:  # pragma: no cover - trivial default
        pass


class MemoryWalStore(WalStore):
    """An in-process store: a list of lines plus a snapshot slot."""

    def __init__(self) -> None:
        self._lines: list[str] = []
        self._snapshot: str | None = None
        self.syncs = 0

    def read_lines(self) -> list[str]:
        return list(self._lines)

    def append_line(self, line: str) -> None:
        self._lines.append(line)

    def sync(self) -> None:
        self.syncs += 1

    def truncate_lines(self, keep: int) -> None:
        del self._lines[keep:]

    def tear_tail(self, keep_bytes: int) -> None:
        """Truncate the final line mid-bytes (test/fault-injection aid)."""
        if self._lines:
            self._lines[-1] = self._lines[-1][:keep_bytes]

    def write_snapshot(self, text: str) -> None:
        self._snapshot = text

    def read_snapshot(self) -> str | None:
        return self._snapshot


class FileWalStore(WalStore):
    """The on-disk store: ``log.jsonl`` + ``snapshot.json`` in one dir."""

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.log_path = self.directory / "log.jsonl"
        self.snapshot_path = self.directory / "snapshot.json"
        self._handle = None

    def _open(self):
        if self._handle is None or self._handle.closed:
            created = not self.log_path.exists()
            self._handle = open(self.log_path, "a", encoding="utf-8")
            if created:
                # The new directory entry must be durable too, or a
                # machine crash can lose the whole (fsync'd) log file.
                self._sync_directory()
        return self._handle

    def _sync_directory(self) -> None:
        try:
            fd = os.open(self.directory, os.O_RDONLY)
        except OSError:  # pragma: no cover - platform without O_RDONLY dirs
            return
        try:
            os.fsync(fd)
        except OSError:  # pragma: no cover - fs without directory fsync
            pass
        finally:
            os.close(fd)

    def read_lines(self) -> list[str]:
        if not self.log_path.exists():
            return []
        with open(self.log_path, "r", encoding="utf-8") as f:
            return f.read().splitlines()

    def append_line(self, line: str) -> None:
        handle = self._open()
        handle.write(line)
        handle.flush()

    def sync(self) -> None:
        handle = self._open()
        handle.flush()
        os.fsync(handle.fileno())

    def truncate_lines(self, keep: int) -> None:
        self.close()
        if not self.log_path.exists():
            return
        with open(self.log_path, "r+", encoding="utf-8") as f:
            offset = 0
            for _ in range(keep):
                if not f.readline():
                    break
                offset = f.tell()
            f.truncate(offset)
            f.flush()
            os.fsync(f.fileno())

    def write_snapshot(self, text: str) -> None:
        # Atomic replace: the old snapshot stays valid until the new one
        # is durably on disk, so a kill mid-snapshot loses nothing.
        tmp = self.snapshot_path.with_suffix(".json.tmp")
        with open(tmp, "w", encoding="utf-8") as f:
            f.write(text)
            f.flush()
            os.fsync(f.fileno())
        os.replace(tmp, self.snapshot_path)
        # Persist the rename itself: without a directory fsync a power
        # loss can roll the directory entry back to the old snapshot.
        self._sync_directory()

    def read_snapshot(self) -> str | None:
        if not self.snapshot_path.exists():
            return None
        return self.snapshot_path.read_text(encoding="utf-8")

    def close(self) -> None:
        if self._handle is not None and not self._handle.closed:
            self._handle.close()
        self._handle = None


# -- the log ------------------------------------------------------------------


@dataclass
class WalReadResult:
    """Outcome of reading one log: the valid records and tail health."""

    records: list[dict[str, Any]] = field(default_factory=list)
    valid_lines: int = 0
    torn_tail: bool = False


def read_log(store: WalStore) -> WalReadResult:
    """Read a store's log, recovering from a torn tail.

    Raises:
        WalError: when a valid record follows an invalid line —
            mid-file corruption a crash cannot produce.
    """
    result = WalReadResult()
    lines = store.read_lines()
    bad_at: int | None = None
    for index, line in enumerate(lines):
        record = decode_line(line)
        if record is None:
            if not line.strip() and index == len(lines) - 1:
                continue  # trailing blank line, not a record
            if bad_at is None:
                bad_at = index
            continue
        if bad_at is not None:
            raise WalError(
                f"valid record at line {index + 1} after invalid line "
                f"{bad_at + 1}: mid-log corruption, not a torn tail"
            )
        result.records.append(record)
        result.valid_lines += 1
    if bad_at is not None:
        result.torn_tail = True
        _log.warning(
            "torn WAL tail: recovering from record %d, discarding %d "
            "invalid trailing line(s)",
            result.valid_lines,
            len(lines) - bad_at,
        )
        if telemetry.enabled():
            telemetry.count(
                "wal_torn_tails_total",
                help="torn WAL tails recovered on open",
            )
    return result


class WriteAheadLog:
    """Appender over a :class:`WalStore` with a configurable fsync policy.

    Args:
        store: the storage backend.
        fsync: ``True`` syncs after every append (the durability the
            recovery proofs assume); ``False`` leaves syncing to the OS
            — campaign trials on in-memory stores use this since the
            "disk" is process memory anyway.
    """

    def __init__(self, store: WalStore, fsync: bool = True) -> None:
        self.store = store
        self.fsync = fsync
        self.appended = 0

    def open_repairing(self) -> WalReadResult:
        """Read the log and truncate any torn tail before appending."""
        result = read_log(self.store)
        if result.torn_tail:
            self.store.truncate_lines(result.valid_lines)
        return result

    def append(self, record: dict[str, Any]) -> None:
        self.store.append_line(encode_record(record))
        self.appended += 1
        if self.fsync:
            started = time.perf_counter()
            self.store.sync()
            if telemetry.enabled():
                telemetry.observe(
                    "wal_fsync_seconds",
                    time.perf_counter() - started,
                    help="seconds per WAL fsync",
                )
        if telemetry.enabled():
            telemetry.count(
                "wal_records_total",
                help="WAL records appended, by type",
                type=record.get("type", "unknown"),
            )

    def append_all(self, records: Iterable[dict[str, Any]]) -> None:
        for record in records:
            self.append(record)

    def close(self) -> None:
        self.store.close()


# -- snapshots ----------------------------------------------------------------


def compaction_marker(taken_at_step: int) -> dict[str, Any]:
    """The record that heads a freshly compacted log.

    Its ``at`` field names the snapshot it belongs to, so a reader can
    tell a post-compaction log (head = the current snapshot's marker)
    from the stale pre-compaction log a kill in the compaction window
    leaves behind (head = anything else).
    """
    return {"type": "compact", "at": taken_at_step}


def reset_log_after_compaction(store: WalStore, taken_at_step: int) -> None:
    """Truncate the log and durably re-seed it with the compaction marker.

    Called by :func:`write_snapshot` right after the snapshot replace,
    and again by recovery whenever the marker is missing — a kill
    between the replace and this truncation (or mid-marker-append)
    leaves the old log behind, and this repair is idempotent.
    """
    store.reset_log()
    store.append_line(encode_record(compaction_marker(taken_at_step)))
    store.sync()


def write_snapshot(
    store: WalStore,
    records: list[dict[str, Any]],
    digest: str,
    taken_at_step: int,
) -> None:
    """Compact ``records`` into the snapshot slot and truncate the log.

    ``records`` must be the node's *complete* canonical record history
    (its replay inputs); ``digest`` is the replayed-state digest at
    ``taken_at_step`` for recovery-time integrity checking.  The
    truncated log is re-seeded with the snapshot's compaction marker so
    a kill at any instant of this sequence is recoverable (see
    :func:`split_log_suffix`).
    """
    doc = {
        "schema": SNAPSHOT_SCHEMA,
        "taken_at_step": taken_at_step,
        "digest": digest,
        "records": records,
    }
    body = _canonical(doc)
    envelope = json.dumps(
        {"c": zlib.crc32(body.encode("utf-8")), "d": doc},
        sort_keys=True,
        separators=(",", ":"),
    )
    store.write_snapshot(envelope)
    reset_log_after_compaction(store, taken_at_step)
    if telemetry.enabled():
        telemetry.count(
            "wal_snapshots_total", help="snapshot compactions written"
        )


def read_snapshot(store: WalStore) -> dict[str, Any] | None:
    """Load and verify the snapshot document, if one exists.

    Raises:
        WalError: on a checksum-failing or schema-mismatched snapshot —
            atomic replacement means a torn snapshot cannot exist, so
            any damage here is real corruption.
    """
    text = store.read_snapshot()
    if text is None:
        return None
    try:
        envelope = json.loads(text)
        doc = envelope["d"]
        crc = envelope["c"]
    except (json.JSONDecodeError, KeyError, TypeError) as exc:
        raise WalError("unreadable snapshot document") from exc
    if zlib.crc32(_canonical(doc).encode("utf-8")) != crc:
        raise WalError("snapshot checksum mismatch")
    if doc.get("schema") != SNAPSHOT_SCHEMA:
        raise WalError(
            f"unsupported snapshot schema {doc.get('schema')!r} "
            f"(expected {SNAPSHOT_SCHEMA!r})"
        )
    return doc


def split_log_suffix(
    snapshot: dict[str, Any], log_records: list[dict[str, Any]]
) -> tuple[list[dict[str, Any]], bool]:
    """``(suffix, has_marker)``: the log records that extend ``snapshot``.

    A log whose head is the snapshot's own compaction marker genuinely
    continues it; the marker is stripped and the rest returned.  Any
    other non-empty log is the *stale* pre-compaction log left by a kill
    between the snapshot replace and the log truncation — every record
    in it is already inside the snapshot (compaction is synchronous, so
    nothing new lands in the window) — and is discarded.  ``has_marker``
    is ``False`` for both the stale and the empty-log case; recovery
    must then call :func:`reset_log_after_compaction` before appending.
    """
    if log_records:
        head = log_records[0]
        if (
            head.get("type") == "compact"
            and head.get("at") == snapshot["taken_at_step"]
        ):
            return log_records[1:], True
    return [], False


def durable_records(store: WalStore) -> WalReadResult:
    """A node's full replay input: snapshot records + log suffix."""
    snapshot = read_snapshot(store)
    log = read_log(store)
    if snapshot is None:
        return log
    suffix, _has_marker = split_log_suffix(snapshot, log.records)
    return WalReadResult(
        records=list(snapshot["records"]) + suffix,
        valid_lines=log.valid_lines,
        torn_tail=log.torn_tail,
    )
