"""The TCP face of a service node: one OS process per processor.

Deployment layout: node ``p`` of an ``n``-node cluster is one process
(`repro service start`) listening on ``base_port + p``, with its WAL and
snapshot in ``<data_dir>/node<p>/``.  Peers exchange
:class:`~repro.service.wire.ServiceEnvelope` lines over short-lived
connections — one connection per transmission attempt, written and
closed.  Connection failures are simply dropped transmissions: the
node-level retry-until-acked loop (:mod:`repro.service.node`) is the
reliability layer, exactly as on the in-memory bus, so a peer that is
down (killed, restarting) catches up when it returns.

Clients (``repro service submit|status``) speak the same envelope
framing with ``sender = -1`` and get an inline reply on the same
connection:

* ``submit`` releases the coordinator's held transaction and returns an
  ``ack`` carrying the node's status;
* ``state-query`` returns a ``state-transfer`` whose body includes the
  decision and the full node status — the same record a recovering peer
  would receive, which is why ``repro service status`` needs no
  separate protocol.

Real sockets need real time, so servers run on the standard event loop
(contrast :mod:`repro.service.cluster`, which co-hosts nodes on the
virtual clock).
"""

from __future__ import annotations

import asyncio
from dataclasses import asdict

from repro.errors import ServiceError
from repro.service.node import ServiceNode
from repro.service.recovery import NodeConfig
from repro.service.wal import FileWalStore
from repro.service.wire import ServiceEnvelope
from repro.telemetry.log import get_logger

_log = get_logger("service.server")


def peer_address(base_port: int, pid: int, host: str = "127.0.0.1") -> tuple[str, int]:
    """The listen address of node ``pid`` under the port convention."""
    return (host, base_port + pid)


class ServiceServer:
    """Hosts one :class:`~repro.service.node.ServiceNode` behind TCP.

    Args:
        config: the node's protocol identity.
        store: its durable storage (a
            :class:`~repro.service.wal.FileWalStore` in deployment).
        peers: listen addresses, indexed by pid.
        tick_interval: protocol step granularity in (real) seconds —
            coarser than the in-memory default because real sockets
            carry the traffic.
        fsync: WAL fsync policy (on, in deployment).
        hold_for_submit: wait for a client ``submit`` before stepping
            (the coordinator's default).
        seed: retransmission jitter seed.
    """

    def __init__(
        self,
        config: NodeConfig,
        store: FileWalStore,
        peers: list[tuple[str, int]],
        *,
        tick_interval: float = 0.02,
        fsync: bool = True,
        hold_for_submit: bool = False,
        snapshot_every: int = 256,
        seed: int = 0,
    ) -> None:
        if len(peers) != config.n:
            raise ServiceError(
                f"got {len(peers)} peer addresses for n={config.n}"
            )
        self.peers = peers
        self.node = ServiceNode(
            config,
            store,
            self._send,
            tick_interval=tick_interval,
            fsync=fsync,
            hold_for_submit=hold_for_submit,
            snapshot_every=snapshot_every,
            seed=seed,
        )
        self._server: asyncio.base_events.Server | None = None

    # -- outbound ------------------------------------------------------------

    def _send(
        self, recipient: int, envelope: ServiceEnvelope, attempt: int
    ) -> None:
        asyncio.ensure_future(self._transmit(recipient, envelope))

    async def _transmit(
        self, recipient: int, envelope: ServiceEnvelope
    ) -> None:
        host, port = self.peers[recipient]
        try:
            _reader, writer = await asyncio.open_connection(host, port)
        except OSError:
            return  # peer down: this attempt is a dropped transmission
        try:
            writer.write(envelope.encode())
            await writer.drain()
        except OSError:
            pass
        finally:
            writer.close()

    # -- inbound -------------------------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                try:
                    envelope = ServiceEnvelope.decode(line)
                except ServiceError:
                    _log.warning("dropping undecodable line: %r", line[:200])
                    continue
                if envelope.sender < 0:
                    reply = self._client_request(envelope)
                    writer.write(reply.encode())
                    await writer.drain()
                else:
                    self.node.deliver(envelope)
        except (OSError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()

    def _client_request(self, envelope: ServiceEnvelope) -> ServiceEnvelope:
        if envelope.kind == "submit":
            txn = envelope.body.get("txn", 0)
            try:
                if isinstance(txn, int) and txn > 0:
                    self.node.submit_txn(txn)
                else:
                    self.node.submit()
            except ServiceError as exc:
                return ServiceEnvelope(
                    kind="ack",
                    sender=self.node.pid,
                    body={"error": f"submit rejected: {exc}"},
                )
            return ServiceEnvelope(
                kind="ack",
                sender=self.node.pid,
                body={"status": asdict(self.node.snapshot_state())},
            )
        status = asdict(self.node.snapshot_state())
        if envelope.kind == "state-query":
            return ServiceEnvelope(
                kind="state-transfer",
                sender=self.node.pid,
                body={"decision": self.node.decision, "status": status},
            )
        return ServiceEnvelope(
            kind="ack",
            sender=self.node.pid,
            body={"error": f"unsupported client request {envelope.kind!r}"},
        )

    # -- lifecycle -----------------------------------------------------------

    async def serve(self) -> None:
        """Listen, recover/run the node, and serve until halted."""
        host, port = self.peers[self.node.pid]
        self._server = await asyncio.start_server(self._handle, host, port)
        _log.info(
            "p%d listening on %s:%d (data: %s)",
            self.node.pid,
            host,
            port,
            getattr(self.node.store, "directory", "<memory>"),
        )
        try:
            await self.node.run()
        finally:
            self._server.close()
            await self._server.wait_closed()

    def halt(self) -> None:
        self.node.halt()
