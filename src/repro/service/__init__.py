"""The deployable commit service: Protocol 2 in the crash-recovery model.

The simulator (:mod:`repro.sim`) and the asyncio runtime
(:mod:`repro.runtime`) execute the paper's protocols in the *fail-stop*
model — a crashed processor is gone forever.  This package runs the same
state machines as a *service* in the crash-**recovery** model:

* every node owns a checksummed, fsync'd write-ahead log and snapshot
  (:mod:`repro.service.wal`);
* a killed node's next life replays its durable records into a
  byte-identical protocol state (:mod:`repro.service.recovery`);
* reliability is node-level retry-until-acked with durable receiver
  dedup, so it survives restarts (:mod:`repro.service.node`);
* a recovering node that missed the outcome adopts it through the
  ``state-query`` / ``state-transfer`` handshake;
* one node process hosts many concurrent Protocol 2 instances — one per
  transaction — behind an instance multiplexer, with account-sharded
  commit groups and an open-loop load generator
  (:mod:`repro.service.txn`, :mod:`repro.service.load`);
* clusters run over an in-memory bus on the virtual clock for fault
  campaigns (:mod:`repro.service.cluster`,
  :mod:`repro.service.bus`) or over real TCP as separate OS
  processes (:mod:`repro.service.server`, :mod:`repro.service.client`).

See ``docs/SERVICE.md`` for the process layout, the WAL format, the
recovery handshake, and the multi-transaction wire/WAL extensions.
"""

from repro.service.bus import ServiceBus
from repro.service.cluster import (
    ServiceCluster,
    ServiceClusterResult,
    TxnSubmission,
    TxnWorkload,
    node_configs,
    shard_configs,
)
from repro.service.load import LoadReport, run_load
from repro.service.node import ServiceNode, ServiceNodeSnapshot
from repro.service.recovery import (
    NodeConfig,
    ReplayResult,
    replay,
    state_digest,
)
from repro.service.txn import (
    DEFAULT_TXN,
    InstanceMux,
    ShardMap,
    TxnInstance,
    txn_tape_seed,
    txn_vote,
)
from repro.service.wal import (
    FileWalStore,
    MemoryWalStore,
    WriteAheadLog,
    durable_records,
    read_log,
    read_snapshot,
    split_log_suffix,
    write_snapshot,
)
from repro.service.wire import ServiceEnvelope

__all__ = [
    "DEFAULT_TXN",
    "FileWalStore",
    "InstanceMux",
    "LoadReport",
    "MemoryWalStore",
    "NodeConfig",
    "ReplayResult",
    "ServiceBus",
    "ServiceCluster",
    "ServiceClusterResult",
    "ServiceEnvelope",
    "ServiceNode",
    "ServiceNodeSnapshot",
    "ShardMap",
    "TxnInstance",
    "TxnSubmission",
    "TxnWorkload",
    "WriteAheadLog",
    "durable_records",
    "node_configs",
    "read_log",
    "read_snapshot",
    "replay",
    "run_load",
    "shard_configs",
    "split_log_suffix",
    "state_digest",
    "txn_tape_seed",
    "txn_vote",
    "write_snapshot",
]
